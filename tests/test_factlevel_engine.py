"""Tests for the fact-level no-migration solution (section 5.2 discussion)."""

from repro.core.factlevel_engine import FactLevelEngine
from repro.core.supports import FactRecord
from repro.datalog.atoms import fact
from repro.workloads.paper import meet, negation_chain, pods


class TestZeroMigration:
    def test_pods_insert(self):
        engine = FactLevelEngine(pods(l=5, accepted=(2, 4)))
        result = engine.insert_fact("accepted(1)")
        assert not result.migrated
        assert result.removed == {fact("rejected", 1)}
        assert engine.is_consistent()

    def test_pods_delete(self):
        engine = FactLevelEngine(pods(l=5, accepted=(2, 4)))
        result = engine.delete_fact("accepted(4)")
        assert not result.migrated
        assert result.removed == {fact("accepted", 4)}
        assert result.added == {fact("rejected", 4)}
        assert engine.is_consistent()

    def test_meet_insert(self):
        engine = FactLevelEngine(meet(l=3))
        result = engine.insert_fact("rejected(1)")
        assert not result.migrated
        assert fact("accepted", 1) in engine.model
        assert engine.is_consistent()

    def test_chain_flip(self):
        engine = FactLevelEngine(negation_chain(6))
        result = engine.insert_fact("p0")
        assert not result.migrated
        assert engine.is_consistent()

    def test_migration_zero_across_sequence(self):
        from repro.workloads.families import reachability
        from repro.workloads.updates import asserted_facts, flip_sequence

        program = reachability(nodes=6, seed=7)
        engine = FactLevelEngine(program)
        for operation, subject in flip_sequence(
            asserted_facts(program, ["link"])[:5], seed=2, count=10
        ):
            result = engine.apply(operation, subject)
            assert not result.migrated
            assert engine.is_consistent()


class TestRecords:
    def test_every_deduction_kept(self):
        engine = FactLevelEngine(meet(l=3))
        records = engine.records_of(fact("accepted", 1))
        assert len(records) == 2  # default deduction + PC-author deduction

    def test_assertion_record(self):
        engine = FactLevelEngine(pods(l=3, accepted=(2,)))
        assert FactRecord.assertion() in engine.records_of(fact("accepted", 2))

    def test_records_store_ground_facts(self):
        engine = FactLevelEngine(pods(l=3, accepted=(2,)))
        [record] = engine.records_of(fact("rejected", 1))
        assert record.positive_facts == frozenset({fact("submitted", 1)})
        assert record.negative_facts == frozenset({fact("accepted", 1)})


class TestWellFoundedness:
    CYCLE = """
    spark(1).
    on(X) :- spark(X).
    on(X) :- relay(X).
    relay(X) :- on(X).
    """

    def test_positive_cycle_with_external_support(self):
        engine = FactLevelEngine(self.CYCLE)
        assert fact("on", 1) in engine.model
        assert fact("relay", 1) in engine.model

    def test_cycle_dies_when_external_support_removed(self):
        # on(1) and relay(1) support each other; deleting spark(1) must kill
        # both despite the mutual records (the groundedness check).
        engine = FactLevelEngine(self.CYCLE)
        result = engine.delete_fact("spark(1)")
        assert fact("on", 1) not in engine.model
        assert fact("relay", 1) not in engine.model
        assert not result.migrated
        assert engine.is_consistent()

    def test_cycle_survives_via_second_external_support(self):
        engine = FactLevelEngine(self.CYCLE)
        engine.insert_fact("relay(1)")  # now externally asserted
        engine.delete_fact("spark(1)")
        assert fact("on", 1) in engine.model
        assert engine.is_consistent()


class TestDeletionWithRemainingSupport:
    def test_fact_survives_deletion_when_derivable(self):
        program = """
        e(1).
        q(X) :- e(X).
        q(1).
        """
        engine = FactLevelEngine(program)
        result = engine.delete_fact("q(1)")
        assert fact("q", 1) in engine.model
        assert not result.removed
        assert engine.is_consistent()


class TestRuleUpdates:
    def test_insert_rule_no_migration(self):
        engine = FactLevelEngine(pods(l=4, accepted=(2,)))
        result = engine.insert_rule(
            "maybe(X) :- submitted(X), not accepted(X)."
        )
        assert not result.migrated
        assert engine.model.count_of("maybe") == 3
        assert engine.is_consistent()

    def test_delete_rule_no_migration(self):
        engine = FactLevelEngine(meet(l=3))
        result = engine.delete_rule(
            "accepted(Y) :- author(X, Y), in_program_committee(X)."
        )
        assert not result.migrated
        assert fact("accepted", 1) in engine.model  # other deduction holds
        assert engine.is_consistent()


class TestBookkeepingCost:
    def test_supports_grow_with_facts(self):
        small = FactLevelEngine(pods(l=5, accepted=(2,)))
        large = FactLevelEngine(pods(l=50, accepted=(2,)))
        assert large.support_entry_count() > small.support_entry_count() * 5
