"""Tests for batch maintenance (apply_batch)."""

import pytest

from repro.core.registry import SOUND_ENGINE_NAMES, create_engine
from repro.datalog.atoms import fact
from repro.datalog.parser import parse_clause
from repro.workloads.families import review_pipeline
from repro.workloads.paper import negation_chain, pods


def batch_for_pipeline():
    return [
        ("insert_fact", fact("negative_review", "pc1", 1)),
        ("insert_fact", fact("negative_review", "pc2", 2)),
        ("delete_fact", fact("negative_review", "pc1", 1)),  # net zero
        ("insert_rule", parse_clause(
            "flagged(P) :- rejected(P), not appealed(P)."
        )),
    ]


class TestGenericBatch:
    def test_every_engine_supports_batches(self):
        program = review_pipeline(papers=10, committee=3, seed=1)
        for name in SOUND_ENGINE_NAMES:
            engine = create_engine(name, program)
            result = engine.apply_batch(batch_for_pipeline())
            assert result.operation == "batch", name
            assert engine.is_consistent(), name

    def test_batch_equals_sequential_model(self):
        program = review_pipeline(papers=10, committee=3, seed=1)
        batched = create_engine("cascade", program)
        batched.apply_batch(batch_for_pipeline())
        sequential = create_engine("cascade", program)
        for operation, subject in batch_for_pipeline():
            sequential.apply(operation, subject)
        assert batched.model == sequential.model


class TestCascadeSinglePass:
    def test_net_zero_update_is_free(self):
        program = pods(l=5, accepted=(2,))
        engine = create_engine("cascade", program)
        result = engine.apply_batch(
            [
                ("insert_fact", fact("accepted", 1)),
                ("delete_fact", fact("accepted", 1)),
            ]
        )
        assert not result.removed and not result.added
        assert not result.migrated
        assert engine.is_consistent()

    def test_batch_migrates_less_than_sequential(self):
        program = review_pipeline(papers=15, committee=3, seed=1)
        updates = [
            ("insert_fact", fact("negative_review", "pc1", 1)),
            ("delete_fact", fact("negative_review", "pc1", 1)),
            ("insert_fact", fact("negative_review", "pc2", 2)),
        ]
        batched = create_engine("cascade", program)
        batch_result = batched.apply_batch(updates)
        sequential = create_engine("cascade", program)
        sequential_migrated = sum(
            len(sequential.apply(op, subject).migrated)
            for op, subject in updates
        )
        assert len(batch_result.migrated) <= sequential_migrated
        assert batched.model == sequential.model

    def test_batch_rule_insert_at_higher_stratum(self):
        # rule and facts seeding different strata in one batch
        program = pods(l=4, accepted=(2,))
        engine = create_engine("cascade", program)
        engine.apply_batch(
            [
                ("insert_fact", fact("accepted", 3)),
                ("insert_rule", parse_clause(
                    "pending(X) :- submitted(X), not accepted(X), "
                    "not rejected(X)."
                )),
            ]
        )
        assert engine.is_consistent()

    def test_batch_rule_delete(self):
        program = pods(l=4, accepted=(2,))
        engine = create_engine("cascade", program)
        engine.apply_batch(
            [
                ("delete_rule", parse_clause(
                    "rejected(X) :- not accepted(X), submitted(X)."
                )),
                ("insert_fact", fact("accepted", 1)),
            ]
        )
        assert engine.model.count_of("rejected") == 0
        assert engine.is_consistent()

    def test_batch_across_chain(self):
        engine = create_engine("cascade", negation_chain(5))
        result = engine.apply_batch([("insert_fact", fact("p0"))])
        assert engine.is_consistent()
        assert fact("p2") in result.added

    def test_admission_errors_still_raised(self):
        from repro.datalog.errors import UpdateError

        engine = create_engine("cascade", pods(l=3, accepted=(2,)))
        with pytest.raises(UpdateError):
            engine.apply_batch(
                [("delete_fact", fact("accepted", 99))]
            )

    def test_insert_already_derived_fact_in_batch(self):
        engine = create_engine("cascade", pods(l=3, accepted=(2,)))
        result = engine.apply_batch(
            [("insert_fact", fact("rejected", 1))]  # already derived
        )
        assert not result.removed
        assert engine.is_consistent()
        # now asserted: survives rule deletion
        engine.delete_rule("rejected(X) :- not accepted(X), submitted(X).")
        assert fact("rejected", 1) in engine.model


class TestBatchProperty:
    def test_random_batches_match_oracle(self):
        from repro.workloads.synthetic import generate
        from repro.workloads.updates import random_updates

        for seed in range(6):
            syn = generate(seed)
            updates = random_updates(
                syn.program, syn.edb_relations, syn.arities, syn.domain,
                count=6, seed=seed,
            )
            engine = create_engine("cascade", syn.program)
            engine.apply_batch(updates)
            assert engine.is_consistent(), f"seed={seed}"
