"""Tests for repro.analysis: diagnostics, checks, independence report.

For every diagnostic code there is one fixture that triggers it and one
near-miss that must not; the stratification test pins the negative-cycle
witness; a hypothesis property asserts that analyzer-clean random programs
build under every engine without raising DatalogError.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CODES,
    Diagnostic,
    IndependenceReport,
    Severity,
    analyze_program,
    analyze_source,
    check_clause,
    independence_report,
    source_pragmas,
)
from repro.core.registry import ENGINE_NAMES, create_engine
from repro.datalog.errors import (
    DatalogError,
    SafetyError,
    StratificationError,
)
from repro.datalog.parser import parse_program
from repro.workloads import EXPECTED_DIAGNOSTICS, named_programs
from repro.workloads.synthetic import generate


def codes_of(report):
    return set(report.codes())


# A well-formed base program none of the checks should fire on (beyond the
# unavoidable DL006 for the output relation, which references exempt).
CLEAN = """
edge(1, 2). edge(2, 3).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
top(X) :- path(X, Y), not edge(Y, X).
ref(X) :- top(X).
use(X) :- ref(X).
"""


class TestRegistry:
    def test_codes_are_stable(self):
        assert sorted(CODES) == [f"DL{i:03d}" for i in range(14)]

    def test_severities(self):
        assert CODES["DL000"].severity is Severity.ERROR
        assert CODES["DL001"].severity is Severity.ERROR
        assert CODES["DL002"].severity is Severity.ERROR
        assert CODES["DL003"].severity is Severity.ERROR
        assert CODES["DL004"].severity is Severity.WARNING
        assert CODES["DL006"].severity is Severity.INFO

    def test_clean_program_has_no_warnings(self):
        report = analyze_source(CLEAN, ignore=("DL006",))
        assert list(report) == []
        assert report.ok and report.clean


class TestParseFailure:
    def test_dl000_triggering(self):
        report = analyze_source("p(X :- q(X).")
        assert codes_of(report) == {"DL000"}
        (finding,) = report.errors
        assert finding.line >= 1 and finding.column >= 1
        assert not report.ok

    def test_dl000_non_triggering(self):
        assert "DL000" not in codes_of(analyze_source(CLEAN))


class TestSafety:
    def test_dl001_head_variable(self):
        report = analyze_source("p(X, Y) :- q(X).\nq(1).")
        assert "DL001" in codes_of(report)
        finding = report.by_code("DL001")[0]
        assert "Y" in finding.message
        assert finding.line == 1

    def test_dl001_negative_literal_variable(self):
        report = analyze_source("p(X) :- q(X), not r(X, Z).\nq(1). r(1, 2).")
        assert "DL001" in codes_of(report)
        finding = report.by_code("DL001")[0]
        assert "Z" in finding.message

    def test_dl001_non_triggering(self):
        report = analyze_source("p(X) :- q(X), not r(X).\nq(1). r(2).")
        assert "DL001" not in codes_of(report)


class TestStratification:
    CYCLIC = """
    win(X) :- move(X, Y), not win(Y).
    move(a, b). move(b, a).
    """

    def test_dl002_with_witness(self):
        report = analyze_source(self.CYCLIC)
        assert "DL002" in codes_of(report)
        finding = report.by_code("DL002")[0]
        # The witness path names the cycle explicitly.
        assert "win -not-> win" in finding.message
        assert finding.severity is Severity.ERROR

    def test_dl002_two_relation_witness(self):
        report = analyze_source(
            "sleeps(X) :- person(X), not works(X).\n"
            "works(X) :- person(X), not sleeps(X).\n"
            "person(ann)."
        )
        finding = report.by_code("DL002")[0]
        assert "-not->" in finding.message
        # Both cycle members are on the witness path.
        assert "sleeps" in finding.message and "works" in finding.message

    def test_dl002_non_triggering(self):
        # Negation between strata is exactly what stratification allows.
        report = analyze_source(
            "p(X) :- q(X), not r(X).\nr(X) :- s(X).\nq(1). s(2)."
        )
        assert "DL002" not in codes_of(report)

    def test_error_carries_witness(self):
        # Admission (database construction) raises the position-carrying,
        # code-tagged error whose witness the diagnostic renders.
        with pytest.raises(StratificationError) as info:
            create_engine("cascade", self.CYCLIC)
        assert info.value.code == "DL002"
        assert info.value.witness  # the arcs of the offending cycle
        assert "win" in str(info.value)


class TestArity:
    def test_dl003_triggering(self):
        report = analyze_source("p(1, 2).\np(3).\n")
        assert "DL003" in codes_of(report)
        finding = report.by_code("DL003")[0]
        assert "arity 1" in finding.message and "arity 2" in finding.message

    def test_dl003_non_triggering(self):
        report = analyze_source("p(1, 2).\np(3, 4).\n")
        assert "DL003" not in codes_of(report)


class TestUndefined:
    def test_dl004_positive(self):
        report = analyze_source("p(X) :- q(X).")
        assert "DL004" in codes_of(report)
        assert "q" in report.by_code("DL004")[0].message

    def test_dl005_negated(self):
        report = analyze_source("p(X) :- q(X), not ghost(X).\nq(1).")
        assert "DL005" in codes_of(report)
        finding = report.by_code("DL005")[0]
        assert "ghost" in finding.message
        assert "vacuously" in finding.message

    def test_dl004_dl005_non_triggering(self):
        report = analyze_source("p(X) :- q(X), not r(X).\nq(1). r(2).")
        assert "DL004" not in codes_of(report)
        assert "DL005" not in codes_of(report)


class TestUnused:
    def test_dl006_triggering(self):
        report = analyze_source("p(X) :- q(X).\nq(1).")
        assert "DL006" in codes_of(report)
        finding = report.by_code("DL006")[0]
        assert finding.severity is Severity.INFO
        assert "p" in finding.message

    def test_dl006_non_triggering(self):
        report = analyze_source("p(X) :- q(X).\nr(X) :- p(X).\nq(1).")
        assert all(
            "relation p " not in f.message for f in report.by_code("DL006")
        )

    def test_dl006_reported_once_per_relation(self):
        report = analyze_source("p(X) :- q(X).\np(X) :- r(X).\nq(1). r(1).")
        assert len(report.by_code("DL006")) == 1


class TestSingletons:
    def test_dl007_triggering(self):
        report = analyze_source("p(X) :- q(X), r(X, Y).\nq(1). r(1, 2).")
        assert "DL007" in codes_of(report)
        assert "Y" in report.by_code("DL007")[0].message

    def test_dl007_underscore_exempt(self):
        report = analyze_source("p(X) :- q(X), r(X, _Y).\nq(1). r(1, 2).")
        assert "DL007" not in codes_of(report)

    def test_dl007_non_triggering(self):
        report = analyze_source("p(X, Y) :- q(X), r(X, Y).\nq(1). r(1, 2).")
        assert "DL007" not in codes_of(report)


class TestDuplicates:
    def test_dl008_triggering(self):
        report = analyze_source(
            "p(X) :- q(X), not r(X).\n"
            "p(A) :- q(A), not r(A).\n"
            "q(1). r(2)."
        )
        assert "DL008" in codes_of(report)
        finding = report.by_code("DL008")[0]
        assert finding.line == 2  # the later copy is the duplicate

    def test_dl008_non_triggering(self):
        # Same shape, different polarity: not a duplicate.
        report = analyze_source(
            "p(X) :- q(X), not r(X).\np(A) :- q(A), r(A).\nq(1). r(2)."
        )
        assert "DL008" not in codes_of(report)

    def test_dl008_facts_exempt(self):
        report = analyze_source("q(1).\nq(1).")
        assert "DL008" not in codes_of(report)


class TestSubsumption:
    def test_dl009_triggering(self):
        report = analyze_source(
            "p(X) :- q(X).\np(X) :- q(X), r(X).\nq(1). r(1)."
        )
        assert "DL009" in codes_of(report)
        finding = report.by_code("DL009")[0]
        assert finding.line == 2  # the narrower rule is the subsumed one

    def test_dl009_instance_subsumed(self):
        report = analyze_source("p(X) :- q(X).\np(1) :- q(1).\nq(1).")
        assert "DL009" in codes_of(report)

    def test_dl009_non_triggering(self):
        report = analyze_source("p(X) :- q(X).\np(X) :- r(X).\nq(1). r(1).")
        assert "DL009" not in codes_of(report)


class TestCrossProducts:
    def test_dl010_triggering(self):
        report = analyze_source("p(X, Y) :- q(X), r(Y).\nq(1). r(2).")
        assert "DL010" in codes_of(report)
        assert " x " in report.by_code("DL010")[0].message

    def test_dl010_ground_literal_exempt(self):
        # A ground positive literal is a membership test, not a join input.
        report = analyze_source("p(X) :- q(X), r(1).\nq(1). r(1).")
        assert "DL010" not in codes_of(report)

    def test_dl010_negative_literal_exempt(self):
        report = analyze_source(
            "p(X) :- q(X), not r(Y, X).\nq(1). r(1, 2)."
        )
        assert "DL010" not in codes_of(report)

    def test_dl010_non_triggering(self):
        report = analyze_source("p(X, Y) :- q(X), r(X, Y).\nq(1). r(1, 2).")
        assert "DL010" not in codes_of(report)


class TestReport:
    DEFECTIVE = "p(X, Y) :- q(X).\nq(1).\n"

    def test_errors_sort_before_warnings(self):
        report = analyze_source(self.DEFECTIVE)
        severities = [f.severity.rank for f in report]
        assert severities == sorted(severities)

    def test_render_carries_position_and_hint(self):
        report = analyze_source(self.DEFECTIVE)
        rendered = report.render("prog.dl")
        assert "prog.dl:1:1: error DL001" in rendered
        assert "hint:" in rendered

    def test_json_round_trip(self):
        payload = json.loads(analyze_source(self.DEFECTIVE).to_json("prog.dl"))
        assert payload["path"] == "prog.dl"
        codes = {entry["code"] for entry in payload["diagnostics"]}
        assert "DL001" in codes
        first = payload["diagnostics"][0]
        assert {"code", "message", "severity", "line", "column"} <= set(first)

    def test_ignore_filters_codes(self):
        report = analyze_source(self.DEFECTIVE, ignore=("DL001",))
        assert "DL001" not in codes_of(report)

    def test_clean_vs_ok(self):
        infos_only = analyze_source("p(X) :- q(X).\nq(1).")
        assert infos_only.ok and infos_only.clean  # DL006 is info
        warned = analyze_source("p(X) :- q(X), r(Y, X).\nq(1). r(1, 2).")
        assert warned.ok and not warned.clean  # DL007 is a warning

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            Diagnostic(code="DL999", message="nope").title


class TestPragmas:
    def test_source_pragmas_parsed(self):
        text = "% repro: allow DL007, DL010\np(1)."
        assert source_pragmas(text) == {"DL007", "DL010"}

    def test_pragma_suppresses(self):
        text = (
            "% repro: allow DL007\n"
            "p(X) :- q(X), r(X, Y).\nq(1). r(1, 2)."
        )
        assert "DL007" not in codes_of(analyze_source(text))

    def test_pragma_only_suppresses_listed(self):
        text = (
            "% repro: allow DL007\n"
            "p(X, Y) :- q(X).\nq(1)."
        )
        assert "DL001" in codes_of(analyze_source(text))

    def test_pragma_scope_is_file_global(self):
        # The pragma applies to every clause of the file regardless of
        # where the pragma line sits — including *after* the offending
        # clause. This is documented behavior, not an accident.
        before = (
            "% repro: allow DL007\n"
            "p(X) :- q(X), r(X, Y).\nq(1). r(1, 2)."
        )
        after = (
            "p(X) :- q(X), r(X, Y).\nq(1). r(1, 2).\n"
            "% repro: allow DL007\n"
        )
        assert "DL007" not in codes_of(analyze_source(before))
        assert "DL007" not in codes_of(analyze_source(after))
        assert source_pragmas(after) == {"DL007"}


class TestCheckClause:
    def test_local_findings(self):
        (clause,) = list(parse_program("p(X) :- q(X), r(X, Y).\nq(1). r(1, 2)."))[0:1]
        findings = check_clause(clause)
        assert {f.code for f in findings} == {"DL007"}

    def test_program_context_adds_undefined(self):
        program = parse_program("q(1).")
        (rule,) = list(parse_program("p(X) :- q(X), not ghost(X).\nq(1). ghost(9)."))[:1]
        findings = check_clause(rule, program.clauses)
        assert "DL005" in {f.code for f in findings}


class TestWorkloadAnnotations:
    def test_every_workload_clean_modulo_annotations(self):
        for name, program in named_programs().items():
            expected = EXPECTED_DIAGNOSTICS.get(name, ())
            report = analyze_program(program, ignore=expected)
            assert list(report) == [], (
                f"{name}: unexpected {sorted(codes_of(report))}"
            )

    def test_annotations_are_not_stale(self):
        for name, program in named_programs().items():
            fired = codes_of(analyze_program(program))
            stale = set(EXPECTED_DIAGNOSTICS.get(name, ())) - fired
            assert not stale, f"{name}: annotated {sorted(stale)} never fire"


class TestIndependence:
    TWO_SHARDS = """
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
    edge(a, b).
    allowed(U) :- user(U), not banned(U).
    user(ann). banned(bob).
    """

    def test_shards_are_the_connected_components(self):
        report = independence_report(self.TWO_SHARDS)
        shards = [set(shard) for shard in report.shards()]
        assert {"reach", "edge"} in shards
        assert {"allowed", "user", "banned"} in shards

    def test_cross_shard_updates_commute(self):
        report = independence_report(self.TWO_SHARDS)
        assert report.commutes("edge", "banned")
        assert report.commutes("banned", "edge")
        assert report.disjoint_cones("edge", "user")

    def test_same_shard_updates_conflict(self):
        report = independence_report(self.TWO_SHARDS)
        assert not report.commutes("edge", "reach")
        assert report.conflict("user", "banned")

    def test_negation_sensitivity(self):
        report = independence_report(self.TWO_SHARDS)
        # allowed depends on banned through a negation: an update to
        # banned can *retract* allowed facts.
        assert "allowed" in report.negation_sensitive("banned")
        assert report.negation_sensitive("edge") == frozenset()

    def test_accepts_program_and_graph(self):
        program = parse_program("p(X) :- q(X).\nq(1).")
        by_program = IndependenceReport(program)
        by_graph = independence_report(program.clauses)
        assert by_program.shards() == by_graph.shards()

    def test_to_dict_shape(self):
        payload = independence_report(self.TWO_SHARDS).to_dict()
        assert "shards" in payload and "relations" in payload
        assert "negation_sensitive_pairs" in payload
        assert "conflicts" in payload

    def test_to_dict_conflicts_carry_witnesses(self):
        payload = independence_report(self.TWO_SHARDS).to_dict()
        by_pair = {tuple(c["pair"]): c for c in payload["conflicts"]}
        assert ("edge", "reach") in by_pair
        conflict = by_pair[("edge", "reach")]
        assert conflict["relations"]
        witness = conflict["witness"]
        assert witness is not None
        assert witness["relation"] in conflict["relations"]
        assert witness["writer"] in ("edge", "reach")
        # A negation-sensitive conflict is flagged as such.
        negation = by_pair[("allowed", "banned")]
        assert negation["negation_sensitive"]

    def test_negation_sensitive_pairs(self):
        report = independence_report(self.TWO_SHARDS)
        pairs = report.negation_sensitive_pairs()
        assert ("allowed", "banned") in pairs
        # The monotone shard has no negation anywhere: never flagged.
        assert all("edge" not in pair and "reach" not in pair for pair in pairs)

    def test_independent_pairs_cached(self):
        report = independence_report(self.TWO_SHARDS)
        first = report.independent_pairs()
        assert report.independent_pairs() is first  # one O(n²) sweep

    def test_writes_include_dependents(self):
        report = independence_report(self.TWO_SHARDS)
        assert "reach" in report.writes("edge")
        assert "allowed" in report.writes("banned")


class TestEngineSurface:
    def test_insert_rule_carries_warnings(self):
        engine = create_engine("cascade", "q(1).")
        result = engine.insert_rule("p(X) :- q(X), not ghost(X).")
        assert any(w.code == "DL005" for w in result.warnings)
        assert "DL005" in result.summary()

    def test_clean_rule_carries_none(self):
        engine = create_engine("cascade", "q(1).")
        result = engine.insert_rule("p(X) :- q(X).")
        assert result.warnings == ()

    def test_engine_check_reports_program(self):
        engine = create_engine("cascade", "p(X) :- q(X), r(Y, X).\nq(1). r(1, 2).")
        report = engine.check()
        assert "DL007" in codes_of(report)

    def test_insert_rule_error_is_code_tagged(self):
        engine = create_engine("cascade", "q(1).")
        with pytest.raises(SafetyError) as info:
            engine.insert_rule("p(X, Y) :- q(X).")
        assert info.value.code == "DL001"


# ---------------------------------------------------------------------------
# Property: analyzer-clean random programs evaluate under every engine.
# ---------------------------------------------------------------------------


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_clean_random_programs_build_everywhere(seed):
    program = generate(seed).program
    report = analyze_program(program)
    # Random programs may carry intentional lints but must never carry
    # analyzer *errors* ...
    assert report.ok, f"seed {seed}: {sorted(codes_of(report))}"
    # ... and an error-free program must build and evaluate under every
    # engine without raising.
    for name in ENGINE_NAMES:
        try:
            engine = create_engine(name, program)
        except DatalogError as error:  # pragma: no cover - the property
            raise AssertionError(
                f"seed {seed}: engine {name} rejected an analyzer-clean "
                f"program: {error}"
            ) from error
        assert engine.model is not None
