"""Tests for the static solution of section 4.1."""

import pytest

from repro.core.static_engine import StaticEngine
from repro.datalog.atoms import fact
from repro.datalog.errors import StratificationError, UpdateError
from repro.workloads.paper import conf, pods

PODS = pods(l=5, accepted=(2, 4))


class TestFactInsertion:
    def test_insertion_updates_model(self):
        engine = StaticEngine(PODS)
        engine.insert_fact("accepted(1)")
        assert fact("accepted", 1) in engine.model
        assert fact("rejected", 1) not in engine.model
        assert engine.is_consistent()

    def test_insertion_evicts_whole_negative_dependents(self):
        engine = StaticEngine(PODS)
        result = engine.insert_fact("accepted(1)")
        # every rejected fact is evicted (p ∈ Neg(rejected) relation-wide)
        assert {f.relation for f in result.removed} == {"rejected"}
        assert len(result.removed) == 3  # rejected(1), rejected(3), rejected(5)

    def test_survivors_migrate(self):
        engine = StaticEngine(PODS)
        result = engine.insert_fact("accepted(1)")
        assert result.migrated == {fact("rejected", 3), fact("rejected", 5)}

    def test_insert_existing_fact_is_noop(self):
        engine = StaticEngine(PODS)
        result = engine.insert_fact("accepted(2)")
        assert result.stats["noop"]
        assert not result.removed and not result.added

    def test_insert_derived_fact_changes_nothing(self):
        engine = StaticEngine(PODS)
        result = engine.insert_fact("rejected(1)")  # already derived
        assert not result.removed and not result.added
        assert engine.is_consistent()
        # but it is now asserted: deleting the rule keeps it
        engine.delete_rule("rejected(X) :- not accepted(X), submitted(X).")
        assert fact("rejected", 1) in engine.model
        assert engine.is_consistent()


class TestFactDeletion:
    def test_deletion_updates_model(self):
        engine = StaticEngine(PODS)
        engine.delete_fact("accepted(4)")
        assert fact("accepted", 4) not in engine.model
        assert fact("rejected", 4) in engine.model
        assert engine.is_consistent()

    def test_deletion_evicts_positive_dependents_including_own_relation(self):
        engine = StaticEngine(PODS)
        result = engine.delete_fact("accepted(4)")
        # p ∈ Pos(p): the other accepted fact is evicted and migrates back
        assert fact("accepted", 2) in result.removed
        assert fact("accepted", 2) in result.migrated

    def test_deleting_derived_fact_rejected(self):
        engine = StaticEngine(PODS)
        with pytest.raises(UpdateError):
            engine.delete_fact("rejected(1)")

    def test_deleting_unknown_fact_rejected(self):
        engine = StaticEngine(PODS)
        with pytest.raises(UpdateError):
            engine.delete_fact("accepted(99)")


class TestRuleUpdates:
    def test_insert_rule(self):
        engine = StaticEngine(PODS)
        engine.insert_rule("shortlist(X) :- submitted(X), not rejected(X).")
        assert {f.args[0] for f in engine.model.facts_of("shortlist")} == {2, 4}
        assert engine.is_consistent()

    def test_insert_rule_keeps_stratified(self):
        engine = StaticEngine(PODS)
        with pytest.raises(StratificationError):
            engine.insert_rule("accepted(X) :- rejected(X).")
        assert engine.is_consistent()

    def test_delete_rule(self):
        engine = StaticEngine(PODS)
        engine.delete_rule("rejected(X) :- not accepted(X), submitted(X).")
        assert engine.model.count_of("rejected") == 0
        assert engine.is_consistent()

    def test_rule_cycle_insert_delete_roundtrip(self):
        engine = StaticEngine(PODS)
        rule = "shortlist(X) :- submitted(X), not rejected(X)."
        engine.insert_rule(rule)
        before = engine.model.as_set()
        engine.delete_rule(rule)
        engine.insert_rule(rule)
        assert engine.model.as_set() == before
        assert engine.is_consistent()


class TestExample1Migration:
    def test_conf_static_migrates_the_late_acceptance(self):
        engine = StaticEngine(conf(l=3))
        result = engine.insert_fact("rejected(4)")
        # the asserted accepted(l+1) migrates under the static solution
        assert fact("accepted", 4) in result.migrated
        assert engine.is_consistent()


class TestBookkeeping:
    def test_no_supports(self):
        engine = StaticEngine(PODS)
        assert engine.support_entry_count() == 0

    def test_totals_accumulate(self):
        engine = StaticEngine(PODS)
        engine.insert_fact("accepted(1)")
        engine.delete_fact("accepted(1)")
        assert engine.totals.updates == 2
        assert engine.totals.migrated > 0
