"""Cross-engine integration: every sound engine tracks the oracle through
deterministic update sequences on the workload families."""

from repro.bench.harness import compare_engines
from repro.core.registry import SOUND_ENGINE_NAMES
from repro.workloads.families import (
    access_control,
    bill_of_materials,
    reachability,
    review_pipeline,
)
from repro.workloads.paper import pods
from repro.workloads.updates import asserted_facts, flip_sequence


def assert_all_consistent(program, updates):
    """Every sound engine tracks the oracle — on both runtime
    representations (the columnar arena and the record-object baseline),
    which must also agree with each other on final support totals."""
    by_axis = {}
    for arena in (True, False):
        runs = compare_engines(
            program,
            updates,
            SOUND_ENGINE_NAMES,
            verify=True,
            engine_kwargs={"arena": arena},
        )
        for run in runs:
            axis = "arena" if arena else "record"
            assert run.consistent, (
                f"{run.engine} ({axis}) diverged {run.divergences}x"
            )
        by_axis[arena] = runs
    for arena_run, record_run in zip(by_axis[True], by_axis[False]):
        assert (
            arena_run.support_entries_end == record_run.support_entries_end
        ), (
            f"{arena_run.engine}: arena kept "
            f"{arena_run.support_entries_end} support entries, records "
            f"kept {record_run.support_entries_end}"
        )
    return by_axis[True]


class TestFamilies:
    def test_review_pipeline(self):
        program = review_pipeline(papers=10, committee=3, seed=4)
        updates = flip_sequence(
            asserted_facts(program, ["submitted"])[:4], seed=4, count=8
        )
        assert_all_consistent(program, updates)

    def test_reachability(self):
        program = reachability(nodes=7, seed=11)
        updates = flip_sequence(
            asserted_facts(program, ["link"])[:5], seed=11, count=10
        )
        assert_all_consistent(program, updates)

    def test_bill_of_materials(self):
        from repro.datalog.atoms import fact

        program = bill_of_materials(assemblies=4, depth=3, seed=3)
        # toggle missing-part exceptions
        updates = [
            ("insert_fact", fact("missing", "part1")),
            ("insert_fact", fact("missing", "part3")),
            ("delete_fact", fact("missing", "part1")),
        ]
        assert_all_consistent(program, updates)

    def test_access_control(self):
        from repro.datalog.atoms import fact

        program = access_control(users=8, roles=3, resources=4, seed=6)
        updates = [
            ("insert_fact", fact("revoked", "user1", "res1")),
            ("insert_fact", fact("revoked", "user2", "res2")),
            ("delete_fact", fact("revoked", "user1", "res1")),
            ("insert_fact", fact("member", "user9", "role2")),
        ]
        assert_all_consistent(program, updates)


class TestMigrationOrdering:
    """The paper's central comparative claim, pinned on a deterministic
    workload: static ≥ dynamic ≥ sets-of-sets ≥ cascade ≥ fact-level = 0."""

    def test_ordering_on_review_pipeline(self):
        from repro.datalog.atoms import fact

        program = review_pipeline(papers=15, committee=3, seed=1)
        updates = [
            ("insert_fact", fact("negative_review", "pc1", 1)),
            ("insert_fact", fact("negative_review", "pc2", 2)),
            ("delete_fact", fact("negative_review", "pc1", 1)),
            ("insert_fact", fact("negative_review", "pc3", 3)),
        ]
        names = ["static", "dynamic", "setofsets-paired", "cascade", "factlevel"]
        runs = compare_engines(program, updates, names, verify=True)
        migrations = {run.engine: run.migrated for run in runs}
        assert migrations["static"] >= migrations["dynamic"]
        assert migrations["dynamic"] >= migrations["setofsets-paired"]
        assert migrations["setofsets-paired"] >= migrations["cascade"]
        assert migrations["cascade"] >= migrations["factlevel"]
        assert migrations["factlevel"] == 0


class TestRuleUpdateEquivalence:
    def test_rule_updates_across_engines(self):
        program = pods(l=8, accepted=(2, 4, 6))
        updates = [
            ("insert_rule", "pending(X) :- submitted(X), not accepted(X), not rejected(X)."),
            ("insert_fact", "accepted(1)"),
            ("delete_rule", "pending(X) :- submitted(X), not accepted(X), not rejected(X)."),
            ("delete_fact", "accepted(1)"),
        ]
        from repro.datalog.parser import parse_clause, parse_fact

        parsed = []
        for operation, subject in updates:
            if "rule" in operation:
                parsed.append((operation, parse_clause(subject)))
            else:
                parsed.append((operation, parse_fact(subject)))
        assert_all_consistent(program, parsed)
