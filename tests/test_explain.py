"""Tests for proof-tree explanations (the belief-revision 'why')."""

import pytest

from repro.core.explain import ExplanationError, explain, explain_absence
from repro.core.registry import ENGINE_NAMES, create_engine
from repro.datalog.atoms import fact
from repro.workloads.paper import meet, pods

PODS = pods(l=3, accepted=(2,))


class TestExplain:
    def test_asserted_fact(self):
        engine = create_engine("cascade", PODS)
        tree = explain(engine, "accepted(2)")
        assert tree.is_assertion
        assert tree.depth() == 1

    def test_derived_fact(self):
        engine = create_engine("cascade", PODS)
        tree = explain(engine, "rejected(1)")
        assert not tree.is_assertion
        assert [child.fact for child in tree.positive] == [
            fact("submitted", 1)
        ]
        assert tree.negative == [fact("accepted", 1)]

    def test_pretty_output(self):
        engine = create_engine("cascade", PODS)
        rendered = explain(engine, "rejected(1)").pretty()
        assert "[by:" in rendered
        assert "[asserted]" in rendered
        assert "[absent]" in rendered

    def test_missing_fact_raises(self):
        engine = create_engine("cascade", PODS)
        with pytest.raises(ExplanationError):
            explain(engine, "rejected(2)")

    def test_recursive_chain(self):
        engine = create_engine(
            "cascade",
            """
            edge(a, b). edge(b, c). edge(c, d).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            """,
        )
        tree = explain(engine, "path(a, d)")
        assert tree.depth() >= 3
        assert fact("edge", "c", "d") in tree.facts_used()

    def test_noncircular_through_positive_cycle(self):
        engine = create_engine(
            "cascade",
            "spark(1). on(X) :- spark(X). on(X) :- relay(X). relay(X) :- on(X).",
        )
        tree = explain(engine, "relay(1)")
        # the argument must bottom out at the spark, not cite relay itself
        chain = tree.facts_used()
        assert fact("spark", 1) in chain

    def test_works_with_every_engine(self):
        for name in ENGINE_NAMES:
            if name == "dynamic-unsigned":
                continue
            engine = create_engine(name, PODS)
            tree = explain(engine, "rejected(3)")
            assert tree.fact == fact("rejected", 3), name


class TestExplainAbsence:
    def test_blocked_by_negation(self):
        engine = create_engine("cascade", PODS)
        [reason] = explain_absence(engine, "rejected(2)")
        assert "accepted(2) is present" in reason.pretty()

    def test_no_matching_instance(self):
        engine = create_engine("cascade", PODS)
        [reason] = explain_absence(engine, "rejected(99)")
        assert "no match" in reason.pretty()

    def test_no_rules_at_all(self):
        engine = create_engine("cascade", PODS)
        assert explain_absence(engine, "phantom(1)") == []

    def test_present_fact_rejected(self):
        engine = create_engine("cascade", PODS)
        with pytest.raises(ValueError):
            explain_absence(engine, "rejected(1)")

    def test_multiple_rules_multiple_reasons(self):
        engine = create_engine("cascade", meet(l=2))
        reasons = explain_absence(engine, "accepted(9)")
        assert len(reasons) == 2  # both accepted rules fail
