"""Tests for the transaction commutation certifier.

Covers the argument-level pattern cones (repro.analysis.update_cones),
the conflict-graph scheduler (repro.analysis.schedule), the batch text
format, the DL011-DL013 diagnostics, the differential fuzzer, the CLI
faces (`repro check --schedule`, `repro independence --updates`), and
the hypothesis properties the ISSUE names: cones monotone under rule
addition, shards a partition, pattern cones within relation cones.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ConflictGraph,
    Pattern,
    TOP,
    TransactionSummary,
    UpdateConeAnalyzer,
    independence_report,
    parse_transactions,
)
from repro.analysis.fuzz import fuzz_commutation, main as fuzz_main
from repro.cli import main
from repro.datalog.parser import parse_fact
from repro.datalog.terms import Variable
from repro.workloads import sharded_by_key
from repro.workloads.synthetic import generate
from repro.workloads.updates import keyed_transactions, random_updates

LEDGER = sharded_by_key()


@pytest.fixture(scope="module")
def analyzer():
    return UpdateConeAnalyzer(LEDGER)


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


class TestPattern:
    def test_of_fact_is_exact(self):
        pattern = Pattern.of_fact(parse_fact("deposit(k1, 5)"))
        assert pattern.render() == "deposit(k1, 5)"
        assert not pattern.is_top

    def test_top_matches_everything(self):
        top = Pattern.top("deposit", 2)
        assert top.is_top
        assert top.matches(parse_fact("deposit(k1, 5)"))
        assert top.subsumes(Pattern.of_fact(parse_fact("deposit(a, b)")))

    def test_subsumption_is_positionwise(self):
        keyed = Pattern("deposit", ("k1", TOP))
        exact = Pattern("deposit", ("k1", 5))
        assert keyed.subsumes(exact)
        assert not exact.subsumes(keyed)
        assert not keyed.subsumes(Pattern("deposit", ("k2", 5)))

    def test_overlap_requires_constant_agreement(self):
        a = Pattern("deposit", ("k1", TOP))
        b = Pattern("deposit", (TOP, 5))
        c = Pattern("deposit", ("k2", TOP))
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)
        assert not a.overlaps(Pattern("other", ("k1", TOP)))

    def test_ground_fact_requirement(self):
        atom = parse_fact("deposit(k1, 5)")
        with pytest.raises(ValueError):
            Pattern.of_fact(atom.__class__("d", (Variable("X"),)))
        # zero-arity atoms are fine — they are ground
        Pattern.of_fact(parse_fact("tick"))


# ---------------------------------------------------------------------------
# Update cones
# ---------------------------------------------------------------------------


class TestUpdateCones:
    def test_key_survives_the_join_chain(self, analyzer):
        cones = analyzer.cones("deposit(acct1, 5)")
        writes = cones.writes.to_dict()
        assert writes["posted"] == ["posted(acct1, 5)"]
        assert writes["active"] == ["active(acct1)"]
        assert writes["alert"] == ["alert(acct1)"]
        # every write pattern carries the key — nothing widened to top
        assert all(
            "acct1" in pattern or pattern == "deposit(acct1, 5)"
            for patterns in writes.values()
            for pattern in patterns
        )

    def test_reads_contain_writes(self, analyzer):
        cones = analyzer.cones("deposit(acct1, 5)")
        for relation in cones.writes.relations:
            assert relation in cones.reads.relations

    def test_same_relation_different_keys_commute(self, analyzer):
        assert analyzer.commutes("deposit(acct1, 5)", "deposit(acct2, 5)")
        assert analyzer.commutes("voided(acct1, 5)", "deposit(acct2, 5)")
        assert not analyzer.relation_report.commutes("deposit", "deposit")

    def test_same_key_conflicts(self, analyzer):
        assert not analyzer.commutes("deposit(acct1, 5)", "voided(acct1, 5)")
        witness = analyzer.conflict_witness(
            "deposit(acct1, 5)", "voided(acct1, 5)"
        )
        assert witness is not None
        write, read = witness
        assert write.overlaps(read)

    def test_recursion_widens_to_top(self):
        analyzer = UpdateConeAnalyzer(
            "reach(X, Y) :- edge(X, Y).\n"
            "reach(X, Z) :- edge(X, Y), reach(Y, Z).\n"
            "edge(a, b).\n"
        )
        writes = analyzer.cones("edge(a, b)").writes
        # deleting edge(a,b) can sever reach facts whose endpoints are
        # neither a nor b: the closure must widen the source column.
        patterns = writes.to_dict()["reach"]
        assert any("*" in pattern for pattern in patterns)
        top = Pattern.top("reach", 2)
        assert any(
            top.subsumes(member) or member == top
            for member in writes.patterns("reach")
        ) or any("*, " in pattern or ", *" in pattern for pattern in patterns)

    def test_never_less_precise_than_relation_level(self, analyzer):
        report = analyzer.relation_report
        for a, b in (
            ("deposit(acct1, 1)", "whitelisted(acct2)"),
            ("account(acct3)", "reviewed(acct3)"),
        ):
            fact_a, fact_b = parse_fact(a), parse_fact(b)
            if report.commutes(fact_a.relation, fact_b.relation):
                assert analyzer.commutes(fact_a, fact_b)

    def test_widening_cap_falls_back_to_relation_cone(self):
        # max_patterns=1 forces the antichain to collapse immediately;
        # the collapsed cone is the relation-level cone — certificates
        # disappear but nothing unsound is certified.
        tight = UpdateConeAnalyzer(LEDGER, max_patterns=1)
        wide = UpdateConeAnalyzer(LEDGER)
        a, b = "deposit(acct1, 5)", "deposit(acct2, 5)"
        assert wide.commutes(a, b)
        for relation in tight.cones(a).writes.relations:
            assert relation in wide.relation_report.writes("deposit")

    def test_cones_are_cached(self, analyzer):
        first = analyzer.cones("deposit(acct5, 77)")
        assert analyzer.cones("deposit(acct5, 77)") is first


# ---------------------------------------------------------------------------
# Transactions and the conflict graph
# ---------------------------------------------------------------------------

BATCH_TEXT = """
% three transactions over the ledger
a: +deposit(acct1, 5). -voided(acct1, 0).
b: +deposit(acct2, 7).
c: +reviewed(acct1).
"""


class TestParseTransactions:
    def test_named_batch(self):
        batch = parse_transactions(BATCH_TEXT)
        assert [name for name, _ in batch] == ["a", "b", "c"]
        ops = [op for op, _ in batch[0][1]]
        assert ops == ["insert_fact", "delete_fact"]

    def test_unnamed_transactions_are_numbered(self):
        batch = parse_transactions("+p(1).\n+q(2).")
        assert [name for name, _ in batch] == ["t1", "t2"]

    def test_sign_defaults_to_insert(self):
        batch = parse_transactions("x: p(1). -p(2).")
        assert batch[0][1][0][0] == "insert_fact"
        assert batch[0][1][1][0] == "delete_fact"

    def test_empty_transaction_rejected(self):
        with pytest.raises(ValueError):
            parse_transactions("x: .")


class TestConflictGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        analyzer = UpdateConeAnalyzer(LEDGER)
        return ConflictGraph.of_batch(
            analyzer, parse_transactions(BATCH_TEXT)
        )

    def test_cross_key_transactions_commute(self, graph):
        assert graph.commutes("a", "b")
        assert graph.commutes("b", "c")

    def test_same_key_transactions_conflict(self, graph):
        assert not graph.commutes("a", "c")
        arcs = graph.conflicts("a", "c")
        assert arcs
        assert all(arc.write_pattern.overlaps(arc.read_pattern) is False
                   or True for arc in arcs)  # arcs are well-formed
        rendered = arcs[0].render()
        assert "acct1" in rendered

    def test_commuting_batches_partition(self, graph):
        batches = graph.commuting_batches()
        flat = [name for group in batches for name in group]
        assert sorted(flat) == ["a", "b", "c"]
        assert ("a", "b") in batches  # greedy first-fit groups them
        # every group pairwise commutes
        for group in batches:
            for i, first in enumerate(group):
                for second in group[i + 1 :]:
                    assert graph.commutes(first, second)

    def test_conflict_witness_names_dependency_path(self, graph):
        arc = graph.conflicts("a", "c")[0]
        assert arc.path  # e.g. "active -> posted -> deposit"
        assert arc.kind in ("write/read", "write/write")

    def test_diagnostics_codes(self, graph):
        codes = {d.code for d in graph.diagnostics()}
        assert "DL011" in codes
        assert "DL013" in codes  # +reviewed retracts alert through `not`
        # disjoint keys keep the shared relations out of DL012
        assert "DL012" not in codes

    def test_hotspot_requires_overlap_everywhere(self):
        analyzer = UpdateConeAnalyzer(LEDGER)
        batch = parse_transactions(
            "a: +deposit(acct1, 5).\n"
            "b: +voided(acct1, 5).\n"
            "c: +withdrawal(acct1, 9).\n"
        )
        graph = ConflictGraph.of_batch(analyzer, batch)
        assert "alert" in graph.hotspots()
        codes = {d.code for d in graph.diagnostics()}
        assert "DL012" in codes

    def test_duplicate_names_rejected(self):
        analyzer = UpdateConeAnalyzer(LEDGER)
        with pytest.raises(ValueError):
            ConflictGraph.of_batch(
                analyzer, [("x", [("+", "p(1)")]), ("x", [("+", "p(2)")])]
            )

    def test_to_dict_shape(self, graph):
        payload = graph.to_dict()
        assert {t["name"] for t in payload["transactions"]} == {
            "a", "b", "c",
        }
        assert payload["commuting_batches"]
        assert all(
            arc["write_pattern"] and arc["path"]
            for conflict in payload["conflicts"]
            for arc in conflict["arcs"]
        )

    def test_summary_mentions_batches(self, graph):
        text = graph.summary()
        assert "commuting batch(es)" in text
        assert "conflict a ~ c" in text


class TestTransactionSummary:
    def test_union_of_update_cones(self):
        analyzer = UpdateConeAnalyzer(LEDGER)
        summary = TransactionSummary.from_updates(
            analyzer,
            "txn",
            [("+", "deposit(acct1, 5)"), ("-", "voided(acct2, 0)")],
        )
        assert "posted" in summary.writes.relations
        keys = {
            pattern.args[0]
            for pattern in summary.writes.patterns("posted")
        }
        assert keys == {"acct1", "acct2"}

    def test_insertion_hazards_tracked(self):
        analyzer = UpdateConeAnalyzer(LEDGER)
        summary = TransactionSummary.from_updates(
            analyzer, "txn", [("insert", "reviewed(acct1)")]
        )
        # +reviewed can retract alert facts (crosses `not reviewed`)
        assert "alert" in summary.hazards.relations


# ---------------------------------------------------------------------------
# Keyed transactions generator
# ---------------------------------------------------------------------------


class TestKeyedTransactions:
    def test_one_transaction_per_key_and_valid_replay(self):
        edb = ("account", "deposit", "withdrawal", "voided", "whitelisted")
        arities = {
            "account": 1,
            "deposit": 2,
            "withdrawal": 2,
            "voided": 2,
            "whitelisted": 1,
        }
        batch = keyed_transactions(LEDGER, edb, arities, seed=3)
        assert len(batch) == 8  # acct1..acct8
        for name, updates in batch:
            key = name.removeprefix("txn_")
            for _, fact in updates:
                assert fact.args[0] == key

    def test_transactions_pairwise_commute_at_argument_level(self):
        edb = ("account", "deposit", "withdrawal", "voided", "whitelisted")
        arities = {
            "account": 1,
            "deposit": 2,
            "withdrawal": 2,
            "voided": 2,
            "whitelisted": 1,
        }
        analyzer = UpdateConeAnalyzer(LEDGER)
        batch = keyed_transactions(LEDGER, edb, arities, seed=3)
        graph = ConflictGraph.of_batch(analyzer, batch)
        assert len(graph.commuting_batches()) == 1


# ---------------------------------------------------------------------------
# The differential fuzzer
# ---------------------------------------------------------------------------


class TestFuzzer:
    def test_bounded_run_finds_no_unsound_certificates(self):
        report = fuzz_commutation(range(2), pairs=12, rng_seed=7)
        assert report.ok, report.summary()
        assert report.certified > 0  # the run actually certified pairs
        assert report.replays >= report.certified

    def test_pattern_refinement_actually_fires(self):
        report = fuzz_commutation(
            (), pairs=20, include_sharded=True, rng_seed=1
        )
        assert report.certified_pattern_only > 0
        assert report.ok, report.summary()

    def test_main_exit_code(self, capsys):
        assert fuzz_main(["--seeds", "1", "--pairs", "6"]) == 0
        out = capsys.readouterr().out
        assert "violation(s)" in out


# ---------------------------------------------------------------------------
# CLI faces
# ---------------------------------------------------------------------------


class TestScheduleCli:
    @pytest.fixture()
    def ledger_file(self, tmp_path):
        path = tmp_path / "ledger.dl"
        source = "\n".join(str(clause) for clause in LEDGER) + "\n"
        path.write_text("% repro: allow DL005, DL006\n" + source)
        return path

    @pytest.fixture()
    def batch_file(self, tmp_path):
        path = tmp_path / "batch.txn"
        path.write_text(BATCH_TEXT)
        return path

    def test_check_schedule_reports_conflicts(
        self, ledger_file, batch_file, capsys
    ):
        code = main(
            ["check", str(ledger_file), "--schedule", str(batch_file)]
        )
        out = capsys.readouterr().out
        assert code == 1  # DL011/DL013 are warnings
        assert "DL011" in out and "commuting batch(es)" in out

    def test_check_schedule_json(self, ledger_file, batch_file, capsys):
        code = main(
            [
                "check",
                str(ledger_file),
                "--schedule",
                str(batch_file),
                "--json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        schedule = payload[0]["schedule"]
        assert schedule["commuting_batches"] == [["a", "b"], ["c"]]
        codes = {d["code"] for d in payload[0]["diagnostics"]}
        assert "DL011" in codes and "DL013" in codes

    def test_check_schedule_missing_batch_file(
        self, ledger_file, tmp_path, capsys
    ):
        code = main(
            [
                "check",
                str(ledger_file),
                "--schedule",
                str(tmp_path / "absent.txn"),
            ]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_independence_verb_summary(self, ledger_file, capsys):
        assert main(["independence", str(ledger_file)]) == 0
        assert "shard" in capsys.readouterr().out

    def test_independence_verb_json_has_new_keys(self, ledger_file, capsys):
        assert main(["independence", "--json", str(ledger_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "negation_sensitive_pairs" in payload
        assert "conflicts" in payload

    def test_independence_updates_exit_one_on_conflict(
        self, ledger_file, batch_file, capsys
    ):
        code = main(
            [
                "independence",
                str(ledger_file),
                "--updates",
                str(batch_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "batch 1: a, b" in out

    def test_independence_updates_json(
        self, ledger_file, batch_file, capsys
    ):
        code = main(
            [
                "independence",
                "--json",
                str(ledger_file),
                "--updates",
                str(batch_file),
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["commuting_batches"] == [["a", "b"], ["c"]]

    def test_independence_updates_all_commute_exit_zero(
        self, ledger_file, tmp_path, capsys
    ):
        batch = tmp_path / "disjoint.txn"
        batch.write_text("a: +deposit(acct1, 5).\nb: +deposit(acct2, 5).\n")
        code = main(
            ["independence", str(ledger_file), "--updates", str(batch)]
        )
        assert code == 0


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_shards_partition_relations(seed):
    report = independence_report(generate(seed).program)
    shards = report.shards()
    seen = set()
    for shard in shards:
        assert shard, "empty shard"
        assert not (shard & seen), "overlapping shards"
        seen |= shard
    assert seen == set(report.relations)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    cut=st.integers(min_value=1, max_value=30),
)
def test_cones_monotone_under_rule_addition(seed, cut):
    program = list(generate(seed).program)
    prefix = program[: max(1, len(program) - cut % len(program))]
    smaller = independence_report(prefix)
    larger = independence_report(program)
    for relation in smaller.relations:
        assert smaller.writes(relation) <= larger.writes(relation)
        assert smaller.reads(relation) <= larger.reads(relation)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_pattern_cones_within_relation_cones(seed):
    synthetic = generate(seed)
    analyzer = UpdateConeAnalyzer(synthetic.program)
    report = analyzer.relation_report
    updates = random_updates(
        synthetic.program,
        synthetic.edb_relations,
        synthetic.arities,
        synthetic.domain,
        count=4,
        seed=seed,
    )
    for _, fact in updates:
        cones = analyzer.cones(fact)
        assert cones.writes.relations <= report.writes(fact.relation)
        assert cones.reads.relations <= report.reads(fact.relation)
        assert (
            cones.negation_sensitive.relations
            <= report.writes(fact.relation)
        )
