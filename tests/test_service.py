"""The concurrent revision service: executor, merge, store, server.

The load-bearing property everywhere: admitting a batch through the
scheduled-parallel path must leave the engine (and the store) in exactly
the state of a submission-order serial replay — models byte-identical,
canonical supports byte-identical, journal identical. The stress test
drives that differential across every registered engine with real worker
threads via the fuzzer's threaded mode.
"""

import asyncio
import threading

import pytest

from repro.analysis.fuzz import fuzz_parallel_service
from repro.core.registry import ENGINE_NAMES, create_engine
from repro.datalog.parser import parse_fact
from repro.service import RevisionService
from repro.service.executor import ParallelExecutor
from repro.service.merge import (
    MergeConflict,
    StateDelta,
    fold_results,
    merge_deltas,
)
from repro.service.server import RevisionServer, ServiceClient, parse_update
from repro.store import open_store
from repro.workloads.families import sharded_by_key
from repro.workloads.updates import keyed_transactions

EDB = ("account", "deposit", "withdrawal", "voided", "whitelisted")
ARITIES = {
    "account": 1,
    "deposit": 2,
    "withdrawal": 2,
    "voided": 2,
    "whitelisted": 1,
}


def _ledger_batch(seed: int = 0, per_txn: int = 2):
    program = sharded_by_key()
    batch = keyed_transactions(
        program,
        EDB,
        ARITIES,
        updates_per_transaction=per_txn,
        seed=seed,
    )
    return program, batch


def _factory(engine_name):
    def make():
        return create_engine(engine_name, "", build=False)

    return make


# ----------------------------------------------------------------------
# Executor: parallel == serial on every engine
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
def test_executor_matches_serial_replay(engine_name):
    program, batch = _ledger_batch(seed=1)
    serial = create_engine(engine_name, program)
    for _, updates in batch:
        for operation, fact in updates:
            serial.apply(operation, fact)

    engine = create_engine(engine_name, program)
    with ParallelExecutor(
        engine, _factory(engine_name), max_workers=4
    ) as executor:
        report = executor.execute(batch)

    assert all(outcome.committed for outcome in report.outcomes)
    assert engine.state_dict() == serial.state_dict()
    # Disjoint-key traffic must actually exercise the parallel path.
    assert report.parallel_groups > 0


def test_executor_rejects_inadmissible_and_preserves_rest():
    program, batch = _ledger_batch(seed=2)
    bad = ("delete_fact", parse_fact("deposit(acct_nope, 77)"))
    batch = list(batch)
    batch.insert(1, ("txn_bad", [bad]))

    engine = create_engine("factlevel", program)
    with ParallelExecutor(engine, _factory("factlevel")) as executor:
        report = executor.execute(batch)

    outcomes = {o.name: o for o in report.outcomes}
    assert not outcomes["txn_bad"].committed
    assert outcomes["txn_bad"].error
    accepted = report.accepted()
    assert [name for name, _ in accepted] == [
        name for name, _ in batch if name != "txn_bad"
    ]

    serial = create_engine("factlevel", program)
    for _, updates in accepted:
        for operation, fact in updates:
            serial.apply(operation, fact)
    assert engine.state_dict() == serial.state_dict()


def test_executor_serializes_rule_updates():
    program, batch = _ledger_batch(seed=3)
    batch = list(batch)[:3]
    batch.append(
        ("txn_rule", [("insert_rule", "flagged(A) :- overdrawn(A).")])
    )
    engine = create_engine("cascade", program)
    with ParallelExecutor(engine, _factory("cascade")) as executor:
        report = executor.execute(batch)
    assert all(outcome.committed for outcome in report.outcomes)
    assert all(outcome.mode == "serial" for outcome in report.outcomes)
    assert report.parallel_groups == 0


# ----------------------------------------------------------------------
# Merge primitives
# ----------------------------------------------------------------------


def test_fold_results_last_verdict_wins():
    class R:
        def __init__(self, added, removed):
            self.added = set(added)
            self.removed = set(removed)

    base = {"kept", "gone"}
    added, removed = fold_results(
        [
            R({"new", "kept"}, set()),  # "kept" is re-derivation noise
            R(set(), {"new", "gone"}),  # genuine removals
        ],
        base,
    )
    assert added == set()
    assert removed == {"gone"}


def test_merge_deltas_detects_collisions():
    a = StateDelta("a", frozenset({"x"}), frozenset(), {})
    b = StateDelta("b", frozenset(), frozenset({"x"}), {})
    with pytest.raises(MergeConflict):
        merge_deltas([a, b])

    c = StateDelta("c", frozenset(), frozenset(), {("s",): {1: {"p"}}})
    d = StateDelta("d", frozenset(), frozenset(), {("s",): {1: {"q"}}})
    with pytest.raises(MergeConflict):
        merge_deltas([c, d])

    # Equal rewrites of one slot merge silently.
    e = StateDelta("e", frozenset(), frozenset(), {("s",): {1: {"p"}}})
    added, removed, supports = merge_deltas([c, e])
    assert supports == {("s",): {1: {"p"}}}
    assert added == set() and removed == set()


# ----------------------------------------------------------------------
# Service over a durable store
# ----------------------------------------------------------------------


def test_service_group_commit_equals_serial_store(tmp_path):
    program, batch = _ledger_batch(seed=4)

    serial = open_store(
        tmp_path / "serial", program=str(program), engine="factlevel"
    )
    for _, updates in batch:
        with serial.transaction():
            for operation, fact in updates:
                serial.apply(operation, fact)

    service = RevisionService(
        open_store(
            tmp_path / "parallel", program=str(program), engine="factlevel"
        ),
        max_workers=4,
    )
    with service:
        result = service.submit_batch(batch)
        assert result.committed == len(batch)
        assert result.revision == service.revision
        assert (
            service.store.engine.state_dict() == serial.engine.state_dict()
        )
    serial.close()


def test_service_read_view_pins_epoch(tmp_path):
    program, batch = _ledger_batch(seed=5)
    store = open_store(tmp_path / "s", program=str(program), engine="cascade")
    with RevisionService(store) as service:
        before = service.read_view()
        result = service.submit_batch(batch)
        assert result.committed == len(batch)
        after = service.read_view()
        # The pinned view is immutable across later commits.
        assert before.epoch == 0
        assert after.epoch == service.revision
        assert len(before.model) < len(after.model)
        inserted = next(
            fact
            for _, updates in batch
            for operation, fact in updates
            if operation == "insert_fact"
        )
        assert not before.holds(inserted)
        assert after.holds(inserted)
        before.release()
        after.release()


def test_service_undo_redo_replays_group_commit(tmp_path):
    program, batch = _ledger_batch(seed=6)
    store = open_store(tmp_path / "s", program=str(program), engine="dynamic")
    with RevisionService(store) as service:
        result = service.submit_batch(batch)
        head = service.revision
        final = service.store.engine.state_dict()
        assert result.committed == len(batch)
        service.undo(len(batch))
        assert service.revision == head - len(batch)
        service.redo(len(batch))
        assert service.revision == head
        assert service.store.engine.state_dict() == final


def test_service_concurrent_submitters(tmp_path):
    """Many threads share one service; total state == serial replay."""
    program, batch = _ledger_batch(seed=7)
    chunks = [batch[i::4] for i in range(4)]

    store = open_store(tmp_path / "s", program=str(program), engine="factlevel")
    errors = []
    with RevisionService(store, max_workers=4) as service:

        def submit(chunk):
            try:
                result = service.submit_batch(chunk)
                assert result.committed == len(chunk)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=submit, args=(chunk,))
            for chunk in chunks
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.revision == len(batch)
        # All updates landed exactly once, whatever the interleaving.
        serial = create_engine("factlevel", program)
        for _, updates in batch:
            for operation, fact in updates:
                serial.apply(operation, fact)
        assert set(service.store.model) == set(serial.model)


# ----------------------------------------------------------------------
# Stress: the fuzzer's threaded differential on every engine
# ----------------------------------------------------------------------


def test_threaded_fuzz_parallel_equals_serial_all_engines():
    report = fuzz_parallel_service(
        range(2), transactions=8, rng_seed=11
    )
    assert report.ok, report.summary()
    assert report.parallel_batches >= len(ENGINE_NAMES)
    assert report.parallel_groups > 0


# ----------------------------------------------------------------------
# Protocol front-end
# ----------------------------------------------------------------------


def test_parse_update_forms():
    operation, fact = parse_update("+deposit(acct1, 5).")
    assert operation == "insert_fact" and fact == parse_fact(
        "deposit(acct1, 5)"
    )
    operation, fact = parse_update("-deposit(acct1, 5)")
    assert operation == "delete_fact"
    operation, subject = parse_update(
        {"op": "insert_rule", "subject": "p(X) :- q(X)."}
    )
    assert operation == "insert_rule"
    with pytest.raises(ValueError):
        parse_update(42)


def test_server_sessions_commit_and_pin(tmp_path):
    program, batch = _ledger_batch(seed=8)
    store = open_store(tmp_path / "s", program=str(program), engine="factlevel")

    async def drive():
        service = RevisionService(store, max_workers=4)
        server = RevisionServer(service, batch_window=0.001)
        await server.start()
        try:
            control = await ServiceClient.connect(server.host, server.port)
            pin = await control.request("pin")
            assert pin["ok"] and pin["epoch"] == 0
            baseline = await control.request(
                "rows", relation="posted", view=pin["view"]
            )

            async def session(chunk):
                client = await ServiceClient.connect(server.host, server.port)
                try:
                    count = 0
                    for _, updates in chunk:
                        specs = [
                            ("+" if op == "insert_fact" else "-") + str(fact)
                            for op, fact in updates
                        ]
                        response = await client.commit(specs)
                        assert response["committed"], response
                        count += 1
                    return count
                finally:
                    await client.close()

            chunks = [batch[i::3] for i in range(3)]
            counts = await asyncio.gather(*map(session, chunks))
            assert sum(counts) == len(batch)

            pong = await control.request("ping")
            assert pong["revision"] == len(batch)
            # The pinned view still shows the epoch-0 rows; the live
            # model has moved on.
            stale = await control.request(
                "rows", relation="posted", view=pin["view"]
            )
            assert stale["rows"] == baseline["rows"]
            live = await control.request("rows", relation="posted")
            assert live["rows"] != stale["rows"]
            await control.request("release", view=pin["view"])
            await control.close()
        finally:
            await server.stop()
            service.close()

    asyncio.run(drive())
    serial = create_engine("factlevel", program)
    for _, updates in batch:
        for operation, fact in updates:
            serial.apply(operation, fact)
    assert set(store.engine.model) == set(serial.model)
    store.close()
