"""Tests for migration accounting (repro.core.metrics)."""

from repro.core.metrics import MaintenanceStats, UpdateResult
from repro.datalog.atoms import fact


def result(removed=(), added=(), **kwargs) -> UpdateResult:
    defaults = dict(
        operation="insert_fact",
        subject="p(1)",
        removed=frozenset(removed),
        added=frozenset(added),
        model_size=10,
        duration_s=0.5,
        support_entries=3,
    )
    defaults.update(kwargs)
    return UpdateResult(**defaults)


class TestUpdateResult:
    def test_migrated_is_intersection(self):
        r = result(
            removed=[fact("a"), fact("b")],
            added=[fact("b"), fact("c")],
        )
        assert r.migrated == {fact("b")}

    def test_net_sets(self):
        r = result(
            removed=[fact("a"), fact("b")],
            added=[fact("b"), fact("c")],
        )
        assert r.net_removed == {fact("a")}
        assert r.net_added == {fact("c")}

    def test_summary_counts(self):
        r = result(removed=[fact("a")], added=[fact("c")])
        assert "-1" in r.summary() and "+1" in r.summary()

    def test_frozen(self):
        import dataclasses
        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            result().operation = "other"


class TestMaintenanceStats:
    def test_accumulation(self):
        stats = MaintenanceStats()
        stats.record(result(removed=[fact("a")], added=[fact("a"), fact("b")]))
        stats.record(result(added=[fact("c")]))
        assert stats.updates == 2
        assert stats.removed == 1
        assert stats.added == 3
        assert stats.migrated == 1
        assert stats.duration_s == 1.0

    def test_as_dict(self):
        stats = MaintenanceStats()
        stats.record(result())
        data = stats.as_dict()
        assert data["updates"] == 1
        assert set(data) >= {"removed", "added", "migrated", "duration_s"}
