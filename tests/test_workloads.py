"""Tests for the workload generators."""

import pytest

from repro.datalog.database import StratifiedDatabase
from repro.datalog.evaluation import compute_model
from repro.workloads.families import (
    access_control,
    bill_of_materials,
    reachability,
    review_pipeline,
)
from repro.workloads.paper import conf, congress, meet, negation_chain, pods
from repro.workloads.synthetic import SyntheticSpec, generate
from repro.workloads.updates import asserted_facts, flip_sequence, random_updates


class TestPaperWorkloads:
    def test_pods_shape(self):
        model = compute_model(pods(l=10, accepted=(1, 5, 10)))
        assert model.count_of("rejected") == 7

    def test_pods_validates_accepted_range(self):
        with pytest.raises(ValueError):
            pods(l=3, accepted=(5,))

    def test_conf_scales(self):
        model = compute_model(conf(l=7))
        assert model.count_of("accepted") == 8  # 7 + the late one

    def test_negation_chain_alternates(self):
        model = compute_model(negation_chain(8))
        assert {f.relation for f in model.facts()} == {
            "p1", "p3", "p5", "p7"
        }

    def test_negation_chain_validates(self):
        with pytest.raises(ValueError):
            negation_chain(0)

    def test_congress_and_meet_stratified(self):
        StratifiedDatabase(congress(l=4))
        StratifiedDatabase(meet(l=4))


class TestFamilies:
    def test_all_families_stratified(self):
        for program in (
            review_pipeline(papers=6, seed=0),
            reachability(nodes=6, seed=0),
            bill_of_materials(assemblies=3, seed=0),
            access_control(users=5, seed=0),
        ):
            StratifiedDatabase(program)  # raises when not stratified

    def test_generators_deterministic(self):
        a = review_pipeline(papers=8, seed=42)
        b = review_pipeline(papers=8, seed=42)
        assert a.clauses == b.clauses

    def test_different_seeds_differ(self):
        a = reachability(nodes=8, seed=1)
        b = reachability(nodes=8, seed=2)
        assert a.clauses != b.clauses

    def test_reachability_negation_shape(self):
        model = compute_model(reachability(nodes=5, edge_probability=0.0))
        # no links: every ordered pair is unreachable
        assert model.count_of("unreachable") == 25

    def test_bill_of_materials_blocking(self):
        program = bill_of_materials(assemblies=2, depth=2, seed=0,
                                    missing=("part1",))
        model = compute_model(program)
        assert model.count_of("blocked") >= 1
        assert (
            model.count_of("buildable") + model.count_of("blocked")
            == model.count_of("assembly")
        )

    def test_access_control_default_deny(self):
        model = compute_model(access_control(users=6, seed=3))
        # allowed ⊆ granted (revocations only shrink)
        allowed = set(model.facts_of("allowed"))
        granted = {
            ("allowed",) + f.args for f in model.facts_of("granted")
        }
        assert {("allowed",) + f.args for f in allowed} <= granted


class TestSynthetic:
    def test_always_stratified(self):
        for seed in range(15):
            StratifiedDatabase(generate(seed).program)

    def test_deterministic(self):
        assert generate(9).program.clauses == generate(9).program.clauses

    def test_spec_respected(self):
        spec = SyntheticSpec(levels=2, edb_relations=2, domain_size=4)
        syn = generate(0, spec)
        assert len(syn.edb_relations) == 2
        assert all(len(args) <= spec.max_arity
                   for clause in syn.program
                   for args in [clause.head.args])

    def test_domain_collected(self):
        syn = generate(3)
        assert syn.domain  # non-empty


class TestUpdateSequences:
    def test_random_updates_replayable(self):
        syn = generate(4)
        updates = random_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=12, seed=4,
        )
        assert len(updates) == 12
        from repro.core.recompute import RecomputeEngine

        engine = RecomputeEngine(syn.program)
        for operation, subject in updates:
            engine.apply(operation, subject)  # must never raise

    def test_deletions_target_existing_assertions(self):
        syn = generate(5)
        updates = random_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=20, insert_ratio=0.2, seed=5,
        )
        state = {
            clause.head for clause in syn.program if not clause.body
        }
        for operation, subject in updates:
            if operation == "delete_fact":
                assert subject in state
                state.discard(subject)
            else:
                state.add(subject)

    def test_flip_sequence_alternates_legally(self):
        program = reachability(nodes=5, seed=0)
        facts = asserted_facts(program, ["link"])
        updates = flip_sequence(facts[:4], seed=0, count=9)
        present = set(facts[:4])
        for operation, subject in updates:
            if operation == "delete_fact":
                assert subject in present
                present.discard(subject)
            else:
                assert subject not in present
                present.add(subject)

    def test_asserted_facts_filter(self):
        program = reachability(nodes=4, seed=0)
        assert all(
            f.relation == "node"
            for f in asserted_facts(program, ["node"])
        )
