"""Property-based tests (hypothesis) for the core invariants.

The properties mirror the paper's theorems:

* M(P) is a model of P, is supported, and equals the JTMS well-founded
  labelling (Theorem ii/iii and the belief-revision framing);
* M(P) does not depend on the stratification (Theorem i) nor on the
  saturation strategy (the [RLK] delta-driven mechanism is exact);
* every sound maintenance engine tracks the recompute oracle through
  arbitrary update sequences;
* the paper-mode sets-of-sets engine is exact for a *single* update on a
  freshly built model (the actual scope of Lemma 2);
* the fact-level engine never migrates anything (section 5.2's claim).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.registry import SOUND_ENGINE_NAMES, create_engine
from repro.datalog.evaluation import compute_model, iter_derivations
from repro.datalog.plan import Planner
from repro.tms.bridge import standard_model_via_jtms
from repro.workloads.synthetic import SyntheticSpec, generate
from repro.workloads.updates import mixed_updates, random_updates

SMALL = SyntheticSpec(
    levels=2,
    relations_per_level=2,
    rules_per_relation=2,
    edb_relations=2,
    edb_facts_per_relation=4,
    domain_size=4,
)

seeds = st.integers(min_value=0, max_value=10_000)
common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def is_model_of(program, model) -> bool:
    """No rule instance is violated: body satisfied ⟹ head present."""
    return all(
        derivation.head in model
        for clause in program
        for derivation in iter_derivations(clause, model)
    )


def is_supported(program, model) -> bool:
    """Every fact has an explanation (Theorem iii)."""
    explained = {
        derivation.head
        for clause in program
        for derivation in iter_derivations(clause, model)
    }
    return set(model.facts()) <= explained


class TestModelSemantics:
    @given(seed=seeds)
    @common
    def test_standard_model_is_a_model(self, seed):
        program = generate(seed, SMALL).program
        model = compute_model(program)
        assert is_model_of(program, model)

    @given(seed=seeds)
    @common
    def test_standard_model_is_supported(self, seed):
        program = generate(seed, SMALL).program
        model = compute_model(program)
        assert is_supported(program, model)

    @given(seed=seeds)
    @common
    def test_naive_equals_delta_driven(self, seed):
        program = generate(seed, SMALL).program
        assert compute_model(program, method="naive") == compute_model(
            program, method="seminaive"
        )

    @given(seed=seeds)
    @common
    def test_planned_execution_is_exact(self, seed):
        # The selectivity-ordered join plans must not change the model nor
        # the set of reported derivations, for either saturation method,
        # against the naive left-to-right baseline.
        program = generate(seed, SMALL).program

        def run(method, planner):
            derivations = set()
            model = compute_model(
                program,
                method=method,
                listener=lambda d, is_new, plan: derivations.add(d),
                planner=planner,
            )
            return model, derivations

        baseline = run("naive", Planner(reorder=False))
        assert run("naive", Planner()) == baseline
        assert run("seminaive", Planner()) == baseline
        # the legacy estimator and the single-column intersection path
        # must agree too — they only change the join order / probe cost
        assert run("seminaive", Planner(estimator="heuristic")) == baseline
        assert run("seminaive", Planner(composite=False)) == baseline

    @given(seed=seeds)
    @common
    def test_stratification_independence(self, seed):
        program = generate(seed, SMALL).program
        assert compute_model(program, granularity="level") == compute_model(
            program, granularity="scc"
        )

    @given(seed=seeds)
    @common
    def test_equals_jtms_well_founded_labelling(self, seed):
        program = generate(seed, SMALL).program
        assert standard_model_via_jtms(program) == compute_model(
            program
        ).as_set()

    @given(seed=seeds)
    @common
    def test_minimality_spot_check(self, seed):
        # Removing any single derived fact breaks supportedness-or-modelhood
        # of the remainder set (a practical slice of Theorem ii).
        program = generate(seed, SMALL).program
        model = compute_model(program)
        asserted = {c.head for c in program if not c.body}
        derived = [f for f in model.facts() if f not in asserted][:5]
        for fact_ in derived:
            smaller = model.copy()
            smaller.discard(fact_)
            assert not is_model_of(program, smaller) or not is_supported(
                program, smaller
            )


class TestRelationStatistics:
    """The planner's cardinality statistics must be *exact*, not decayed
    approximations: distinct-value counts after any interleaving of
    add/discard/clear equal the counts recomputed from the tuples."""

    ops = st.lists(
        st.one_of(
            st.tuples(
                st.just("add"),
                st.integers(0, 5),
                st.integers(0, 3),
            ),
            st.tuples(
                st.just("discard"),
                st.integers(0, 5),
                st.integers(0, 3),
            ),
            st.tuples(st.just("clear"), st.just(0), st.just(0)),
        ),
        min_size=0,
        max_size=60,
    )

    @given(ops=ops)
    @common
    def test_distinct_counts_stay_exact(self, ops):
        from repro.datalog.relations import Relation

        relation = Relation("p", 2)
        list(relation.select({0: 0, 1: 0}))  # keep a composite index live
        for op, a, b in ops:
            if op == "add":
                relation.add((a, b))
            elif op == "discard":
                relation.discard((a, b))
            else:
                relation.clear()
        for column in (0, 1):
            expected = len({row[column] for row in relation.tuples})
            assert relation.distinct_count(column) == expected
        # the composite index kept in step with the mutations too
        expected_rows = {
            row for row in relation.tuples if row[0] == 1 and row[1] == 1
        }
        assert set(relation.select({0: 1, 1: 1})) == expected_rows
        assert relation.estimated_matches((0, 1)) >= 0.0

    @given(seed=seeds)
    @common
    def test_statistics_survive_snapshot_round_trip(self, seed):
        # A restored engine re-adds the snapshot facts tuple by tuple, so
        # the maintained statistics must come back exactly — the planner
        # on a reopened store orders joins like the live engine did.
        from repro.core.registry import engine_from_state
        from repro.store import serialize

        program = generate(seed, SMALL).program
        engine = create_engine("cascade", program)
        state = serialize.loads(serialize.dumps(engine.state_dict()))
        restored = engine_from_state("cascade", state)
        assert restored.model == engine.model
        for name in engine.model.relation_names():
            live = engine.model.relation(name)
            back = restored.model.relation(name)
            assert back.distinct_counts() == live.distinct_counts()
            assert len(back) == len(live)


class TestEngineEquivalence:
    @given(seed=seeds, n_updates=st.integers(min_value=1, max_value=6))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sound_engines_track_the_oracle(self, seed, n_updates):
        syn = generate(seed, SMALL)
        updates = random_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=n_updates, seed=seed,
        )
        for name in SOUND_ENGINE_NAMES:
            engine = create_engine(name, syn.program)
            for operation, subject in updates:
                engine.apply(operation, subject)
                oracle = compute_model(engine.db.program)
                assert engine.model == oracle, (
                    f"{name} diverged after {operation} {subject}"
                )

    @given(seed=seeds, n_updates=st.integers(min_value=2, max_value=6))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sound_engines_survive_rule_updates(self, seed, n_updates):
        # Rule deletions and re-insertions exercise restratification and
        # the rule procedures of every solution.
        syn = generate(seed, SMALL)
        updates = mixed_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=n_updates, rule_ratio=0.5, seed=seed,
        )
        for name in ("static", "dynamic", "cascade", "factlevel"):
            engine = create_engine(name, syn.program)
            for operation, subject in updates:
                engine.apply(operation, subject)
            assert engine.model == compute_model(engine.db.program), (
                f"{name} diverged after rule-update sequence"
            )

    @given(seed=seeds, n_updates=st.integers(min_value=1, max_value=6))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_cascade_batch_equals_oracle(self, seed, n_updates):
        syn = generate(seed, SMALL)
        updates = random_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=n_updates, seed=seed,
        )
        engine = create_engine("cascade", syn.program)
        engine.apply_batch(updates)
        assert engine.model == compute_model(engine.db.program)

    @given(seed=seeds)
    @common
    def test_setofsets_paper_mode_exact_for_single_update(self, seed):
        # Lemma 2's scope: one update on a freshly built model.
        syn = generate(seed, SMALL)
        updates = random_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=1, seed=seed,
        )
        engine = create_engine("setofsets", syn.program)
        for operation, subject in updates:
            engine.apply(operation, subject)
        assert engine.model == compute_model(engine.db.program)

    @given(seed=seeds, n_updates=st.integers(min_value=1, max_value=6))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_factlevel_never_migrates(self, seed, n_updates):
        syn = generate(seed, SMALL)
        updates = random_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=n_updates, seed=seed,
        )
        engine = create_engine("factlevel", syn.program)
        for operation, subject in updates:
            result = engine.apply(operation, subject)
            assert not result.migrated

    @given(seed=seeds)
    @common
    def test_update_then_inverse_restores_model(self, seed):
        syn = generate(seed, SMALL)
        updates = random_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=1, seed=seed,
        )
        [(operation, subject)] = updates
        inverse = {
            "insert_fact": "delete_fact",
            "delete_fact": "insert_fact",
        }[operation]
        for name in ("cascade", "dynamic"):
            engine = create_engine(name, syn.program)
            before = engine.model.as_set()
            engine.apply(operation, subject)
            engine.apply(inverse, subject)
            assert engine.model.as_set() == before


class TestArenaEquivalence:
    """The columnar arena is a pure representation change: on every
    observable surface — model trajectory, update deltas, support totals,
    decoded records, proof trees — an arena-backed engine is
    indistinguishable from the record-object baseline."""

    @given(seed=seeds, n_updates=st.integers(min_value=1, max_value=6))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_arena_indistinguishable_from_records(self, seed, n_updates):
        from repro.core.explain import explain

        syn = generate(seed, SMALL)
        updates = random_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=n_updates, seed=seed,
        )
        for name in (
            "factlevel", "cascade", "setofsets", "setofsets-paired"
        ):
            arena_engine = create_engine(name, syn.program)
            record_engine = create_engine(name, syn.program, arena=False)
            assert arena_engine.model == record_engine.model
            for operation, subject in updates:
                arena_result = arena_engine.apply(operation, subject)
                record_result = record_engine.apply(operation, subject)
                assert arena_engine.model == record_engine.model, (
                    f"{name} arena diverged after {operation} {subject}"
                )
                assert set(arena_result.added) == set(record_result.added)
                assert set(arena_result.removed) == set(
                    record_result.removed
                )
            assert (
                arena_engine.support_entry_count()
                == record_engine.support_entry_count()
            )
            for fact_ in record_engine.model.facts():
                if name == "setofsets":
                    assert arena_engine.support_of(
                        fact_
                    ) == record_engine.support_of(fact_)
                else:
                    assert arena_engine.records_of(
                        fact_
                    ) == record_engine.records_of(fact_)
                assert str(explain(arena_engine, fact_)) == str(
                    explain(record_engine, fact_)
                )


class TestSupportInvariants:
    @given(seed=seeds)
    @common
    def test_every_model_fact_has_supports(self, seed):
        syn = generate(seed, SMALL)
        cascade = create_engine("cascade", syn.program)
        for fact_ in cascade.model.facts():
            assert cascade.records_of(fact_), f"{fact_} lacks records"
        factlevel = create_engine("factlevel", syn.program)
        for fact_ in factlevel.model.facts():
            assert factlevel.records_of(fact_)

    @given(seed=seeds)
    @common
    def test_migration_well_ordered(self, seed):
        # migrated ⊆ removed ∩ added, and the final model contains every
        # migrated fact (they were put back).
        syn = generate(seed, SMALL)
        updates = random_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=3, seed=seed,
        )
        engine = create_engine("cascade", syn.program)
        for operation, subject in updates:
            result = engine.apply(operation, subject)
            assert result.migrated <= result.removed
            assert result.migrated <= result.added
            for fact_ in result.migrated:
                assert fact_ in engine.model
