"""Every engine reports the same UpdateResult.stats keys.

The dashboards, the bench harness and the totals aggregation all read
``result.stats`` by key; an engine that forgets one silently reports
zeros. ``STANDARD_STAT_KEYS`` is the contract and this module enforces
it across every registered engine and operation.
"""

import pytest

from repro.core.metrics import STANDARD_STAT_KEYS
from repro.core.registry import ENGINE_NAMES, create_engine
from repro.datalog.atoms import fact
from repro.datalog.parser import parse_clause, parse_program

PODS = """
submitted(1). submitted(2). submitted(3).
accepted(2).
rejected(X) :- not accepted(X), submitted(X).
"""


def _engine(name):
    return create_engine(name, parse_program(PODS))


@pytest.mark.parametrize("name", ENGINE_NAMES)
class TestStandardKeys:
    def test_insert_fact(self, name):
        result = _engine(name).insert_fact(fact("accepted", 1))
        assert set(result.stats) == set(STANDARD_STAT_KEYS)

    def test_delete_fact(self, name):
        result = _engine(name).delete_fact(fact("accepted", 2))
        assert set(result.stats) == set(STANDARD_STAT_KEYS)

    def test_insert_rule(self, name):
        clause = parse_clause(
            "pending(X) :- submitted(X), not accepted(X)."
        )
        result = _engine(name).insert_rule(clause)
        assert set(result.stats) == set(STANDARD_STAT_KEYS)

    def test_delete_rule(self, name):
        clause = parse_clause(
            "rejected(X) :- not accepted(X), submitted(X)."
        )
        result = _engine(name).delete_rule(clause)
        assert set(result.stats) == set(STANDARD_STAT_KEYS)

    def test_apply_batch(self, name):
        result = _engine(name).apply_batch(
            [
                ("insert_fact", fact("accepted", 1)),
                ("delete_fact", fact("accepted", 2)),
            ]
        )
        assert set(result.stats) == set(STANDARD_STAT_KEYS)

    def test_noop_update(self, name):
        result = _engine(name).insert_fact(fact("accepted", 2))
        assert set(result.stats) == set(STANDARD_STAT_KEYS)
        assert result.stats["noop"]

    def test_totals_include_standard_sums(self, name):
        engine = _engine(name)
        engine.insert_fact(fact("accepted", 1))
        engine.delete_fact(fact("accepted", 1))
        totals = engine.totals.as_dict()
        for key in ("derivations_fired", "transient", "plan_cache_hits",
                    "plan_cache_misses"):
            assert key in totals
