"""Unit tests for repro.datalog.database (update admission rules)."""

import pytest

from repro.datalog.atoms import fact
from repro.datalog.database import StratifiedDatabase
from repro.datalog.errors import StratificationError, UpdateError
from repro.datalog.parser import parse_clause

PODS = """
submitted(1). submitted(2).
accepted(2).
rejected(X) :- not accepted(X), submitted(X).
"""


class TestConstruction:
    def test_from_source_string(self):
        db = StratifiedDatabase(PODS)
        assert db.stratum_count() == 2

    def test_rejects_unstratified(self):
        with pytest.raises(StratificationError):
            StratifiedDatabase("p(X) :- e(X), not q(X). q(X) :- p(X).")

    def test_edb_idb_partition(self):
        db = StratifiedDatabase(PODS)
        assert "submitted" in db.extensional_relations()
        assert db.intensional_relations() == {"rejected"}


class TestFactUpdates:
    def test_assert_and_model(self):
        db = StratifiedDatabase(PODS)
        db.assert_fact(fact("submitted", 3))
        model = db.compute_model()
        assert fact("rejected", 3) in model

    def test_assert_is_idempotent(self):
        db = StratifiedDatabase(PODS)
        assert db.assert_fact(fact("submitted", 3))
        assert not db.assert_fact(fact("submitted", 3))

    def test_assert_new_relation_rebuilds(self):
        db = StratifiedDatabase(PODS)
        db.assert_fact(fact("bonus", 7))
        assert db.stratum_of("bonus") == 1

    def test_retract(self):
        db = StratifiedDatabase(PODS)
        db.retract_fact(fact("accepted", 2))
        assert fact("rejected", 2) in db.compute_model()

    def test_retract_unasserted_fact_rejected(self):
        db = StratifiedDatabase(PODS)
        with pytest.raises(UpdateError):
            db.retract_fact(fact("rejected", 1))  # derived, not asserted

    def test_assert_non_ground_rejected(self):
        from repro.datalog.atoms import atom
        from repro.datalog.terms import Variable

        db = StratifiedDatabase(PODS)
        with pytest.raises(UpdateError):
            db.assert_fact(atom("submitted", Variable("X")))

    def test_is_asserted(self):
        db = StratifiedDatabase(PODS)
        assert db.is_asserted(fact("accepted", 2))
        assert not db.is_asserted(fact("rejected", 1))


class TestRuleUpdates:
    def test_add_rule(self):
        db = StratifiedDatabase(PODS)
        db.add_rule(parse_clause("late(X) :- submitted(X), not reviewed(X)."))
        assert "late" in db.intensional_relations()
        assert db.stratum_of("late") >= 2

    def test_add_rule_rejects_unstratified(self):
        db = StratifiedDatabase(PODS)
        with pytest.raises(StratificationError):
            db.add_rule(parse_clause("accepted(X) :- rejected(X)."))
        # the admission check must not have mutated the program
        assert "accepted" not in db.intensional_relations()

    def test_add_duplicate_rule_rejected(self):
        db = StratifiedDatabase(PODS)
        with pytest.raises(UpdateError):
            db.add_rule(
                parse_clause("rejected(X) :- not accepted(X), submitted(X).")
            )

    def test_remove_rule(self):
        db = StratifiedDatabase(PODS)
        db.remove_rule(
            parse_clause("rejected(X) :- not accepted(X), submitted(X).")
        )
        assert db.compute_model().count_of("rejected") == 0

    def test_remove_missing_rule_rejected(self):
        db = StratifiedDatabase(PODS)
        with pytest.raises(UpdateError):
            db.remove_rule(parse_clause("xx(X) :- submitted(X)."))

    def test_remove_rule_requires_rule_not_fact(self):
        db = StratifiedDatabase(PODS)
        with pytest.raises(UpdateError):
            db.remove_rule(parse_clause("accepted(2)."))

    def test_restratification_after_rule_change(self):
        db = StratifiedDatabase(PODS)
        db.add_rule(parse_clause("final(X) :- submitted(X), not rejected(X)."))
        assert db.stratum_of("final") == 3


class TestCopy:
    def test_copy_independent(self):
        db = StratifiedDatabase(PODS)
        dup = db.copy()
        dup.assert_fact(fact("submitted", 9))
        assert fact("rejected", 9) not in db.compute_model()
        assert fact("rejected", 9) in dup.compute_model()
