"""Unit tests for repro.datalog.evaluation (naive + delta-driven SAT)."""

from repro.datalog.atoms import fact
from repro.datalog.evaluation import (
    compute_model,
    iter_derivations,
    naive_saturate,
    semi_naive_saturate,
)
from repro.datalog.model import Model
from repro.datalog.parser import parse_clause, parse_program
from repro.datalog.stratify import stratify

TC = """
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
"""


class TestIterDerivations:
    def test_positive_join(self):
        model = Model([fact("edge", "a", "b"), fact("path", "b", "c")])
        clause = parse_clause("path(X, Z) :- edge(X, Y), path(Y, Z).")
        heads = {d.head for d in iter_derivations(clause, model)}
        assert heads == {fact("path", "a", "c")}

    def test_negative_check_blocks(self):
        model = Model([fact("s", 1), fact("r", 1)])
        clause = parse_clause("a(X) :- s(X), not r(X).")
        assert list(iter_derivations(clause, model)) == []

    def test_negative_atoms_reported(self):
        model = Model([fact("s", 1)])
        clause = parse_clause("a(X) :- s(X), not r(X).")
        [derivation] = list(iter_derivations(clause, model))
        assert derivation.negative_atoms == (fact("r", 1),)
        assert derivation.positive_facts == (fact("s", 1),)

    def test_delta_restriction(self):
        model = Model([fact("e", 1), fact("e", 2)])
        clause = parse_clause("p(X) :- e(X).")
        heads = {
            d.head for d in iter_derivations(clause, model, 0, [(2,)])
        }
        assert heads == {fact("p", 2)}

    def test_repeated_variable_in_literal(self):
        model = Model([fact("e", 1, 1), fact("e", 1, 2)])
        clause = parse_clause("d(X) :- e(X, X).")
        heads = {d.head for d in iter_derivations(clause, model)}
        assert heads == {fact("d", 1)}


class TestSaturation:
    def test_transitive_closure(self):
        program = parse_program(TC)
        model = compute_model(program)
        assert model.count_of("path") == 6

    def test_naive_equals_seminaive(self):
        program = parse_program(TC)
        assert compute_model(program, method="naive") == compute_model(
            program, method="seminaive"
        )

    def test_added_facts_returned(self):
        program = parse_program("e(1). p(X) :- e(X).")
        model = Model()
        added = semi_naive_saturate(program.clauses, model)
        assert added == {fact("e", 1), fact("p", 1)}

    def test_saturation_is_idempotent(self):
        program = parse_program(TC)
        model = compute_model(program)
        assert naive_saturate(program.clauses, model) == set()
        assert semi_naive_saturate(program.clauses, model) == set()

    def test_incremental_delta(self):
        program = parse_program(TC)
        model = compute_model(program)
        model.add(fact("edge", "d", "e"))
        added = semi_naive_saturate(
            program.rules,
            model,
            initial_full=False,
            delta={"edge": {("d", "e")}},
        )
        assert fact("path", "a", "e") in added
        oracle = compute_model(
            parse_program(TC + "edge(d, e).")
        )
        assert model == oracle

    def test_incremental_full_fire_for_negation(self):
        program = parse_program(
            "s(1). s(2). r(1). a(X) :- s(X), not r(X)."
        )
        model = compute_model(program)
        assert fact("a", 1) not in model
        # Remove the blocker, then fire the rule fully (negated relation
        # decreased): the delta-driven mechanism's other trigger.
        model.discard(fact("r", 1))
        rule = program.rules[0]
        semi_naive_saturate(
            [rule], model, initial_full=False, delta={}, full_fire=[rule]
        )
        assert fact("a", 1) in model


class TestListener:
    def test_listener_sees_every_instantiation(self):
        program = parse_program(TC)
        seen = set()

        def listener(derivation, is_new, plan):
            seen.add((derivation.head, derivation.clause))

        compute_model(program, listener=listener)
        # path(a,c) has exactly one derivation; path facts via both rules:
        assert (
            fact("path", "a", "b"),
            program.rules[0],
        ) in seen
        assert (
            fact("path", "a", "c"),
            program.rules[1],
        ) in seen

    def test_listener_is_new_flag(self):
        program = parse_program("e(1). p(X) :- e(X). p(1).")
        flags = []

        def listener(derivation, is_new, plan):
            if derivation.head == fact("p", 1):
                flags.append(is_new)

        compute_model(program, listener=listener)
        # Exactly one report is "new"; re-reports of the same instantiation
        # are allowed (listeners must be idempotent, see the module doc).
        assert flags.count(True) == 1
        assert flags.count(False) >= 1


class TestComputeModel:
    def test_pods_semantics(self):
        program = parse_program(
            """
            submitted(1). submitted(2). submitted(3).
            accepted(2).
            rejected(X) :- not accepted(X), submitted(X).
            """
        )
        model = compute_model(program)
        assert {f.args[0] for f in model.facts_of("rejected")} == {1, 3}

    def test_stratification_argument(self):
        program = parse_program(TC)
        strat = stratify(program)
        assert compute_model(program, stratification=strat) == compute_model(
            program
        )

    def test_granularities_agree(self):
        program = parse_program(
            """
            e(1). f(1).
            a(X) :- e(X), not b(X).
            b(X) :- f(X), not c(X).
            c(X) :- e(X), f(X).
            """
        )
        assert compute_model(program, granularity="level") == compute_model(
            program, granularity="scc"
        )

    def test_empty_program(self):
        assert len(compute_model(parse_program(""))) == 0
