"""Property tests for the bulk-operation pipeline (ISSUE 5).

Two families of invariants:

* **Bulk == per-tuple.** ``add_many`` / ``discard_many`` / ``bulk_load``
  must leave tuples, per-column distinct counts and live composite
  indexes identical to the per-tuple loop under arbitrary interleaved
  batches — bulk mutation is an optimization, never a semantic change.

* **v1 == v2 snapshots.** A state written in the legacy v1 layout and in
  the v2 layout (columnar facts + compact array-tagged state) must decode
  to byte-for-byte the same engine state, and the v2 bytes themselves
  must be deterministic.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.registry import create_engine, engine_from_state
from repro.datalog.relations import Relation
from repro.store import serialize
from repro.store.snapshot import read_snapshot, write_snapshot
from repro.workloads.synthetic import SyntheticSpec, generate
from repro.workloads.updates import random_updates

SMALL = SyntheticSpec(
    levels=2,
    relations_per_level=2,
    rules_per_relation=2,
    edb_relations=2,
    edb_facts_per_relation=4,
    domain_size=4,
)

seeds = st.integers(min_value=0, max_value=10_000)
common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=12,
)

# interleaved batches: (operation, rows) pairs
batches = st.lists(
    st.tuples(st.sampled_from(["add_many", "discard_many"]), rows),
    min_size=1,
    max_size=8,
)

PROBED = ((0,), (1,), (0, 1))


def _assert_same_state(bulk: Relation, loop: Relation) -> None:
    assert bulk.tuples == loop.tuples
    assert bulk.distinct_counts() == loop.distinct_counts()
    assert bulk.arity == loop.arity
    assert bulk.index_columns() == loop.index_columns()
    for columns in bulk.index_columns():
        assert bulk.index_for(columns) == loop.index_for(columns)


class TestBulkEquivalence:
    @given(script=batches)
    @common
    def test_interleaved_batches_match_per_tuple_loop(self, script):
        bulk = Relation("p", 2)
        loop = Relation("p", 2)
        for relation in (bulk, loop):
            for columns in PROBED:  # live indexes, maintained throughout
                relation.index_for(columns)
        for operation, batch in script:
            if operation == "add_many":
                changed = bulk.add_many(batch)
                reference = sum(loop.add(row) for row in batch)
            else:
                changed = bulk.discard_many(batch)
                reference = sum(loop.discard(row) for row in batch)
            assert changed == reference
        _assert_same_state(bulk, loop)

    @given(script=batches)
    @common
    def test_bulk_load_matches_per_tuple_loop(self, script):
        loaded = {row for operation, batch in script for row in batch}
        loop = Relation("p", 2)
        for row in loaded:
            loop.add(row)
        bulk = Relation.bulk_load("p", loaded, arity=2)
        assert bulk.tuples == loop.tuples
        assert bulk.distinct_counts() == loop.distinct_counts()
        for columns in PROBED:
            assert bulk.index_for(columns) == loop.index_for(columns)


def _random_engine(seed: int, n_updates: int):
    syn = generate(seed, SMALL)
    engine = create_engine("cascade", syn.program)
    updates = random_updates(
        syn.program, syn.edb_relations, syn.arities, syn.domain,
        count=n_updates, seed=seed,
    )
    for operation, subject in updates:
        engine.apply(operation, subject)
    return engine


class TestSnapshotFormats:
    @given(seed=seeds, n_updates=st.integers(min_value=0, max_value=5))
    @common
    def test_v1_and_v2_decode_to_the_same_state(
        self, seed, n_updates, tmp_path
    ):
        engine = _random_engine(seed, n_updates)
        state = engine.state_dict()
        canonical = serialize.dumps(state)
        v2_path = write_snapshot(tmp_path, 0, state)
        v1_path = write_snapshot(tmp_path, 1, state, format_version=1)
        for path in (v2_path, v1_path):
            seq, decoded = read_snapshot(path)
            restored = engine_from_state("cascade", decoded)
            assert restored.model == engine.model
            assert serialize.dumps(restored.state_dict()) == canonical

    @given(seed=seeds)
    @common
    def test_v2_bytes_are_deterministic(self, seed, tmp_path):
        engine = _random_engine(seed, 2)
        first = write_snapshot(tmp_path, 0, engine.state_dict())
        again = engine_from_state("cascade", read_snapshot(first)[1])
        second = write_snapshot(tmp_path, 1, again.state_dict())
        assert first.read_bytes().replace(b'"seq":0', b'"seq":1') == (
            second.read_bytes()
        )
