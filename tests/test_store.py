"""Tests for repro.store: journal, snapshots, transactions, time travel."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.registry import ENGINE_NAMES, create_engine, engine_from_state
from repro.datalog.errors import UpdateError
from repro.datalog.evaluation import compute_model
from repro.store import (
    Journal,
    JournalError,
    Store,
    StoreError,
    TransactionError,
    dumps,
    loads,
    open_store,
    read_snapshot,
    snapshot_positions,
)
from repro.store.history import replay
from repro.store.journal import commit_record, update_record, updates_of
from repro.workloads.synthetic import SyntheticSpec, generate
from repro.workloads.updates import random_updates

PODS = """
submitted(1). submitted(2). submitted(3).
accepted(2).
rejected(X) :- not accepted(X), submitted(X).
"""

SMALL = SyntheticSpec(
    levels=2,
    relations_per_level=2,
    rules_per_relation=2,
    edb_relations=2,
    edb_facts_per_relation=4,
    domain_size=4,
)


@pytest.fixture
def store(tmp_path):
    return Store.create(tmp_path / "db", PODS, engine="cascade")


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------


class TestJournal:
    def test_append_assigns_dense_seq(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        assert journal.append(update_record("insert_fact", "x")) == 1
        assert journal.append(update_record("delete_fact", "y")) == 2
        assert len(journal) == 2

    def test_reload_preserves_records(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(update_record("insert_fact", "x"))
        reloaded = Journal(tmp_path / "j.jsonl")
        assert reloaded.records == journal.records

    def test_truncate(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        for i in range(5):
            journal.append(update_record("insert_fact", f"f{i}"))
        journal.truncate(2)
        assert len(journal) == 2
        assert len(Journal(tmp_path / "j.jsonl")) == 2

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append(update_record("insert_fact", "x"))
        with open(path, "a") as handle:
            handle.write('{"seq": 2, "kind": "upd')  # crash mid-append
        reloaded = Journal(path)
        assert len(reloaded) == 1

    def test_corruption_in_the_middle_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append(update_record("insert_fact", "x"))
        journal.append(update_record("insert_fact", "y"))
        lines = path.read_text().splitlines()
        lines[0] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            Journal(path)

    def test_bad_seq_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        record = dict(update_record("insert_fact", "x"), seq=7)
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(JournalError):
            Journal(path)

    def test_update_record_round_trips_subject(self):
        from repro.datalog.parser import parse_clause

        clause = parse_clause("p(X) :- q(X), not r(X).")
        [(operation, subject)] = updates_of(
            dict(update_record("insert_rule", clause), seq=1)
        )
        assert operation == "insert_rule"
        assert subject == clause

    def test_commit_record_preserves_order(self):
        from repro.datalog.parser import parse_fact

        facts = [parse_fact(f"e({i})") for i in range(4)]
        record = dict(
            commit_record([("insert_fact", fact) for fact in facts]), seq=1
        )
        assert [subject for _, subject in updates_of(record)] == facts


class TestReplay:
    def test_journal_replay_reaches_live_state(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        live = create_engine("cascade", PODS)
        for operation, subject in [
            ("insert_fact", "accepted(1)"),
            ("delete_fact", "accepted(2)"),
            ("insert_rule", "late(X) :- submitted(X), not accepted(X)."),
        ]:
            journal.append(update_record(operation, subject))
            live.apply(operation, subject)
        fresh = create_engine("cascade", PODS)
        applied, failed = replay(fresh, journal.records)
        assert applied == 3 and failed is None
        assert fresh.model == live.model
        assert dumps(fresh.state_dict()) == dumps(live.state_dict())

    def test_replay_tolerates_only_the_tail(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(update_record("insert_fact", "submitted(9)"))
        journal.append(update_record("delete_fact", "nosuch(1)"))
        fresh = create_engine("cascade", PODS)
        applied, failed = replay(
            fresh, journal.records, tolerate_tail=True
        )
        assert applied == 1 and failed == 2


# ----------------------------------------------------------------------
# Snapshots: exact state round-trip for every engine
# ----------------------------------------------------------------------


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_state_dict_round_trips_exactly(self, name):
        engine = create_engine(name, PODS)
        engine.insert_fact("submitted(4)")
        engine.delete_fact("accepted(2)")
        restored = engine_from_state(name, loads(dumps(engine.state_dict())))
        assert restored.model == engine.model
        assert restored._support_state() == engine._support_state()
        assert restored.db.program.clauses == engine.db.program.clauses
        assert dumps(restored.state_dict()) == dumps(engine.state_dict())

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_restored_engine_keeps_maintaining(self, name):
        engine = create_engine(name, PODS)
        engine.insert_fact("submitted(4)")
        restored = engine_from_state(name, loads(dumps(engine.state_dict())))
        for twin in (engine, restored):
            twin.insert_fact("accepted(3)")
            twin.delete_fact("submitted(1)")
        assert restored.model == engine.model
        assert restored._support_state() == engine._support_state()

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_snapshot_file_round_trip(self, name, tmp_path):
        store = Store.create(tmp_path / "db", PODS, engine=name)
        store.insert_fact("submitted(4)")
        store.snapshot()
        seq, state = read_snapshot(
            tmp_path / "db" / "snapshot-00000001.json"
        )
        assert seq == 1
        restored = engine_from_state(name, state)
        assert restored.model == store.engine.model
        assert restored._support_state() == store.engine._support_state()

    def test_serialization_is_deterministic(self):
        engine = create_engine("factlevel", PODS)
        other = create_engine("factlevel", PODS)
        assert dumps(engine.state_dict()) == dumps(other.state_dict())

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_v1_snapshot_file_still_restores(self, name, tmp_path):
        from repro.store.snapshot import write_snapshot

        engine = create_engine(name, PODS)
        engine.insert_fact("submitted(4)")
        path = write_snapshot(
            tmp_path, 0, engine.state_dict(), format_version=1
        )
        restored = engine_from_state(name, read_snapshot(path)[1])
        assert restored.model == engine.model
        assert restored._support_state() == engine._support_state()
        assert dumps(restored.state_dict()) == dumps(engine.state_dict())

    def test_store_opens_on_a_v1_base_snapshot(self, tmp_path):
        """A store whose base snapshot predates the v2 codec reopens
        transparently: read_snapshot regroups the legacy fact tuple into
        the columnar form every consumer now expects."""
        from repro.store.snapshot import write_snapshot

        store = Store.create(tmp_path / "db", PODS, engine="cascade")
        state = store.engine.state_dict()
        store.insert_fact("submitted(4)")
        expected = store.model.as_set()
        store.close()
        write_snapshot(tmp_path / "db", 0, state, format_version=1)
        reopened = Store.open(tmp_path / "db")
        assert reopened.model.as_set() == expected
        reopened.close()

    def test_unsupported_snapshot_format_rejected(self, tmp_path):
        import json as _json

        from repro.store.snapshot import SnapshotError, write_snapshot

        engine = create_engine("cascade", PODS)
        path = write_snapshot(tmp_path, 0, engine.state_dict())
        payload = _json.loads(path.read_text(encoding="utf-8"))
        payload["format"] = 99
        path.write_text(_json.dumps(payload), encoding="utf-8")
        with pytest.raises(SnapshotError):
            read_snapshot(path)
        with pytest.raises(SnapshotError):
            write_snapshot(tmp_path, 1, engine.state_dict(), format_version=99)
        payload["format"] = 2
        del payload["model"]  # truncated v2 file: missing model section
        path.write_text(_json.dumps(payload), encoding="utf-8")
        with pytest.raises(SnapshotError):
            read_snapshot(path)


# ----------------------------------------------------------------------
# Store lifecycle: create / open / write-ahead journaling
# ----------------------------------------------------------------------


class TestStore:
    def test_create_then_open_restores_state(self, store, tmp_path):
        store.insert_fact("accepted(1)")
        store.delete_fact("accepted(2)")
        store.close()
        reopened = Store.open(tmp_path / "db")
        assert reopened.revision == 2
        assert reopened.model.as_set() == {
            fact for fact in reopened.model.facts()
        }
        live = create_engine("cascade", PODS)
        live.insert_fact("accepted(1)")
        live.delete_fact("accepted(2)")
        assert reopened.model == live.model
        assert dumps(reopened.engine.state_dict()) == dumps(live.state_dict())

    def test_open_replays_journal_tail_over_snapshot(self, store, tmp_path):
        store.insert_fact("accepted(1)")
        store.snapshot()  # checkpoint at revision 1
        store.insert_fact("accepted(3)")  # journal tail past the snapshot
        expected = store.model.as_set()
        store.close()
        reopened = Store.open(tmp_path / "db")
        assert reopened.model.as_set() == expected

    def test_refused_update_is_not_journaled(self, store):
        with pytest.raises(UpdateError):
            store.delete_fact("nosuch(1)")
        assert store.head == 0
        store.insert_fact("submitted(4)")
        assert store.head == 1

    def test_open_requires_store_directory(self, tmp_path):
        with pytest.raises(StoreError):
            Store.open(tmp_path / "nothing")

    def test_create_refuses_existing_store(self, store, tmp_path):
        with pytest.raises(StoreError):
            Store.create(tmp_path / "db", PODS)

    def test_open_store_creates_then_reopens(self, tmp_path):
        first = open_store(tmp_path / "db", program=PODS, engine="dynamic")
        first.insert_fact("submitted(4)")
        first.close()
        second = open_store(tmp_path / "db")
        assert second.engine_name == "dynamic"
        assert second.model.contains("submitted", (4,))

    def test_autosnapshot_every(self, tmp_path):
        store = Store.create(
            tmp_path / "db", PODS, engine="cascade", snapshot_every=2
        )
        for i in range(4, 8):
            store.insert_fact(f"submitted({i})")
        assert snapshot_positions(tmp_path / "db") == [0, 2, 4]

    def test_crash_artifact_record_is_truncated_on_open(self, store, tmp_path):
        # Simulate a crash between the write-ahead append and admission:
        # the journaled update was never applied and cannot be (the fact
        # is not asserted), so open() drops it.
        store.insert_fact("submitted(4)")
        store.close()
        journal = Journal(tmp_path / "db" / "journal.jsonl")
        journal.append(update_record("delete_fact", "nosuch(1)"))
        reopened = Store.open(tmp_path / "db")
        assert reopened.head == 1
        assert reopened.model.contains("submitted", (4,))


# ----------------------------------------------------------------------
# Transactions
# ----------------------------------------------------------------------


class TestTransaction:
    def test_commit_is_one_revision(self, store):
        with store.transaction():
            store.insert_fact("submitted(4)")
            store.insert_fact("submitted(5)")
        assert store.revision == 1
        assert store.journal.record(1)["kind"] == "commit"
        assert store.model.contains("submitted", (5,))

    def test_commit_replays_on_reopen(self, store, tmp_path):
        with store.transaction():
            store.insert_fact("submitted(4)")
            store.delete_fact("accepted(2)")
        expected = store.model.as_set()
        store.close()
        assert Store.open(tmp_path / "db").model.as_set() == expected

    def test_failure_mid_batch_restores_byte_identical_state(self, store):
        store.insert_fact("submitted(4)")
        before = dumps(store.engine.state_dict())
        with pytest.raises(UpdateError):
            with store.transaction():
                store.insert_fact("submitted(5)")
                store.delete_fact("nosuch(1)")  # fails mid-batch
        assert dumps(store.engine.state_dict()) == before
        assert store.head == 1  # nothing extra journaled

    def test_abort_restores_byte_identical_state(self, store):
        before = dumps(store.engine.state_dict())
        with store.transaction() as txn:
            store.insert_fact("submitted(4)")
            assert store.model.contains("submitted", (4,))  # live inside
            txn.abort()
        assert dumps(store.engine.state_dict()) == before
        assert store.head == 0

    def test_empty_transaction_journals_nothing(self, store):
        with store.transaction():
            pass
        assert store.head == 0

    def test_transactions_do_not_nest(self, store):
        with store.transaction():
            with pytest.raises(TransactionError):
                store.transaction().__enter__()

    def test_transaction_object_not_reusable(self, store):
        txn = store.transaction()
        with txn:
            store.insert_fact("submitted(4)")
        with pytest.raises(TransactionError):
            txn.__enter__()

    def test_model_consistent_after_rollback(self, store):
        with store.transaction() as txn:
            store.insert_fact("submitted(4)")
            txn.abort()
        store.insert_fact("submitted(6)")
        assert store.model == compute_model(store.engine.db.program)


# ----------------------------------------------------------------------
# Undo / redo / time travel
# ----------------------------------------------------------------------


class TestTimeTravel:
    def test_undo_materializes_earlier_state(self, store):
        base = store.model.as_set()
        store.insert_fact("submitted(4)")
        middle = store.model.as_set()
        store.delete_fact("accepted(2)")
        store.undo(1)
        assert store.model.as_set() == middle
        store.undo(1)
        assert store.model.as_set() == base
        assert store.revision == 0

    def test_redo_reapplies(self, store):
        store.insert_fact("submitted(4)")
        head = store.model.as_set()
        store.undo(1)
        store.redo(1)
        assert store.model.as_set() == head
        assert store.revision == 1

    def test_new_update_truncates_redo_tail(self, store):
        store.insert_fact("submitted(4)")
        store.insert_fact("submitted(5)")
        store.undo(2)
        store.insert_fact("submitted(6)")
        assert store.head == 1
        with pytest.raises(StoreError):
            store.redo(1)

    def test_stale_snapshots_are_dropped_with_the_tail(self, store, tmp_path):
        store.insert_fact("submitted(4)")
        store.snapshot()  # snapshot-1 describes the old revision 1
        store.undo(1)
        store.insert_fact("submitted(7)")  # new, different revision 1
        store.close()
        reopened = Store.open(tmp_path / "db")
        assert reopened.model.contains("submitted", (7,))
        assert not reopened.model.contains("submitted", (4,))

    def test_travel_to_absolute_revision(self, store):
        states = [store.model.as_set()]
        for i in range(4, 7):
            store.insert_fact(f"submitted({i})")
            states.append(store.model.as_set())
        for revision in (0, 2, 3, 1):
            store.travel(revision)
            assert store.model.as_set() == states[revision]

    def test_undo_beyond_history_raises(self, store):
        with pytest.raises(StoreError):
            store.undo(1)

    def test_refused_update_preserves_redo_tail(self, store):
        store.insert_fact("submitted(4)")
        store.insert_fact("submitted(5)")
        store.undo(2)
        with pytest.raises(UpdateError):
            store.delete_fact("nosuch(1)")  # refused before admission
        assert store.head == 2  # the undone revisions are still there
        store.redo(2)
        assert store.model.contains("submitted", (5,))

    def test_half_created_directory_is_recoverable(self, tmp_path):
        # Crash during create() before meta.json (the commit point): the
        # directory has a snapshot and journal but no meta; open_store
        # must re-create cleanly rather than brick.
        directory = tmp_path / "db"
        store = Store.create(directory, PODS)
        store.insert_fact("submitted(4)")
        store.close()
        (directory / "meta.json").unlink()  # what a mid-create crash leaves
        reopened = open_store(directory, program=PODS, engine="cascade")
        assert reopened.head == 0  # fresh store; stale journal not adopted
        assert not reopened.model.contains("submitted", (4,))

    def test_undo_of_transaction_is_atomic(self, store):
        base = store.model.as_set()
        with store.transaction():
            store.insert_fact("submitted(4)")
            store.insert_fact("submitted(5)")
        store.undo(1)
        assert store.model.as_set() == base


# ----------------------------------------------------------------------
# Property-style: journaled replay tracks the live engine; undo/redo are
# an inverse pair (alongside tests/test_properties.py)
# ----------------------------------------------------------------------


_dirs = __import__("itertools").count()

seeds = st.integers(min_value=0, max_value=10_000)
common = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)


class TestStoreProperties:
    @given(seed=seeds, n_updates=st.integers(min_value=1, max_value=6))
    @common
    def test_reopen_equals_live_engine(self, seed, n_updates, tmp_path):
        syn = generate(seed, SMALL)
        updates = random_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=n_updates, seed=seed,
        )
        directory = tmp_path / f"db-{next(_dirs)}"
        store = Store.create(directory, syn.program, engine="cascade")
        live = create_engine("cascade", syn.program)
        for operation, subject in updates:
            store.apply(operation, subject)
            live.apply(operation, subject)
        store.close()
        reopened = Store.open(directory)
        assert reopened.model == live.model
        assert dumps(reopened.engine.state_dict()) == dumps(live.state_dict())

    @given(seed=seeds, n_updates=st.integers(min_value=1, max_value=6))
    @common
    def test_undo_redo_is_inverse_pair(self, seed, n_updates, tmp_path):
        syn = generate(seed, SMALL)
        updates = random_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=n_updates, seed=seed,
        )
        directory = tmp_path / f"db-{next(_dirs)}"
        store = Store.create(directory, syn.program, engine="cascade")
        states = [dumps(store.engine.state_dict())]
        for operation, subject in updates:
            store.apply(operation, subject)
            states.append(dumps(store.engine.state_dict()))
        for steps in range(1, len(states)):
            store.undo(steps)
            assert dumps(store.engine.state_dict()) == states[-1 - steps]
            store.redo(steps)
            assert dumps(store.engine.state_dict()) == states[-1]
        store.close()
