"""Unit tests for the de Kleer-style ATMS."""

from repro.tms.atms import ATMS, minimize


class TestMinimize:
    def test_keeps_antichain(self):
        envs = {frozenset({"a"}), frozenset({"a", "b"}), frozenset({"c"})}
        assert minimize(envs) == {frozenset({"a"}), frozenset({"c"})}

    def test_empty_environment_dominates(self):
        assert minimize({frozenset(), frozenset({"a"})}) == {frozenset()}


class TestLabels:
    def test_assumption_labels_itself(self):
        atms = ATMS()
        atms.add_assumption("a")
        assert atms.label("a") == {frozenset({"a"})}

    def test_premise_holds_everywhere(self):
        atms = ATMS()
        atms.add_premise("p")
        assert atms.label("p") == {frozenset()}

    def test_justification_combines_antecedent_labels(self):
        atms = ATMS()
        atms.add_assumption("a")
        atms.add_assumption("b")
        atms.justify("c", ["a", "b"])
        assert atms.label("c") == {frozenset({"a", "b"})}

    def test_multiple_derivations_multiple_environments(self):
        atms = ATMS()
        atms.add_assumption("a")
        atms.add_assumption("b")
        atms.justify("c", ["a"])
        atms.justify("c", ["b"])
        assert atms.label("c") == {frozenset({"a"}), frozenset({"b"})}

    def test_labels_are_minimal(self):
        atms = ATMS()
        atms.add_assumption("a")
        atms.add_assumption("b")
        atms.justify("c", ["a"])
        atms.justify("c", ["a", "b"])  # subsumed
        assert atms.label("c") == {frozenset({"a"})}

    def test_propagation_through_chains(self):
        atms = ATMS()
        atms.add_assumption("a")
        atms.justify("b", ["a"])
        atms.justify("c", ["b"])
        assert atms.label("c") == {frozenset({"a"})}

    def test_late_justification_back_propagates(self):
        atms = ATMS()
        atms.justify("c", ["b"])  # b has no label yet
        assert atms.label("c") == frozenset()
        atms.add_assumption("b")
        assert atms.label("c") == {frozenset({"b"})}


class TestContexts:
    def _diamond(self):
        atms = ATMS()
        for name in ("a", "b"):
            atms.add_assumption(name)
        atms.justify("c", ["a"])
        atms.justify("d", ["b"])
        atms.justify("e", ["c", "d"])
        return atms

    def test_holds_in(self):
        atms = self._diamond()
        assert atms.holds_in("c", {"a"})
        assert not atms.holds_in("c", {"b"})
        assert atms.holds_in("e", {"a", "b"})

    def test_context(self):
        atms = self._diamond()
        assert atms.context({"a"}) == {"a", "c"}
        assert atms.context({"a", "b"}) == {"a", "b", "c", "d", "e"}

    def test_multiple_contexts_coexist(self):
        # de Kleer's point: no single committed context.
        atms = self._diamond()
        assert atms.context({"a"}) != atms.context({"b"})
        assert atms.label("e")  # still labelled independently of contexts


class TestNogoods:
    def test_nogood_prunes_labels(self):
        atms = ATMS()
        atms.add_assumption("a")
        atms.add_assumption("b")
        atms.justify("c", ["a", "b"])
        atms.add_nogood({"a", "b"})
        assert atms.label("c") == frozenset()

    def test_nogood_blocks_future_environments(self):
        atms = ATMS()
        atms.add_assumption("a")
        atms.add_assumption("b")
        atms.add_nogood({"a", "b"})
        atms.justify("c", ["a", "b"])
        assert atms.label("c") == frozenset()

    def test_is_nogood_on_supersets(self):
        atms = ATMS()
        atms.add_assumption("a")
        atms.add_assumption("b")
        atms.add_nogood({"a", "b"})
        assert atms.is_nogood({"a", "b", "x"})
        assert not atms.is_nogood({"a"})
