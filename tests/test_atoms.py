"""Unit tests for repro.datalog.atoms."""

import pytest

from repro.datalog.atoms import Atom, Literal, atom, fact, neg, pos
from repro.datalog.terms import Variable


class TestAtom:
    def test_structural_equality(self):
        assert Atom("p", (1, 2)) == Atom("p", (1, 2))
        assert Atom("p", (1, 2)) != Atom("p", (2, 1))
        assert Atom("p", (1,)) != Atom("q", (1,))

    def test_hash_cached_and_consistent(self):
        a = Atom("p", (1, 2))
        assert hash(a) == hash(Atom("p", (1, 2)))
        assert len({Atom("p", ()), Atom("p", ())}) == 1

    def test_arity(self):
        assert Atom("p", ()).arity == 0
        assert Atom("p", (1, 2, 3)).arity == 3

    def test_is_ground(self):
        assert Atom("p", (1, "a")).is_ground()
        assert not Atom("p", (Variable("X"),)).is_ground()

    def test_variables(self):
        x = Variable("X")
        assert list(Atom("p", (x, 1, x)).variables()) == [x, x]

    def test_str_propositional(self):
        assert str(Atom("rain", ())) == "rain"

    def test_str_with_args(self):
        assert str(Atom("edge", ("a", 2))) == "edge(a, 2)"

    def test_empty_relation_rejected(self):
        with pytest.raises(ValueError):
            Atom("", ())


class TestLiteral:
    def test_polarity(self):
        a = Atom("p", (1,))
        assert Literal(a).positive
        assert not Literal(a, positive=False).positive

    def test_negate(self):
        lit = Literal(Atom("p", ()), positive=True)
        assert not lit.negate().positive
        assert lit.negate().negate() == lit

    def test_equality_includes_polarity(self):
        a = Atom("p", ())
        assert Literal(a, True) != Literal(a, False)

    def test_str(self):
        assert str(pos("p", 1)) == "p(1)"
        assert str(neg("p", 1)) == "not p(1)"

    def test_relation_and_args_passthrough(self):
        lit = pos("edge", "a", "b")
        assert lit.relation == "edge"
        assert lit.args == ("a", "b")


class TestConstructors:
    def test_atom_helper(self):
        assert atom("p", 1, "x") == Atom("p", (1, "x"))

    def test_fact_rejects_variables(self):
        with pytest.raises(ValueError):
            fact("p", Variable("X"))

    def test_fact_accepts_ground(self):
        assert fact("p", 1).is_ground()
