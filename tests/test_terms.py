"""Unit tests for repro.datalog.terms."""

import pytest

from repro.datalog.terms import (
    Variable,
    format_term,
    is_constant,
    is_ground,
    is_variable,
    variables,
    variables_in,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hash_consistent_with_equality(self):
        assert hash(Variable("X")) == hash(Variable("X"))
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_not_equal_to_its_name_string(self):
        assert Variable("X") != "X"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_str_and_repr(self):
        assert str(Variable("Who")) == "Who"
        assert "Who" in repr(Variable("Who"))


class TestPredicates:
    def test_is_variable(self):
        assert is_variable(Variable("X"))
        assert not is_variable("x")
        assert not is_variable(3)

    def test_is_constant(self):
        assert is_constant("x")
        assert is_constant(3)
        assert not is_constant(Variable("X"))

    def test_is_ground(self):
        assert is_ground(("a", 1, "b"))
        assert is_ground(())
        assert not is_ground(("a", Variable("X")))

    def test_variables_in_preserves_order_and_duplicates(self):
        x, y = Variable("X"), Variable("Y")
        assert list(variables_in((x, "a", y, x))) == [x, y, x]


class TestVariablesFactory:
    def test_space_separated(self):
        x, y = variables("X Y")
        assert x == Variable("X") and y == Variable("Y")

    def test_comma_separated(self):
        assert variables("A, B, C") == (
            Variable("A"),
            Variable("B"),
            Variable("C"),
        )


class TestFormatTerm:
    def test_variable(self):
        assert format_term(Variable("X")) == "X"

    def test_identifier_constant_bare(self):
        assert format_term("alice") == "alice"
        assert format_term("a_b2") == "a_b2"

    def test_non_identifier_string_quoted(self):
        assert format_term("Alice") == "'Alice'"
        assert format_term("two words") == "'two words'"

    def test_quote_escaping(self):
        assert format_term("it's") == "'it\\'s'"

    def test_integer(self):
        assert format_term(42) == "42"
