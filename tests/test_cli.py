"""Tests for the interactive console (repro.cli)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import Console, main

PODS = """
submitted(1). submitted(2). submitted(3).
accepted(2).
rejected(X) :- not accepted(X), submitted(X).
"""


@pytest.fixture
def console():
    return Console(PODS)


class TestUpdates:
    def test_insert_fact(self, console):
        output = console.dispatch("+ accepted(1).")
        assert "insert_fact" in output
        assert console.engine.model.contains("accepted", (1,))

    def test_delete_fact(self, console):
        console.dispatch("- accepted(2).")
        assert console.engine.model.contains("rejected", (2,))

    def test_insert_rule(self, console):
        console.dispatch("+ pending(X) :- submitted(X), not accepted(X).")
        assert console.engine.model.count_of("pending") == 2

    def test_delete_rule(self, console):
        console.dispatch("- rejected(X) :- not accepted(X), submitted(X).")
        assert console.engine.model.count_of("rejected") == 0


class TestQueries:
    def test_rows(self, console):
        output = console.dispatch("? rejected(X)")
        assert "1" in output and "3" in output and "2 rows" in output

    def test_boolean_yes(self, console):
        assert console.dispatch("? accepted(2)") == "yes"

    def test_boolean_no(self, console):
        assert console.dispatch("? accepted(1)") == "no"


class TestIntrospection:
    def test_why(self, console):
        output = console.dispatch("why rejected(1)")
        assert "[by:" in output and "submitted(1)" in output

    def test_whynot(self, console):
        output = console.dispatch("whynot rejected(2)")
        assert "accepted(2) is present" in output

    def test_model_full(self, console):
        assert "rejected(1)" in console.dispatch("model")

    def test_model_one_relation(self, console):
        output = console.dispatch("model rejected")
        assert "rejected(1)" in output and "submitted" not in output

    def test_supports(self, console):
        output = console.dispatch("supports rejected(1)")
        assert "rule:" in output

    def test_stats(self, console):
        console.dispatch("+ accepted(1).")
        output = console.dispatch("stats")
        assert "updates=1" in output


class TestSession:
    def test_engine_switch(self, console):
        output = console.dispatch("engine factlevel")
        assert "switched" in output
        assert console.dispatch("? rejected(X)") != "no"

    def test_engine_unknown(self, console):
        assert "unknown engine" in console.dispatch("engine bogus")

    def test_blank_and_comment_lines(self, console):
        assert console.dispatch("") == ""
        assert console.dispatch("% a comment") == ""

    def test_quit(self, console):
        assert console.dispatch("quit") is None

    def test_unknown_command(self, console):
        assert "unknown command" in console.dispatch("frobnicate")

    def test_save(self, console, tmp_path):
        target = tmp_path / "out.dl"
        output = console.dispatch(f"save {target}")
        assert "wrote" in output
        reloaded = Console(target.read_text())
        assert reloaded.engine.model == console.engine.model

    def test_save_round_trips_after_updates(self, console, tmp_path):
        # Regression: a session's worth of updates must survive
        # save -> reload -> save byte-identically (deterministic clause
        # ordering, trailing periods, quoting).
        console.dispatch("+ accepted(10).")
        console.dispatch("- accepted(2).")
        console.dispatch("+ pending(X) :- submitted(X), not accepted(X).")
        console.dispatch("+ labelled('Weird Name').")
        first = tmp_path / "first.dl"
        console.dispatch(f"save {first}")
        reloaded = Console(first.read_text())
        assert set(reloaded.engine.db.program.clauses) == set(
            console.engine.db.program.clauses
        )
        assert reloaded.engine.model == console.engine.model
        second = tmp_path / "second.dl"
        reloaded.dispatch(f"save {second}")
        assert second.read_text() == first.read_text()
        for line in first.read_text().splitlines():
            assert line.endswith(".")

    def test_save_empty_program(self, tmp_path):
        console = Console("")
        target = tmp_path / "empty.dl"
        console.dispatch(f"save {target}")
        assert Console(target.read_text()).engine.model == console.engine.model

    def test_help(self, console):
        assert "why" in console.dispatch("help")

    def test_non_ascii_round_trip_under_c_locale(self, tmp_path):
        # Regression: `save` and `--program` opened files with the locale
        # encoding while the store layer pins UTF-8; under LC_ALL=C a
        # program with a non-ASCII constant crashed the round trip.
        source = tmp_path / "prog.dl"
        saved = tmp_path / "saved.dl"
        source.write_text("labelled('café').\n", encoding="utf-8")
        env = dict(
            os.environ,
            LC_ALL="C",
            LANG="C",
            PYTHONCOERCECLOCALE="0",
            PYTHONUTF8="0",
            PYTHONIOENCODING="utf-8",  # stdio only; open() stays ASCII
            PYTHONPATH=str(Path(repro.__file__).resolve().parents[1]),
        )
        again = tmp_path / "again.dl"
        for program, target in ((source, saved), (saved, again)):
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", str(program),
                    "-c", f"save {target}",
                ],
                capture_output=True,
                env=env,
            )
            assert result.returncode == 0, result.stderr.decode("utf-8")
        # `save` normalises quoting, so compare save -> load -> save.
        assert again.read_bytes() == saved.read_bytes()
        reloaded = Console(saved.read_text(encoding="utf-8"))
        assert reloaded.engine.model.contains("labelled", ("café",))


class TestTelemetryCommands:
    @pytest.fixture(autouse=True)
    def _obs_off(self):
        from repro.obs import OBS

        OBS.disable()
        OBS.reset()
        yield
        OBS.disable()
        OBS.reset()

    def test_stats_json(self, console):
        import json

        console.dispatch("+ accepted(1).")
        payload = json.loads(console.dispatch("stats json"))
        assert payload["totals"]["updates"] == 1
        assert payload["engine"] == "cascade"
        assert payload["model_size"] == len(console.engine.model)

    def test_log_json(self, console, tmp_path):
        import json

        console.dispatch(f"open {tmp_path / 'db'}")
        console.dispatch("+ accepted(1).")
        records = json.loads(console.dispatch("log json"))
        assert records[0]["op"] == "insert_fact"
        assert records[0]["seq"] == 1

    def test_telemetry_toggle(self, console):
        assert "off" in console.dispatch("telemetry")
        assert console.dispatch("telemetry on") == "telemetry on"
        assert "on" in console.dispatch("telemetry")
        assert console.dispatch("telemetry off") == "telemetry off"

    def test_metrics_and_trace(self, console):
        import json

        assert "no metrics" in console.dispatch("metrics")
        assert "no trace" in console.dispatch("trace")
        console.dispatch("telemetry on")
        console.dispatch("+ accepted(1).")
        assert "repro_updates_total" in console.dispatch("metrics")
        assert "update:insert_fact" in console.dispatch("trace")
        tree = json.loads(console.dispatch("trace json"))
        assert tree["name"] == "update:insert_fact"
        chrome = json.loads(console.dispatch("trace chrome"))
        assert chrome["traceEvents"][0]["ph"] == "X"

    def test_plan_report(self, console):
        console.dispatch("+ accepted(1).")
        output = console.dispatch(
            "plan rejected(X) :- not accepted(X), submitted(X)."
        )
        assert "plan for:" in output
        assert "estimated=" in output

    def test_main_telemetry_flag(self, tmp_path, capsys):
        program = tmp_path / "db.dl"
        program.write_text(PODS)
        code = main(
            [str(program), "--telemetry", "-c", "+ accepted(1).",
             "-c", "metrics"]
        )
        assert code == 0
        assert "repro_updates_total" in capsys.readouterr().out


class TestStoreCommands:
    def test_open_commit_log_close(self, console, tmp_path):
        output = console.dispatch(f"open {tmp_path / 'db'}")
        assert "revision 0" in output
        console.dispatch("+ accepted(1).")
        assert "insert_fact" in console.dispatch("log")
        assert "revision 1" in console.dispatch("commit")
        assert "detached" in console.dispatch("close")
        assert "no store attached" in console.dispatch("log")

    def test_updates_are_journaled_and_replayed(self, console, tmp_path):
        console.dispatch(f"open {tmp_path / 'db'}")
        console.dispatch("+ accepted(1).")
        console.dispatch("- accepted(2).")
        model = console.engine.model.as_set()
        console.dispatch("close")
        fresh = Console("", store_path=str(tmp_path / "db"))
        assert fresh.engine.model.as_set() == model

    def test_undo_redo(self, console, tmp_path):
        console.dispatch(f"open {tmp_path / 'db'}")
        before = console.engine.model.as_set()
        console.dispatch("+ accepted(1).")
        after = console.engine.model.as_set()
        console.dispatch("undo")
        assert console.engine.model.as_set() == before
        console.dispatch("redo 1")
        assert console.engine.model.as_set() == after

    def test_engine_switch_blocked_with_store(self, console, tmp_path):
        console.dispatch(f"open {tmp_path / 'db'}")
        assert "fixed" in console.dispatch("engine static")
        console.dispatch("close")
        assert "switched" in console.dispatch("engine static")

    def test_open_twice_refused(self, console, tmp_path):
        console.dispatch(f"open {tmp_path / 'db'}")
        assert "already attached" in console.dispatch(
            f"open {tmp_path / 'other'}"
        )

    def test_main_store_flag(self, tmp_path, capsys):
        program = tmp_path / "db.dl"
        program.write_text(PODS)
        code = main(
            [str(program), "--store", str(tmp_path / "store"),
             "-c", "+ accepted(1).", "-c", "log"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "insert_fact" in out
        code = main(["--store", str(tmp_path / "store"), "-c", "? accepted(1)"])
        assert code == 0
        assert "yes" in capsys.readouterr().out


class TestMain:
    def test_command_mode(self, tmp_path, capsys):
        program = tmp_path / "db.dl"
        program.write_text(PODS)
        code = main([str(program), "-c", "? rejected(X)"])
        assert code == 0
        captured = capsys.readouterr()
        assert "2 rows" in captured.out

    def test_bad_program(self, tmp_path, capsys):
        program = tmp_path / "bad.dl"
        program.write_text("p(X) :- e(X), not q(X). q(X) :- p(X).")
        assert main([str(program)]) == 1
        assert "error" in capsys.readouterr().err

    def test_engine_flag(self, tmp_path, capsys):
        program = tmp_path / "db.dl"
        program.write_text(PODS)
        main([str(program), "--engine", "factlevel", "-c", "stats"])
        assert "factlevel" in capsys.readouterr().out or True


class TestCheckVerb:
    def test_console_check_renders_report(self, console):
        console.dispatch("+ p(X) :- submitted(X), not ghost(X).")
        output = console.dispatch("check")
        assert "DL005" in output and "ghost" in output

    def test_console_check_json(self, console):
        payload = json.loads(console.dispatch("check json"))
        assert "diagnostics" in payload

    def test_console_independence(self, console):
        output = console.dispatch("independence")
        assert "shard" in output

    def test_console_independence_json(self, console):
        payload = json.loads(console.dispatch("independence json"))
        assert "shards" in payload

    def test_insert_rule_prints_warning(self, console):
        output = console.dispatch("+ p(X) :- submitted(X), not ghost(X).")
        assert "warning DL005" in output


class TestCheckCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        program = tmp_path / "clean.dl"
        program.write_text("q(1).\np(X) :- q(X).\nr(X) :- p(X).\n")
        assert main(["check", str(program)]) == 0
        assert "clean" not in capsys.readouterr().err

    def test_warning_file_exits_one(self, tmp_path, capsys):
        program = tmp_path / "warn.dl"
        program.write_text("p(X) :- q(X), r(Y, X).\nq(1). r(1, 2).\n")
        assert main(["check", str(program)]) == 1
        assert "DL007" in capsys.readouterr().out

    def test_error_file_exits_two(self, tmp_path, capsys):
        program = tmp_path / "bad.dl"
        program.write_text("p(X, Y) :- q(X).\nq(1).\n")
        assert main(["check", str(program)]) == 2
        out = capsys.readouterr().out
        assert "error DL001" in out

    def test_parse_failure_exits_two(self, tmp_path, capsys):
        program = tmp_path / "broken.dl"
        program.write_text("p(X :- q(X).\n")
        assert main(["check", str(program)]) == 2
        assert "DL000" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "absent.dl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_json_reports_positions(self, tmp_path, capsys):
        program = tmp_path / "bad.dl"
        program.write_text("p(X, Y) :- q(X).\nq(1).\n")
        assert main(["check", "--json", str(program)]) == 2
        payload = json.loads(capsys.readouterr().out)
        finding = payload[0]["diagnostics"][0]
        assert finding["code"] == "DL001"
        assert finding["line"] == 1 and finding["column"] >= 1

    def test_pragma_makes_file_clean(self, tmp_path, capsys):
        program = tmp_path / "allowed.dl"
        program.write_text(
            "% repro: allow DL007\n"
            "p(X) :- q(X), r(Y, X).\nq(1). r(1, 2).\n"
        )
        assert main(["check", str(program)]) == 0

    def test_workloads_self_lint_is_clean(self, capsys):
        assert main(["check", "--workloads"]) == 0
        out = capsys.readouterr().out
        assert "workload:pods: clean" in out
