"""Tests for the interactive console (repro.cli)."""

import pytest

from repro.cli import Console, main

PODS = """
submitted(1). submitted(2). submitted(3).
accepted(2).
rejected(X) :- not accepted(X), submitted(X).
"""


@pytest.fixture
def console():
    return Console(PODS)


class TestUpdates:
    def test_insert_fact(self, console):
        output = console.dispatch("+ accepted(1).")
        assert "insert_fact" in output
        assert console.engine.model.contains("accepted", (1,))

    def test_delete_fact(self, console):
        console.dispatch("- accepted(2).")
        assert console.engine.model.contains("rejected", (2,))

    def test_insert_rule(self, console):
        console.dispatch("+ pending(X) :- submitted(X), not accepted(X).")
        assert console.engine.model.count_of("pending") == 2

    def test_delete_rule(self, console):
        console.dispatch("- rejected(X) :- not accepted(X), submitted(X).")
        assert console.engine.model.count_of("rejected") == 0


class TestQueries:
    def test_rows(self, console):
        output = console.dispatch("? rejected(X)")
        assert "1" in output and "3" in output and "2 rows" in output

    def test_boolean_yes(self, console):
        assert console.dispatch("? accepted(2)") == "yes"

    def test_boolean_no(self, console):
        assert console.dispatch("? accepted(1)") == "no"


class TestIntrospection:
    def test_why(self, console):
        output = console.dispatch("why rejected(1)")
        assert "[by:" in output and "submitted(1)" in output

    def test_whynot(self, console):
        output = console.dispatch("whynot rejected(2)")
        assert "accepted(2) is present" in output

    def test_model_full(self, console):
        assert "rejected(1)" in console.dispatch("model")

    def test_model_one_relation(self, console):
        output = console.dispatch("model rejected")
        assert "rejected(1)" in output and "submitted" not in output

    def test_supports(self, console):
        output = console.dispatch("supports rejected(1)")
        assert "rule:" in output

    def test_stats(self, console):
        console.dispatch("+ accepted(1).")
        output = console.dispatch("stats")
        assert "updates=1" in output


class TestSession:
    def test_engine_switch(self, console):
        output = console.dispatch("engine factlevel")
        assert "switched" in output
        assert console.dispatch("? rejected(X)") != "no"

    def test_engine_unknown(self, console):
        assert "unknown engine" in console.dispatch("engine bogus")

    def test_blank_and_comment_lines(self, console):
        assert console.dispatch("") == ""
        assert console.dispatch("% a comment") == ""

    def test_quit(self, console):
        assert console.dispatch("quit") is None

    def test_unknown_command(self, console):
        assert "unknown command" in console.dispatch("frobnicate")

    def test_save(self, console, tmp_path):
        target = tmp_path / "out.dl"
        output = console.dispatch(f"save {target}")
        assert "wrote" in output
        reloaded = Console(target.read_text())
        assert reloaded.engine.model == console.engine.model

    def test_help(self, console):
        assert "why" in console.dispatch("help")


class TestMain:
    def test_command_mode(self, tmp_path, capsys):
        program = tmp_path / "db.dl"
        program.write_text(PODS)
        code = main([str(program), "-c", "? rejected(X)"])
        assert code == 0
        captured = capsys.readouterr()
        assert "2 rows" in captured.out

    def test_bad_program(self, tmp_path, capsys):
        program = tmp_path / "bad.dl"
        program.write_text("p(X) :- e(X), not q(X). q(X) :- p(X).")
        assert main([str(program)]) == 1
        assert "error" in capsys.readouterr().err

    def test_engine_flag(self, tmp_path, capsys):
        program = tmp_path / "db.dl"
        program.write_text(PODS)
        main([str(program), "--engine", "factlevel", "-c", "stats"])
        assert "factlevel" in capsys.readouterr().out or True
