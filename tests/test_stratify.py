"""Unit tests for repro.datalog.stratify."""

import pytest

from repro.datalog.clauses import Clause
from repro.datalog.errors import StratificationError
from repro.datalog.parser import parse_clause, parse_program
from repro.datalog.stratify import check_stratified_with, stratify


class TestLevels:
    def test_edb_at_level_one(self):
        s = stratify(parse_program("e(1). p(X) :- e(X)."))
        assert s.stratum_of("e") == 1
        assert s.stratum_of("p") == 1  # positive dependency stays level 1

    def test_negation_bumps_level(self):
        s = stratify(parse_program("e(1). p(X) :- e(X), not q(X)."))
        assert s.stratum_of("q") == 1
        assert s.stratum_of("p") == 2

    def test_chain_levels(self):
        s = stratify(parse_program("p1 :- not p0. p2 :- not p1. p3 :- not p2."))
        assert [s.stratum_of(f"p{i}") for i in range(4)] == [1, 2, 3, 4]

    def test_mutually_recursive_share_stratum(self):
        s = stratify(parse_program("p(X) :- q(X). q(X) :- p(X). p(X) :- e(X)."))
        assert s.stratum_of("p") == s.stratum_of("q")

    def test_unknown_relation_defaults_to_one(self):
        s = stratify(parse_program("e(1)."))
        assert s.stratum_of("never_seen") == 1

    def test_not_stratified_raises(self):
        with pytest.raises(StratificationError):
            stratify(parse_program("p(X) :- e(X), not q(X). q(X) :- p(X)."))


class TestStrataContents:
    def test_clauses_assigned_to_head_stratum(self):
        program = parse_program(
            "e(1). e(2). p(X) :- e(X), not q(X). q(X) :- e(X), not r(X)."
        )
        s = stratify(program)
        q_stratum = s.stratum_of("q")
        clauses = s.clauses_at(q_stratum)
        assert all(c.head.relation in s.relations_at(q_stratum) for c in clauses)

    def test_every_clause_in_exactly_one_stratum(self):
        program = parse_program(
            "e(1). p(X) :- e(X). q(X) :- p(X), not p2(X). p2(X) :- e(X)."
        )
        s = stratify(program)
        total = sum(len(stratum.clauses) for stratum in s)
        assert total == len(program)

    def test_negative_references_strictly_lower(self):
        program = parse_program(
            "e(1). a(X) :- e(X), not b(X). b(X) :- e(X), not c(X). c(X) :- e(X)."
        )
        s = stratify(program)
        for stratum in s:
            for clause in stratum.clauses:
                for lit in clause.negative_body:
                    assert s.stratum_of(lit.relation) < stratum.index

    def test_positive_references_lower_or_equal(self):
        program = parse_program("e(1). p(X) :- e(X). q(X) :- p(X), q(X).")
        s = stratify(program)
        for stratum in s:
            for clause in stratum.clauses:
                for lit in clause.positive_body:
                    assert s.stratum_of(lit.relation) <= stratum.index


class TestSccGranularity:
    def test_scc_granularity_refines_levels(self):
        program = parse_program(
            "e(1). f(2). p(X) :- e(X). q(X) :- f(X)."
        )
        coarse = stratify(program, granularity="level")
        fine = stratify(program, granularity="scc")
        assert len(fine) >= len(coarse)

    def test_scc_granularity_keeps_ordering_constraints(self):
        program = parse_program(
            "e(1). a(X) :- e(X), not b(X). b(X) :- e(X), not c(X). c(X) :- e(X)."
        )
        s = stratify(program, granularity="scc")
        assert s.stratum_of("c") < s.stratum_of("b") < s.stratum_of("a")

    def test_unknown_granularity(self):
        with pytest.raises(ValueError):
            stratify(parse_program("e(1)."), granularity="bogus")


class TestAdmission:
    def test_check_stratified_with_accepts(self):
        program = parse_program("e(1). p(X) :- e(X), not q(X).")
        check_stratified_with(program, [parse_clause("q(X) :- e(X).")])

    def test_check_stratified_with_rejects(self):
        program = parse_program("e(1). p(X) :- e(X), not q(X).")
        with pytest.raises(StratificationError):
            check_stratified_with(program, [parse_clause("q(X) :- p(X).")])


class TestClauseSync:
    def test_add_and_remove_clause(self):
        program = parse_program("e(1). p(X) :- e(X).")
        s = stratify(program)
        extra = Clause(parse_clause("e(9).").head)
        s.add_clause(extra)
        assert extra in s.clauses_at(s.stratum_of("e"))
        s.remove_clause(extra)
        assert extra not in s.clauses_at(s.stratum_of("e"))

    def test_add_clause_idempotent(self):
        program = parse_program("e(1).")
        s = stratify(program)
        extra = parse_clause("e(7).")
        s.add_clause(extra)
        s.add_clause(extra)
        assert s.clauses_at(1).count(extra) == 1
