"""Tests for conjunctive queries over the maintained model."""

import pytest

from repro.datalog.errors import SafetyError
from repro.datalog.evaluation import compute_model
from repro.datalog.parser import parse_program
from repro.datalog.query import ask, iter_answers, parse_query, query

MODEL = compute_model(
    parse_program(
        """
        submitted(1). submitted(2). submitted(3).
        accepted(2). late(3).
        author(ann, 1). author(bob, 2). author(ann, 3).
        rejected(X) :- not accepted(X), submitted(X).
        """
    )
)


class TestParseQuery:
    def test_conjunction(self):
        literals = parse_query("a(X), not b(X, Y)")
        assert len(literals) == 2
        assert not literals[1].positive

    def test_trailing_period_ok(self):
        assert parse_query("a(X).") == parse_query("a(X)")


class TestQuery:
    def test_single_positive(self):
        assert query(MODEL, "accepted(X)") == [(2,)]

    def test_join(self):
        rows = query(MODEL, "author(A, P), accepted(P)")
        assert rows == [("bob", 2)]

    def test_negation(self):
        rows = query(MODEL, "submitted(X), not accepted(X)")
        assert rows == [(1,), (3,)]

    def test_distinct_projection(self):
        rows = query(MODEL, "author(A, P), rejected(P)", distinct=("A",))
        assert rows == [("ann",)]

    def test_constants_in_query(self):
        assert query(MODEL, "author(A, 1)") == [("ann",)]

    def test_ground_query(self):
        assert query(MODEL, "accepted(2)") == [()]
        assert query(MODEL, "accepted(1)") == []

    def test_unsafe_query_rejected(self):
        with pytest.raises(SafetyError):
            query(MODEL, "not accepted(X)")

    def test_repeated_variable(self):
        model = compute_model(parse_program("e(1, 1). e(1, 2)."))
        assert query(model, "e(X, X)") == [(1,)]


class TestAsk:
    def test_yes(self):
        assert ask(MODEL, "rejected(X), late(X)")

    def test_no(self):
        assert not ask(MODEL, "accepted(X), late(X)")


class TestIterAnswers:
    def test_substitutions(self):
        from repro.datalog.terms import Variable

        answers = list(iter_answers(MODEL, "accepted(P)"))
        assert len(answers) == 1
        assert answers[0][Variable("P")] == 2


class TestAgainstEngines:
    def test_query_on_maintained_model(self):
        from repro import CascadeEngine

        engine = CascadeEngine(
            """
            submitted(1). submitted(2).
            rejected(X) :- not accepted(X), submitted(X).
            """
        )
        assert query(engine.model, "rejected(X)") == [(1,), (2,)]
        engine.insert_fact("accepted(1)")
        assert query(engine.model, "rejected(X)") == [(2,)]
