"""Unit tests for repro.datalog.parser."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.errors import ParseError
from repro.datalog.parser import (
    parse_atom,
    parse_clause,
    parse_fact,
    parse_program,
    tokenize,
)
from repro.datalog.terms import Variable


class TestTokenizer:
    def test_positions(self):
        tokens = list(tokenize("p(X).\nq :- r."))
        assert tokens[0].kind == "NAME" and tokens[0].line == 1
        q = [t for t in tokens if t.value == "q"][0]
        assert q.line == 2 and q.column == 1

    def test_comments_stripped(self):
        kinds = [t.kind for t in tokenize("% comment\np. # another\n")]
        assert kinds == ["NAME", "PERIOD"]

    def test_negative_integer(self):
        tokens = list(tokenize("p(-3)."))
        assert any(t.kind == "INTEGER" and t.value == -3 for t in tokens)

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            list(tokenize("p('oops)."))

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as exc:
            list(tokenize("p @ q."))
        assert "@" in str(exc.value)


class TestClauses:
    def test_fact(self):
        clause = parse_clause("edge(a, b).")
        assert clause.is_fact
        assert clause.head == Atom("edge", ("a", "b"))

    def test_propositional_fact(self):
        assert parse_clause("rain.").head == Atom("rain", ())

    def test_rule_with_negation(self):
        clause = parse_clause("p(X) :- q(X), not r(X).")
        assert clause.head.args == (Variable("X"),)
        assert [l.positive for l in clause.body] == [True, False]

    def test_alternative_arrow(self):
        assert parse_clause("p(X) <- q(X).") == parse_clause("p(X) :- q(X).")

    def test_alternative_negations(self):
        expected = parse_clause("p(X) :- q(X), not r(X).")
        assert parse_clause("p(X) :- q(X), \\+ r(X).") == expected
        assert parse_clause("p(X) :- q(X), ~r(X).") == expected

    def test_quoted_and_integer_constants(self):
        clause = parse_clause("likes('Big Apple', 42).")
        assert clause.head.args == ("Big Apple", 42)

    def test_escaped_quote(self):
        assert parse_clause(r"name('O\'Hara').").head.args == ("O'Hara",)

    def test_underscore_is_variable(self):
        clause = parse_clause("p(X) :- q(X, _other).")
        assert Variable("_other") in set(clause.body[0].variables())

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_clause("p(X) :- q(X)")

    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse_clause("p. q.")


class TestPrograms:
    def test_multi_clause(self):
        program = parse_program(
            """
            % the CONF database
            submitted(1). submitted(2).
            accepted(X) :- submitted(X), not rejected(X).
            """
        )
        assert len(program) == 3
        assert program.relations() == {"submitted", "accepted", "rejected"}

    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_unsafe_clause_rejected_at_program_level(self):
        with pytest.raises(Exception):
            parse_program("p(X) :- not q(X).")

    def test_roundtrip_through_str(self):
        source = "a(1).\nb(X) :- a(X), not c(X)."
        program = parse_program(source)
        assert parse_program(str(program)).clauses == program.clauses


class TestAtoms:
    def test_parse_atom(self):
        assert parse_atom("p(a, X)").args == ("a", Variable("X"))

    def test_parse_atom_rejects_trailing(self):
        with pytest.raises(ParseError):
            parse_atom("p(a) q")

    def test_parse_fact_rejects_variables(self):
        with pytest.raises(ParseError):
            parse_fact("p(X)")

    def test_parse_fact(self):
        assert parse_fact("p(1)") == Atom("p", (1,))


class TestPositions:
    SOURCE = "a(1).\nb(X) :- a(X),\n    not c(X).\nc(2)."

    def test_clause_positions(self):
        program = parse_program(self.SOURCE)
        lines = [clause.line for clause in program]
        assert lines == [1, 2, 4]
        assert all(clause.column == 1 for clause in program)

    def test_literal_positions(self):
        program = parse_program(self.SOURCE)
        rule = program.clauses[1]
        positive, negative = rule.body
        assert (positive.line, positive.column) == (2, 9)
        # The position of a negated literal is its atom's, past the `not`.
        assert (negative.line, negative.column) == (3, 9)

    def test_head_position_is_clause_position(self):
        program = parse_program(self.SOURCE)
        rule = program.clauses[1]
        assert (rule.head.line, rule.head.column) == (rule.line, rule.column)

    def test_positions_do_not_affect_identity(self):
        # Parsed and programmatically built atoms must interchange as
        # set/dict keys: position is provenance, not identity.
        parsed = parse_fact("p(1)")
        built = Atom("p", (1,))
        assert parsed == built
        assert hash(parsed) == hash(built)
        assert len({parsed, built}) == 1

    def test_parse_error_position(self):
        with pytest.raises(ParseError) as info:
            parse_program("a(1).\nb(X :- a(X).")
        assert info.value.line == 2
        assert info.value.code == "DL000"
