"""Unit tests for repro.core.supports (the support data structures)."""

from repro.core.supports import (
    FactRecord,
    PairSupport,
    PairedRecord,
    RuleRecord,
    SetOfSetsSupport,
    Signed,
    combine,
    expand_neg_element,
    expand_pos_element,
    pair_support_of_derivation,
    prune_to_minimal,
)
from repro.datalog.dependency import DependencyGraph, StaticDependencies
from repro.datalog.parser import parse_clause, parse_program


def statics_of(text: str) -> StaticDependencies:
    return StaticDependencies(DependencyGraph(parse_program(text)))


class TestSigned:
    def test_rendering(self):
        assert str(Signed("-", "rejected")) == "-rejected"
        assert str(Signed("+", "rejected")) == "+rejected"

    def test_distinct_from_plain(self):
        assert Signed("+", "r") != "r"
        assert {Signed("+", "r"), Signed("-", "r"), "r"} == {
            Signed("+", "r"),
            Signed("-", "r"),
            "r",
        }


class TestExpansion:
    def test_expand_neg_example2(self):
        # Example 2: Neg = {+p2} must expand to p2 and everything p2
        # positively depends on — in particular p0.
        statics = statics_of("p1 :- not p0. p2 :- not p1. p3 :- not p2.")
        expanded = expand_neg_element(frozenset({Signed("+", "p2")}), statics)
        assert "p2" in expanded and "p0" in expanded
        assert "p1" not in expanded  # odd parity from p2

    def test_expand_pos_uses_neg_closure(self):
        statics = statics_of("p1 :- not p0. p2 :- not p1.")
        expanded = expand_pos_element(frozenset({Signed("-", "p1")}), statics)
        assert expanded == {"p0"}

    def test_plain_entries_pass_through(self):
        statics = statics_of("p(X) :- q(X).")
        assert expand_pos_element(frozenset({"a", "b"}), statics) == {"a", "b"}


class TestPairSupport:
    def test_trivial(self):
        assert PairSupport.trivial().is_trivial()

    def test_pairwise_smaller_strict(self):
        small = PairSupport(frozenset({"a"}), frozenset())
        big = PairSupport(frozenset({"a", "b"}), frozenset({"c"}))
        assert small.pairwise_smaller(big)
        assert not big.pairwise_smaller(small)
        assert not small.pairwise_smaller(small)  # equality is not smaller

    def test_incomparable(self):
        left = PairSupport(frozenset({"a"}), frozenset())
        right = PairSupport(frozenset({"b"}), frozenset())
        assert not left.pairwise_smaller(right)
        assert not right.pairwise_smaller(left)

    def test_of_derivation(self):
        body = PairSupport(frozenset({"e"}), frozenset({Signed("+", "r")}))
        support = pair_support_of_derivation([body], ["q"], ["s"])
        assert support.pos == {"e", "q", Signed("-", "s")}
        assert support.neg == {Signed("+", "r"), Signed("+", "s")}

    def test_size(self):
        assert PairSupport(frozenset({"a", "b"}), frozenset({"c"})).size() == 3


class TestCombine:
    def test_neutral_element(self):
        assert combine([]) == {frozenset()}

    def test_cross_product_unions(self):
        b1 = {frozenset({"a"}), frozenset({"b"})}
        b2 = {frozenset({"c"})}
        assert combine([b1, b2]) == {
            frozenset({"a", "c"}),
            frozenset({"b", "c"}),
        }

    def test_duplicate_unions_collapse(self):
        b1 = {frozenset({"a"}), frozenset({"a", "b"})}
        b2 = {frozenset({"b"}), frozenset()}
        # unions: a∪b, a∪∅, ab∪b, ab∪∅ → {a,b} three times and {a} once
        assert combine([b1, b2]) == {frozenset({"a", "b"}), frozenset({"a"})}


class TestPruneToMinimal:
    def test_supersets_removed(self):
        pruned = prune_to_minimal(
            {frozenset({"a"}), frozenset({"a", "b"}), frozenset({"c"})}
        )
        assert pruned == {frozenset({"a"}), frozenset({"c"})}

    def test_empty_set_dominates(self):
        pruned = prune_to_minimal({frozenset(), frozenset({"a"})})
        assert pruned == {frozenset()}

    def test_antichain_untouched(self):
        antichain = {frozenset({"a"}), frozenset({"b"})}
        assert prune_to_minimal(set(antichain)) == antichain

    def test_matches_naive_reference(self):
        import random

        rng = random.Random(42)
        universe = [f"r{i}" for i in range(12)]
        for _ in range(200):
            elements = {
                frozenset(rng.sample(universe, rng.randint(0, 5)))
                for _ in range(rng.randint(1, 20))
            }
            expected = {
                element
                for element in elements
                if not any(
                    other < element for other in elements
                )
            }
            assert prune_to_minimal(set(elements)) == expected

    def test_wide_disjoint_antichain_stays_fast(self):
        # Regression: the old implementation compared every pair —
        # quadratic on wide support sets even when nothing dominates
        # anything. With entry-bucketed candidates a disjoint antichain
        # costs one empty bucket probe per entry.
        import time

        wide = {frozenset({f"r{i}"}) for i in range(4000)}
        started = time.perf_counter()
        pruned = prune_to_minimal(set(wide))
        elapsed = time.perf_counter() - started
        assert pruned == wide
        assert elapsed < 1.0, f"pruning 4000 disjoint singletons took {elapsed:.2f}s"


class TestSetOfSetsSupport:
    def test_trivial_contains_empty(self):
        support = SetOfSetsSupport.trivial()
        assert frozenset() in support.pos and frozenset() in support.neg

    def test_add_deduction_with_pruning(self):
        support = SetOfSetsSupport()
        support.add_deduction(frozenset({"a", "b"}), frozenset({"x"}), True)
        support.add_deduction(frozenset({"a"}), frozenset({"x", "y"}), True)
        assert support.pos == {frozenset({"a"})}
        assert support.neg == {frozenset({"x"})}

    def test_size(self):
        support = SetOfSetsSupport(
            {frozenset({"a"})}, {frozenset({"x", "y"})}
        )
        assert support.size() == 5


class TestRecords:
    def test_rule_record_from_clause(self):
        record = RuleRecord.of_rule(
            parse_clause("a(X) :- s(X), t(X), not r(X).")
        )
        assert record.positive_relations == {"s", "t"}
        assert record.negated_relations == {"r"}

    def test_assertion_record(self):
        record = RuleRecord.assertion()
        assert record.rule is None
        assert not record.positive_relations and not record.negated_relations

    def test_paired_record_trivial(self):
        assert PairedRecord.trivial().size() == 1

    def test_fact_record_size(self):
        from repro.datalog.atoms import fact

        record = FactRecord(
            parse_clause("a(X) :- s(X), not r(X)."),
            frozenset({fact("s", 1)}),
            frozenset({fact("r", 1)}),
        )
        assert record.size() == 3
