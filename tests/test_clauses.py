"""Unit tests for repro.datalog.clauses."""

import pytest

from repro.datalog.atoms import Atom, atom, neg, pos
from repro.datalog.clauses import Clause, Program, rule
from repro.datalog.errors import SafetyError
from repro.datalog.terms import Variable

X = Variable("X")
Y = Variable("Y")


class TestClause:
    def test_fact_detection(self):
        assert Clause(Atom("p", (1,))).is_fact
        assert not Clause(Atom("p", (X,)), (pos("q", X),)).is_fact

    def test_body_partition(self):
        c = rule(atom("p", X), pos("q", X), neg("r", X), pos("s", X))
        assert [l.relation for l in c.positive_body] == ["q", "s"]
        assert [l.relation for l in c.negative_body] == ["r"]

    def test_body_relations_signed(self):
        c = rule(atom("p", X), pos("q", X), neg("r", X))
        assert list(c.body_relations()) == [("q", True), ("r", False)]

    def test_str_roundtrip_shape(self):
        c = rule(atom("p", X), pos("q", X), neg("r", X))
        assert str(c) == "p(X) :- q(X), not r(X)."
        assert str(Clause(atom("p", 1))) == "p(1)."

    def test_equality(self):
        a = rule(atom("p", X), pos("q", X))
        b = rule(atom("p", X), pos("q", X))
        assert a == b and hash(a) == hash(b)


class TestSafety:
    def test_unbound_head_variable(self):
        with pytest.raises(SafetyError):
            rule(atom("p", X, Y), pos("q", X)).check_safety()

    def test_unbound_negative_variable(self):
        with pytest.raises(SafetyError):
            rule(atom("p", X), pos("q", X), neg("r", Y)).check_safety()

    def test_negative_literal_cannot_bind(self):
        with pytest.raises(SafetyError):
            rule(atom("p", X), neg("q", X)).check_safety()

    def test_ground_negative_literal_is_safe(self):
        rule(atom("p", X), pos("q", X), neg("r", 1)).check_safety()

    def test_bodiless_clause_must_be_ground(self):
        with pytest.raises(SafetyError):
            Clause(atom("p", X)).check_safety()


class TestProgram:
    def _program(self):
        return Program(
            [
                Clause(atom("e", 1)),
                Clause(atom("e", 2)),
                rule(atom("p", X), pos("e", X)),
                rule(atom("q", X), pos("p", X), neg("r", X)),
            ]
        )

    def test_deduplication(self):
        program = Program()
        assert program.add(Clause(atom("e", 1)))
        assert not program.add(Clause(atom("e", 1)))
        assert len(program) == 1

    def test_add_checks_safety(self):
        with pytest.raises(SafetyError):
            Program().add(rule(atom("p", X)))

    def test_remove(self):
        program = self._program()
        assert program.remove(Clause(atom("e", 1)))
        assert not program.remove(Clause(atom("e", 1)))
        assert len(program) == 3

    def test_facts_and_rules(self):
        program = self._program()
        assert {str(f) for f in program.facts} == {"e(1)", "e(2)"}
        assert len(program.rules) == 2

    def test_relations(self):
        assert self._program().relations() == {"e", "p", "q", "r"}

    def test_definitions(self):
        defs = self._program().definitions()
        assert len(defs["e"]) == 2
        assert len(defs["p"]) == 1
        assert defs["r"] == ()

    def test_extensional_vs_intensional(self):
        program = self._program()
        # r is mentioned only in a body: extensional with no facts yet.
        assert program.extensional_relations() == {"e", "r"}
        assert program.intensional_relations() == {"p", "q"}

    def test_copy_is_independent(self):
        program = self._program()
        dup = program.copy()
        dup.remove(Clause(atom("e", 1)))
        assert len(program) == 4 and len(dup) == 3

    def test_iteration_preserves_insertion_order(self):
        program = self._program()
        heads = [clause.head.relation for clause in program]
        assert heads == ["e", "e", "p", "q"]
