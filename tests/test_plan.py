"""The join planner (repro.datalog.plan).

Four layers:

* unit tests for compilation, statistics-driven ordering, the delta-first
  pin, cost-based delta-position choice, and plan caching/invalidation
  (bounded LRU eviction with pinned engine rule plans);
* regressions for the unbound-variable sentinel: ``None`` is a legal
  constant and must join like any other value (it used to read as
  "unbound" and silently corrupt joins);
* regressions for the plan cache: a full cache used to be *cleared*,
  wiping the hot engine rule plans the moment ad-hoc probes pushed past
  ``MAX_PLANS``;
* the differential harness: on every workload in :mod:`repro.workloads`,
  and for every estimator/probe-path configuration, the planned executor
  must produce the exact model *and* the exact derivation set of the
  naive left-to-right evaluator.
"""

import pytest

from repro.core.registry import create_engine
from repro.datalog.atoms import Atom
from repro.datalog.builder import ProgramBuilder
from repro.datalog.evaluation import (
    compute_model,
    iter_derivations,
    semi_naive_saturate,
)
from repro.datalog.model import Model
from repro.datalog.parser import parse_clause
from repro.datalog.plan import Planner
from repro.workloads import (
    access_control,
    bill_of_materials,
    cascade_example,
    conf,
    congress,
    generate,
    meet,
    negation_chain,
    pods,
    reachability,
    review_pipeline,
    staleness_counterexample,
)


def star_join_model(big_rows=60, buckets=6, probes=2):
    """big/2 joined against a tiny probe/1 — selectivity ordering bait."""
    model = Model()
    for i in range(big_rows):
        model.add(Atom("big", (i % buckets, i)))
    for i in range(probes):
        model.add(Atom("probe", (i,)))
    return model


STAR_RULE = parse_clause("hit(Y) :- big(X, Y), probe(X).")


class TestOrdering:
    def test_small_relation_drives_the_join(self):
        model = star_join_model()
        plan = Planner().plan_for(STAR_RULE)
        # probe (2 rows) must run before big (60 rows)
        assert plan.order_for(model) == (1, 0)

    def test_left_to_right_when_reorder_disabled(self):
        model = star_join_model()
        plan = Planner(reorder=False).plan_for(STAR_RULE)
        assert plan.order_for(model, reorder=False) == (0, 1)

    def test_delta_literal_pinned_first(self):
        model = star_join_model()
        plan = Planner().plan_for(STAR_RULE)
        # even though big is larger, the increment drives the join
        assert plan.order_for(model, delta_position=0)[0] == 0

    def test_bound_columns_discount_cardinality(self):
        # path(Y, Z) binds nothing at first but shares Y with edge(X, Y):
        # after edge is placed, path becomes cheaper than its raw count.
        clause = parse_clause("p(X, Z) :- edge(X, Y), path(Y, Z).")
        model = Model()
        for i in range(5):
            model.add(Atom("edge", (i, i + 1)))
        for i in range(30):
            model.add(Atom("path", (i % 6, i)))
        plan = Planner().plan_for(clause)
        assert plan.order_for(model) == (0, 1)

    def test_facts_reported_in_original_body_order(self):
        model = star_join_model()
        for derivation in iter_derivations(STAR_RULE, model):
            assert derivation.positive_facts[0].relation == "big"
            assert derivation.positive_facts[1].relation == "probe"

    def test_statistics_see_through_skew_where_heuristic_cannot(self):
        # seed(K), hay(K, V), pin(V, W): hay is large with only two
        # distinct keys (a bound K barely narrows it), pin is small. The
        # flat tenfold discount rates hay at 1000*0.1 == pin's 100 and
        # keeps the written order; real distinct counts rate hay at
        # 1000/2 = 500 and drive through pin first.
        clause = parse_clause("out(W) :- seed(K), hay(K, V), pin(V, W).")
        model = Model()
        model.add(Atom("seed", (0,)))
        model.add(Atom("seed", (1,)))
        for i in range(1000):
            model.add(Atom("hay", (i % 2, i)))
        for i in range(100):
            model.add(Atom("pin", (i, i)))
        plan = Planner().plan_for(clause)
        assert plan.order_for(model, estimator="stats") == (0, 2, 1)
        assert plan.order_for(model, estimator="heuristic") == (0, 1, 2)

    def test_estimate_firing_prefers_selective_driver(self):
        model = star_join_model(big_rows=60, buckets=6, probes=2)
        plan = Planner().plan_for(STAR_RULE)
        # driving from a 2-row delta on probe is cheaper than from a
        # 60-row delta on big
        cheap = plan.estimate_firing(model, 1, 2)
        costly = plan.estimate_firing(model, 0, 60)
        assert cheap < costly

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ValueError):
            Planner(estimator="vibes")


class TestPlannedResults:
    def test_star_join_matches_left_to_right(self):
        model_a = star_join_model()
        model_b = star_join_model()
        added_planned = semi_naive_saturate([STAR_RULE], model_a)
        added_ltr = semi_naive_saturate(
            [STAR_RULE], model_b, planner=Planner(reorder=False)
        )
        assert added_planned == added_ltr
        assert model_a == model_b

    def test_exclusions_keyed_by_original_position(self):
        model = star_join_model(big_rows=6, buckets=2, probes=2)
        excluded = {0: {(0, 0)}}  # remove one big row, whatever the order
        heads = {
            d.head
            for d in iter_derivations(STAR_RULE, model, exclude=excluded)
        }
        assert Atom("hit", (0,)) not in heads
        assert Atom("hit", (2,)) in heads

    def test_repeated_variable_across_and_within_literals(self):
        clause = parse_clause("q(X) :- p(X, X), r(X).")
        model = Model()
        model.add(Atom("p", ("a", "a")))
        model.add(Atom("p", ("a", "b")))
        model.add(Atom("r", ("a",)))
        model.add(Atom("r", ("b",)))
        heads = {d.head for d in iter_derivations(clause, model)}
        assert heads == {Atom("q", ("a",))}


class TestPlanCache:
    def test_plans_are_cached_per_clause(self):
        planner = Planner()
        assert planner.plan_for(STAR_RULE) is planner.plan_for(STAR_RULE)

    def test_invalidate_drops_the_plan(self):
        planner = Planner()
        plan = planner.plan_for(STAR_RULE)
        planner.invalidate(STAR_RULE)
        assert planner.plan_for(STAR_RULE) is not plan

    def test_fact_clauses_are_not_cached(self):
        # A large fact base must not evict the hot rule plans.
        planner = Planner()
        fact_clause = parse_clause("f(1).")
        planner.plan_for(fact_clause)
        assert len(planner) == 0
        planner.plan_for(STAR_RULE)
        assert len(planner) == 1

    def test_engine_rule_updates_invalidate_engine_planner(self):
        engine = create_engine("cascade", "base(1). base(2).")
        rule = parse_clause("derived(X) :- base(X).")
        engine.insert_rule(rule)
        plan = engine.planner.plan_for(rule)
        engine.delete_rule(rule)
        assert engine.planner.plan_for(rule) is not plan

    def test_support_templates_built_once_per_plan(self):
        planner = Planner()
        plan = planner.plan_for(STAR_RULE)
        calls = []

        def factory(clause):
            calls.append(clause)
            return ("template", clause.head.relation)

        first = plan.support_template("probe", factory)
        second = plan.support_template("probe", factory)
        assert first is second
        assert calls == [STAR_RULE]


def _adhoc_clauses(count):
    return [
        parse_clause(f"q{i}(X) :- adhoc{i}(X), filter{i}(X).")
        for i in range(count)
    ]


class TestCacheEviction:
    """A full cache used to be cleared wholesale — ISSUE 4."""

    def test_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(Planner, "MAX_PLANS", 4)
        planner = Planner()
        for clause in _adhoc_clauses(10):
            planner.plan_for(clause)
        assert len(planner) == 4

    def test_eviction_is_lru_not_wipeout(self, monkeypatch):
        monkeypatch.setattr(Planner, "MAX_PLANS", 4)
        planner = Planner()
        clauses = _adhoc_clauses(5)
        plans = [planner.plan_for(clause) for clause in clauses[:4]]
        # touch the oldest so it is the most recent, then overflow
        assert planner.plan_for(clauses[0]) is plans[0]
        planner.plan_for(clauses[4])
        assert planner.plan_for(clauses[0]) is plans[0]  # survived
        assert planner.plan_for(clauses[1]) is not plans[1]  # evicted

    def test_pinned_plans_survive_cache_pressure(self, monkeypatch):
        monkeypatch.setattr(Planner, "MAX_PLANS", 4)
        planner = Planner()
        pinned = planner.pin(STAR_RULE)
        for clause in _adhoc_clauses(20):
            planner.plan_for(clause)
        assert planner.plan_for(STAR_RULE) is pinned
        planner.invalidate(STAR_RULE)  # rule deletion unpins and drops
        assert planner.plan_for(STAR_RULE) is not pinned

    def test_sync_pins_releases_stale_pins(self):
        planner = Planner()
        old = parse_clause("old(X) :- e(X).")
        new = parse_clause("new(X) :- e(X).")
        planner.pin(old)
        planner.sync_pins([new])
        assert planner.pinned_count() == 1
        assert planner.plan_for(new) is planner.pin(new)

    def test_load_state_does_not_leak_pins(self):
        # Transaction rollback and snapshot restore go through load_state;
        # rules dropped by the restored program must lose their pins or
        # the planner leaks one unevictable plan per replaced rule.
        engine = create_engine("cascade", "e(1). r(X) :- e(X).")
        state = engine.state_dict()
        engine.insert_rule("s(X) :- e(X).")
        assert engine.planner.pinned_count() == 2
        for _ in range(5):
            engine.load_state(state)
        assert engine.planner.pinned_count() == 1
        assert engine.is_consistent()

    def test_engine_rule_plans_survive_cache_pressure(self, monkeypatch):
        # The regression: ad-hoc probes past MAX_PLANS used to clear the
        # engine planner, wiping every hot rule plan and its compiled
        # orders.
        monkeypatch.setattr(Planner, "MAX_PLANS", 8)
        engine = create_engine(
            "cascade",
            "e(1). e(2). r(X) :- e(X). s(X) :- r(X), e(X).",
        )
        rule_plans = {
            rule: engine.planner.plan_for(rule)
            for rule in engine.db.program.rules
        }
        for clause in _adhoc_clauses(30):
            engine.planner.plan_for(clause)
        for rule, plan in rule_plans.items():
            assert engine.planner.plan_for(rule) is plan
        assert len(engine.planner) <= 8 + len(rule_plans)
        # and the engine still maintains correctly under pressure
        engine.insert_fact("e(3)")
        assert engine.is_consistent()


class TestNoneConstantRegressions:
    """``None`` used to mean "unbound" inside the join — ISSUE 3."""

    def test_none_does_not_join_with_other_constants(self):
        # p(None). r(a). q(X) :- p(X), r(X).  must derive nothing.
        builder = ProgramBuilder()
        builder.fact("p", None)
        builder.fact("r", "a")
        builder.rule("q", ("X",)).pos("p", "X").pos("r", "X")
        program = builder.build()
        for method in ("naive", "seminaive"):
            model = compute_model(program, method=method)
            assert model.count_of("q") == 0, method

    def test_none_joins_with_none(self):
        builder = ProgramBuilder()
        builder.fact("p", None)
        builder.fact("r", None)
        builder.rule("q", ("X",)).pos("p", "X").pos("r", "X")
        model = compute_model(builder.build())
        assert model.contains("q", (None,))

    def test_none_respects_repeated_variables(self):
        builder = ProgramBuilder()
        builder.fact("p", None, "a")
        builder.fact("p", None, None)
        builder.rule("q", ("X",)).pos("p", "X", "X")
        model = compute_model(builder.build())
        assert set(model.facts_of("q")) == {Atom("q", (None,))}

    def test_none_through_the_delta_mechanism(self):
        # The incremental path (delta rows, engine updates) must treat
        # None the same way as the from-scratch path.
        builder = ProgramBuilder()
        builder.fact("r", "a")
        builder.rule("q", ("X",)).pos("p", "X").pos("r", "X")
        engine = create_engine("cascade", builder.build())
        engine.insert_fact(Atom("p", (None,)))
        assert engine.model.count_of("q") == 0
        assert engine.is_consistent()
        engine.insert_fact(Atom("r", (None,)))
        assert engine.model.contains("q", (None,))
        engine.delete_fact(Atom("p", (None,)))
        assert engine.model.count_of("q") == 0
        assert engine.is_consistent()


class TestDeltaPositionChoice:
    """Cost-based ordering and dominated-position skipping — ISSUE 4."""

    def _setup(self):
        from repro.datalog.evaluation import _choose_delta_positions

        clause = parse_clause("t(X, Z) :- e(X, Y), e(Y, Z).")
        planner = Planner()
        plan = planner.plan_for(clause)
        return _choose_delta_positions, clause, plan, planner

    def test_fully_covered_positions_skip_dominated_firings(self):
        choose, clause, plan, planner = self._setup()
        model = Model()
        rows = {(1, 2), (2, 3)}
        for row in rows:
            model.add(Atom("e", row))
        # the whole relation arrived this round: both positions covered,
        # only the last firing can match (earlier ones are restricted to
        # an empty pre-round content)
        ordered, first_live = choose(
            plan, model, clause, [0, 1], {"e": set(rows)}, planner
        )
        assert sorted(ordered) == [0, 1]
        assert first_live == 1

    def test_partial_delta_fires_every_position(self):
        choose, clause, plan, planner = self._setup()
        model = Model()
        for i in range(5):
            model.add(Atom("e", (i, i + 1)))
        ordered, first_live = choose(
            plan, model, clause, [0, 1], {"e": {(0, 1)}}, planner
        )
        assert sorted(ordered) == [0, 1]
        assert first_live == 0

    def test_reorder_false_keeps_enumeration_order(self):
        choose, clause, plan, _ = self._setup()
        planner = Planner(reorder=False)
        model = Model()
        model.add(Atom("e", (1, 2)))
        ordered, first_live = choose(
            plan, model, clause, [0, 1], {"e": {(1, 2)}}, planner
        )
        assert ordered == [0, 1]
        assert first_live == 0

    def test_recursive_closure_exact_when_relation_fully_new(self):
        # End to end: inserting the very first facts of a relation makes
        # every delta round fully covered; the skip must not lose
        # derivations.
        rules = [parse_clause("t(X, Y) :- e(X, Y)."),
                 parse_clause("t(X, Z) :- t(X, Y), t(Y, Z).")]
        chain = [Atom("e", (i, i + 1)) for i in range(6)]

        def run(planner):
            model = Model()
            for atom in chain:
                model.add(atom)
            derivations = set()
            semi_naive_saturate(
                rules, model,
                lambda d, is_new, plan: derivations.add(d),
                planner=planner,
            )
            return model.as_set(), derivations

        assert run(Planner()) == run(Planner(reorder=False))


def _model_and_derivations(program, method, planner):
    derivations = set()

    def listener(derivation, is_new, plan):
        derivations.add(derivation)

    model = compute_model(
        program, method=method, listener=listener, planner=planner
    )
    return model, derivations


WORKLOADS = {
    "pods": pods,
    "conf": conf,
    "congress": congress,
    "meet": meet,
    "negation_chain": negation_chain,
    "cascade_example": cascade_example,
    "staleness_counterexample": staleness_counterexample,
    "review_pipeline": review_pipeline,
    "reachability": reachability,
    "bill_of_materials": bill_of_materials,
    "access_control": access_control,
    "synthetic_0": lambda: generate(0).program,
    "synthetic_1": lambda: generate(1).program,
    "synthetic_2": lambda: generate(2).program,
}


PLANNER_CONFIGS = {
    "stats": lambda: Planner(),
    "stats_intersect": lambda: Planner(composite=False),
    "heuristic": lambda: Planner(estimator="heuristic"),
    # per-candidate exclusion filtering (the pre-bulk-pipeline baseline
    # of the materialized restricted deltas, experiment E18c)
    "no_materialize": lambda: Planner(materialize_deltas=False),
}


class TestDifferentialHarness:
    """Planned execution == naive left-to-right on every workload,
    whatever the estimator and probe path."""

    @pytest.mark.parametrize("config", sorted(PLANNER_CONFIGS))
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_models_and_derivation_sets_identical(self, name, config):
        program = WORKLOADS[name]()
        baseline_model, baseline_derivations = _model_and_derivations(
            program, "naive", Planner(reorder=False)
        )
        for method in ("naive", "seminaive"):
            model, derivations = _model_and_derivations(
                program, method, PLANNER_CONFIGS[config]()
            )
            assert model == baseline_model, (name, method, config)
            assert derivations == baseline_derivations, (name, method, config)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_maintained_engines_stay_consistent(self, name):
        # The planner also runs under every engine's incremental paths;
        # spot-check the cascade engine end-to-end per workload.
        program = WORKLOADS[name]()
        engine = create_engine("cascade", program)
        assert engine.is_consistent(), name
