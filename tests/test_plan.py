"""The join planner (repro.datalog.plan).

Three layers:

* unit tests for compilation, selectivity ordering, the delta-first pin,
  and plan caching/invalidation;
* regressions for the unbound-variable sentinel: ``None`` is a legal
  constant and must join like any other value (it used to read as
  "unbound" and silently corrupt joins);
* the differential harness: on every workload in :mod:`repro.workloads`
  the planned executor must produce the exact model *and* the exact
  derivation set of the naive left-to-right evaluator.
"""

import pytest

from repro.core.registry import create_engine
from repro.datalog.atoms import Atom
from repro.datalog.builder import ProgramBuilder
from repro.datalog.evaluation import (
    compute_model,
    iter_derivations,
    semi_naive_saturate,
)
from repro.datalog.model import Model
from repro.datalog.parser import parse_clause
from repro.datalog.plan import Planner
from repro.workloads import (
    access_control,
    bill_of_materials,
    cascade_example,
    conf,
    congress,
    generate,
    meet,
    negation_chain,
    pods,
    reachability,
    review_pipeline,
    staleness_counterexample,
)


def star_join_model(big_rows=60, buckets=6, probes=2):
    """big/2 joined against a tiny probe/1 — selectivity ordering bait."""
    model = Model()
    for i in range(big_rows):
        model.add(Atom("big", (i % buckets, i)))
    for i in range(probes):
        model.add(Atom("probe", (i,)))
    return model


STAR_RULE = parse_clause("hit(Y) :- big(X, Y), probe(X).")


class TestOrdering:
    def test_small_relation_drives_the_join(self):
        model = star_join_model()
        plan = Planner().plan_for(STAR_RULE)
        # probe (2 rows) must run before big (60 rows)
        assert plan.order_for(model) == (1, 0)

    def test_left_to_right_when_reorder_disabled(self):
        model = star_join_model()
        plan = Planner(reorder=False).plan_for(STAR_RULE)
        assert plan.order_for(model, reorder=False) == (0, 1)

    def test_delta_literal_pinned_first(self):
        model = star_join_model()
        plan = Planner().plan_for(STAR_RULE)
        # even though big is larger, the increment drives the join
        assert plan.order_for(model, delta_position=0)[0] == 0

    def test_bound_columns_discount_cardinality(self):
        # path(Y, Z) binds nothing at first but shares Y with edge(X, Y):
        # after edge is placed, path becomes cheaper than its raw count.
        clause = parse_clause("p(X, Z) :- edge(X, Y), path(Y, Z).")
        model = Model()
        for i in range(5):
            model.add(Atom("edge", (i, i + 1)))
        for i in range(30):
            model.add(Atom("path", (i % 6, i)))
        plan = Planner().plan_for(clause)
        assert plan.order_for(model) == (0, 1)

    def test_facts_reported_in_original_body_order(self):
        model = star_join_model()
        for derivation in iter_derivations(STAR_RULE, model):
            assert derivation.positive_facts[0].relation == "big"
            assert derivation.positive_facts[1].relation == "probe"


class TestPlannedResults:
    def test_star_join_matches_left_to_right(self):
        model_a = star_join_model()
        model_b = star_join_model()
        added_planned = semi_naive_saturate([STAR_RULE], model_a)
        added_ltr = semi_naive_saturate(
            [STAR_RULE], model_b, planner=Planner(reorder=False)
        )
        assert added_planned == added_ltr
        assert model_a == model_b

    def test_exclusions_keyed_by_original_position(self):
        model = star_join_model(big_rows=6, buckets=2, probes=2)
        excluded = {0: {(0, 0)}}  # remove one big row, whatever the order
        heads = {
            d.head
            for d in iter_derivations(STAR_RULE, model, exclude=excluded)
        }
        assert Atom("hit", (0,)) not in heads
        assert Atom("hit", (2,)) in heads

    def test_repeated_variable_across_and_within_literals(self):
        clause = parse_clause("q(X) :- p(X, X), r(X).")
        model = Model()
        model.add(Atom("p", ("a", "a")))
        model.add(Atom("p", ("a", "b")))
        model.add(Atom("r", ("a",)))
        model.add(Atom("r", ("b",)))
        heads = {d.head for d in iter_derivations(clause, model)}
        assert heads == {Atom("q", ("a",))}


class TestPlanCache:
    def test_plans_are_cached_per_clause(self):
        planner = Planner()
        assert planner.plan_for(STAR_RULE) is planner.plan_for(STAR_RULE)

    def test_invalidate_drops_the_plan(self):
        planner = Planner()
        plan = planner.plan_for(STAR_RULE)
        planner.invalidate(STAR_RULE)
        assert planner.plan_for(STAR_RULE) is not plan

    def test_fact_clauses_are_not_cached(self):
        # A large fact base must not evict the hot rule plans.
        planner = Planner()
        fact_clause = parse_clause("f(1).")
        planner.plan_for(fact_clause)
        assert len(planner) == 0
        planner.plan_for(STAR_RULE)
        assert len(planner) == 1

    def test_engine_rule_updates_invalidate_engine_planner(self):
        engine = create_engine("cascade", "base(1). base(2).")
        rule = parse_clause("derived(X) :- base(X).")
        engine.insert_rule(rule)
        plan = engine.planner.plan_for(rule)
        engine.delete_rule(rule)
        assert engine.planner.plan_for(rule) is not plan


class TestNoneConstantRegressions:
    """``None`` used to mean "unbound" inside the join — ISSUE 3."""

    def test_none_does_not_join_with_other_constants(self):
        # p(None). r(a). q(X) :- p(X), r(X).  must derive nothing.
        builder = ProgramBuilder()
        builder.fact("p", None)
        builder.fact("r", "a")
        builder.rule("q", ("X",)).pos("p", "X").pos("r", "X")
        program = builder.build()
        for method in ("naive", "seminaive"):
            model = compute_model(program, method=method)
            assert model.count_of("q") == 0, method

    def test_none_joins_with_none(self):
        builder = ProgramBuilder()
        builder.fact("p", None)
        builder.fact("r", None)
        builder.rule("q", ("X",)).pos("p", "X").pos("r", "X")
        model = compute_model(builder.build())
        assert model.contains("q", (None,))

    def test_none_respects_repeated_variables(self):
        builder = ProgramBuilder()
        builder.fact("p", None, "a")
        builder.fact("p", None, None)
        builder.rule("q", ("X",)).pos("p", "X", "X")
        model = compute_model(builder.build())
        assert set(model.facts_of("q")) == {Atom("q", (None,))}

    def test_none_through_the_delta_mechanism(self):
        # The incremental path (delta rows, engine updates) must treat
        # None the same way as the from-scratch path.
        builder = ProgramBuilder()
        builder.fact("r", "a")
        builder.rule("q", ("X",)).pos("p", "X").pos("r", "X")
        engine = create_engine("cascade", builder.build())
        engine.insert_fact(Atom("p", (None,)))
        assert engine.model.count_of("q") == 0
        assert engine.is_consistent()
        engine.insert_fact(Atom("r", (None,)))
        assert engine.model.contains("q", (None,))
        engine.delete_fact(Atom("p", (None,)))
        assert engine.model.count_of("q") == 0
        assert engine.is_consistent()


def _model_and_derivations(program, method, planner):
    derivations = set()

    def listener(derivation, is_new):
        derivations.add(derivation)

    model = compute_model(
        program, method=method, listener=listener, planner=planner
    )
    return model, derivations


WORKLOADS = {
    "pods": pods,
    "conf": conf,
    "congress": congress,
    "meet": meet,
    "negation_chain": negation_chain,
    "cascade_example": cascade_example,
    "staleness_counterexample": staleness_counterexample,
    "review_pipeline": review_pipeline,
    "reachability": reachability,
    "bill_of_materials": bill_of_materials,
    "access_control": access_control,
    "synthetic_0": lambda: generate(0).program,
    "synthetic_1": lambda: generate(1).program,
    "synthetic_2": lambda: generate(2).program,
}


class TestDifferentialHarness:
    """Planned execution == naive left-to-right on every workload."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_models_and_derivation_sets_identical(self, name):
        program = WORKLOADS[name]()
        baseline_model, baseline_derivations = _model_and_derivations(
            program, "naive", Planner(reorder=False)
        )
        for method in ("naive", "seminaive"):
            model, derivations = _model_and_derivations(
                program, method, Planner()
            )
            assert model == baseline_model, (name, method)
            assert derivations == baseline_derivations, (name, method)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_maintained_engines_stay_consistent(self, name):
        # The planner also runs under every engine's incremental paths;
        # spot-check the cascade engine end-to-end per workload.
        program = WORKLOADS[name]()
        engine = create_engine("cascade", program)
        assert engine.is_consistent(), name
