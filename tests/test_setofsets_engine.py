"""Tests for the sets-of-sets solution of section 4.3."""

import pytest

from repro.core.setofsets_engine import SetOfSetsEngine
from repro.datalog.atoms import fact
from repro.workloads.paper import (
    meet,
    negation_chain,
    pods,
    staleness_counterexample,
)


class TestSupportConstruction:
    def test_asserted_fact_has_empty_set_element(self):
        engine = SetOfSetsEngine(pods(l=3, accepted=(2,)))
        support = engine.support_of(fact("accepted", 2))
        assert frozenset() in support.pos
        assert frozenset() in support.neg

    def test_meet_keeps_both_deductions(self):
        engine = SetOfSetsEngine(meet(l=3))
        support = engine.support_of(fact("accepted", 1))
        # Pos = {{submitted, -rejected}, {author, in_program_committee}}
        assert len(support.pos) == 2
        assert frozenset({"author", "in_program_committee"}) in support.pos
        # Neg = {{+rejected}, ∅}
        assert frozenset() in support.neg

    def test_paired_mode_keeps_linked_records(self):
        engine = SetOfSetsEngine(meet(l=3), mode="paired")
        records = engine.records_of(fact("accepted", 1))
        assert len(records) == 2

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SetOfSetsEngine(pods(), mode="bogus")


class TestExample4:
    def test_pc_paper_does_not_migrate(self):
        engine = SetOfSetsEngine(meet(l=3))
        result = engine.insert_fact("rejected(1)")
        assert fact("accepted", 1) not in result.removed
        assert engine.is_consistent()

    def test_non_pc_papers_still_migrate(self):
        engine = SetOfSetsEngine(meet(l=3))
        result = engine.insert_fact("rejected(2)")
        # accepted(3) has only the default deduction: relation-level eviction
        assert fact("accepted", 3) in result.migrated
        assert engine.is_consistent()

    def test_paired_mode_same_single_update_behaviour(self):
        engine = SetOfSetsEngine(meet(l=3), mode="paired")
        result = engine.insert_fact("rejected(1)")
        assert fact("accepted", 1) not in result.removed
        assert engine.is_consistent()


class TestChain:
    def test_chain_insert(self):
        for mode in ("paper", "paired"):
            engine = SetOfSetsEngine(negation_chain(4), mode=mode)
            engine.insert_fact("p0")
            assert engine.is_consistent(), mode


class TestStalenessAnomaly:
    """DESIGN.md faithfulness note 1: the printed 4.3 is unsound across
    update sequences; the paired variant restores soundness."""

    def test_paper_mode_retains_underivable_fact(self):
        engine = SetOfSetsEngine(staleness_counterexample(), mode="paper")
        engine.insert_fact("d")   # kills deduction b :- c, not d (Neg side)
        engine.delete_fact("a")   # kills deduction b :- a (Pos side)
        # The stale Pos element {c, -d} keeps b although it is underivable.
        assert fact("b") in engine.model
        assert not engine.is_consistent()

    def test_paper_mode_single_update_is_correct(self):
        # Lemma 2's actual scope: one update on a freshly built model.
        engine = SetOfSetsEngine(staleness_counterexample(), mode="paper")
        engine.insert_fact("d")
        assert engine.is_consistent()
        engine2 = SetOfSetsEngine(staleness_counterexample(), mode="paper")
        engine2.delete_fact("a")
        assert engine2.is_consistent()

    def test_paired_mode_is_sound_across_the_sequence(self):
        engine = SetOfSetsEngine(staleness_counterexample(), mode="paired")
        engine.insert_fact("d")
        engine.delete_fact("a")
        assert fact("b") not in engine.model
        assert engine.is_consistent()

    def test_rebuild_repairs_paper_mode(self):
        engine = SetOfSetsEngine(staleness_counterexample(), mode="paper")
        engine.insert_fact("d")
        engine.delete_fact("a")
        engine.rebuild()
        assert engine.is_consistent()


class TestPruning:
    def test_pruning_keeps_minimal_elements(self):
        program = """
        e(1).
        a(X) :- e(X).
        b(X) :- a(X), e(X).
        b(X) :- e(X).
        """
        engine = SetOfSetsEngine(program, prune=True)
        support = engine.support_of(fact("b", 1))
        assert support.pos == {frozenset({"e"})}

    def test_without_pruning_all_elements_kept(self):
        program = """
        e(1).
        a(X) :- e(X).
        b(X) :- a(X), e(X).
        b(X) :- e(X).
        """
        engine = SetOfSetsEngine(program, prune=False)
        support = engine.support_of(fact("b", 1))
        assert frozenset({"e"}) in support.pos
        assert frozenset({"a", "e"}) in support.pos


class TestRuleUpdates:
    def test_insert_and_delete_rule(self):
        engine = SetOfSetsEngine(pods(l=4, accepted=(2,)))
        engine.insert_rule("maybe(X) :- submitted(X), not accepted(X).")
        assert engine.is_consistent()
        engine.delete_rule("maybe(X) :- submitted(X), not accepted(X).")
        assert engine.model.count_of("maybe") == 0
        assert engine.is_consistent()
