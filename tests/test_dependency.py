"""Unit tests for repro.datalog.dependency."""

from repro.datalog.dependency import DependencyGraph, StaticDependencies
from repro.datalog.parser import parse_program


def graph_of(text: str) -> DependencyGraph:
    return DependencyGraph(parse_program(text))


class TestArcs:
    def test_arc_direction_and_signs(self):
        g = graph_of("p(X) :- q(X), not r(X).")
        assert g.arc("p", "q").positive and not g.arc("p", "q").negative
        assert g.arc("p", "r").negative and not g.arc("p", "r").positive
        assert g.arc("q", "p") is None

    def test_arc_can_be_both_signs(self):
        g = graph_of("p(X) :- q(X). p(X) :- s(X), not q(X).")
        arc = g.arc("p", "q")
        assert arc.positive and arc.negative

    def test_successors_predecessors(self):
        g = graph_of("p(X) :- q(X), not r(X).")
        assert g.successors("p") == {"q", "r"}
        assert g.predecessors("q") == {"p"}
        assert g.predecessors("p") == frozenset()


class TestSccs:
    def test_mutual_recursion_single_component(self):
        g = graph_of("p(X) :- q(X). q(X) :- p(X). p(X) :- e(X).")
        components = [c for c in g.sccs() if len(c) > 1]
        assert components == [frozenset({"p", "q"})]

    def test_topological_order_dependencies_first(self):
        g = graph_of("p(X) :- q(X). q(X) :- e(X).")
        order = {min(c): i for i, c in enumerate(g.sccs())}
        assert order["e"] < order["q"] < order["p"]

    def test_deep_chain_no_recursion_limit(self):
        rules = "\n".join(f"p{i}(X) :- p{i-1}(X)." for i in range(1, 3000))
        g = graph_of(rules)
        assert len(g.sccs()) == 3000


class TestStratifiability:
    def test_stratified_program(self):
        assert graph_of("p(X) :- q(X), not r(X). r(X) :- e(X).").is_stratified()

    def test_negation_in_cycle_detected(self):
        g = graph_of("p(X) :- e(X), not q(X). q(X) :- e(X), p(X).")
        arc = g.negative_arc_in_cycle()
        assert arc is not None and arc.negative

    def test_positive_cycle_is_fine(self):
        assert graph_of("p(X) :- q(X). q(X) :- p(X).").is_stratified()

    def test_self_negation_detected(self):
        g = graph_of("p(X) :- e(X), not p(X).")
        assert not g.is_stratified()


class TestPosNegSets:
    def test_reflexive_pos(self):
        # Pos(p) contains p itself: the empty path has even parity. The
        # fact-deletion procedure of section 4.1 depends on this.
        g = graph_of("p(X) :- q(X).")
        pos, neg = g.pos_neg_sets("p")
        assert "p" in pos

    def test_parity(self):
        g = graph_of("p1 :- not p0. p2 :- not p1. p3 :- not p2.")
        pos, neg = g.pos_neg_sets("p3")
        assert pos == {"p3", "p1"}
        assert neg == {"p2", "p0"}

    def test_pos_and_neg_can_overlap(self):
        g = graph_of("p(X) :- q(X). p(X) :- s(X), not q(X).")
        pos, neg = g.pos_neg_sets("p")
        assert "q" in pos and "q" in neg

    def test_unknown_relation_still_reflexive(self):
        # A relation whose defining rules were all deleted leaves the graph
        # but must keep p ∈ Pos(p), or rule deletion misses its own facts.
        g = graph_of("p(X) :- q(X).")
        pos, neg = g.pos_neg_sets("zzz")
        assert pos == frozenset({"zzz"}) and neg == frozenset()

    def test_paper_conf_example(self):
        g = graph_of("accepted(X) :- submitted(X), not rejected(X).")
        pos, neg = g.pos_neg_sets("accepted")
        assert pos == {"accepted", "submitted"}
        assert neg == {"rejected"}


class TestDependents:
    def test_dependents_transitive(self):
        g = graph_of("p(X) :- q(X). q(X) :- r(X).")
        assert g.dependents_of("r") == {"r", "q", "p"}

    def test_depends_on_transitive(self):
        g = graph_of("p(X) :- q(X). q(X) :- r(X).")
        assert g.depends_on("p") == {"p", "q", "r"}


class TestStaticDependenciesCache:
    def test_cached_lookup(self):
        g = graph_of("p(X) :- q(X), not r(X).")
        statics = StaticDependencies(g)
        assert statics.neg("p") == {"r"}
        assert statics.pos("p") == {"p", "q"}

    def test_invalidate_recomputes(self):
        g = graph_of("p(X) :- q(X).")
        statics = StaticDependencies(g)
        assert statics.pos("p") == {"p", "q"}
        g.add_clause(parse_program("p(X) :- s(X).").clauses[0])
        statics.invalidate(["p"])
        assert statics.pos("p") == {"p", "q", "s"}

    def test_rebase_clears_everything(self):
        g = graph_of("p(X) :- q(X).")
        statics = StaticDependencies(g)
        statics.pos("p")
        statics.rebase(graph_of("p(X) :- z(X)."))
        assert statics.pos("p") == {"p", "z"}
