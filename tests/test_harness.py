"""Tests for the benchmark harness."""

from repro.bench.harness import RUN_HEADERS, compare_engines, run_sequence
from repro.bench.reporting import format_table
from repro.core.recompute import RecomputeEngine
from repro.datalog.atoms import fact
from repro.workloads.paper import pods


class TestRunSequence:
    def test_aggregates(self):
        engine = RecomputeEngine(pods(l=4, accepted=(2,)))
        run = run_sequence(
            engine,
            [("insert_fact", fact("accepted", 1)),
             ("delete_fact", fact("accepted", 1))],
            verify=True,
        )
        assert run.updates == 2
        assert run.consistent
        assert len(run.results) == 2

    def test_divergence_detection(self):
        from repro.core.dynamic_engine import DynamicEngine
        from repro.workloads.paper import negation_chain

        engine = DynamicEngine(negation_chain(3), signed_statics=False)
        run = run_sequence(
            engine, [("insert_fact", fact("p0"))], verify=True
        )
        assert not run.consistent
        assert run.divergences == 1


class TestCompareEngines:
    def test_transient_column_is_reported(self):
        runs = compare_engines(
            pods(l=4, accepted=(2,)),
            [("insert_fact", fact("accepted", 1))],
            ["cascade"],
        )
        run = runs[0]
        position = RUN_HEADERS.index("transient")
        assert run.row()[position] == run.transient

    def test_rows_align_with_headers(self):
        runs = compare_engines(
            pods(l=4, accepted=(2,)),
            [("insert_fact", fact("accepted", 1))],
            ["recompute", "cascade"],
        )
        for run in runs:
            assert len(run.row()) == len(RUN_HEADERS)

    def test_engines_start_from_independent_copies(self):
        program = pods(l=4, accepted=(2,))
        compare_engines(
            program,
            [("insert_fact", fact("accepted", 1))],
            ["recompute", "cascade"],
        )
        # the source program must be untouched
        assert fact("accepted", 1) not in {
            clause.head for clause in program if not clause.body
        }


class TestReporting:
    def test_format_table(self):
        table = format_table(
            ["name", "n"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert lines[-1].startswith("bb")

    def test_float_rendering(self):
        table = format_table(["x"], [[0.123456]])
        assert "0.1235" in table
