"""Unit tests for repro.core.arena — interned columnar support storage.

The arena is a pure runtime representation: every test here checks either
an internal invariant (interning, copy-on-write isolation, canonical
renumbering) or round-trip equality with the record-object forms the rest
of the test suite pins down.
"""

import json

from repro.core import create_engine
from repro.core.arena import (
    ASSERTION,
    Arena,
    ArenaFactRecords,
    ArenaPairedRecords,
    ArenaRuleRecords,
    ArenaSosSupports,
    EMPTY_ELEMENT,
    SupportTable,
    canonical_parts,
    from_canonical_parts,
)
from repro.core.supports import (
    FactRecord,
    PairedRecord,
    RuleRecord,
    SetOfSetsSupport,
    Signed,
)
from repro.datalog.atoms import fact
from repro.datalog.parser import parse_clause, parse_program
from repro.store.serialize import (
    decode_compact,
    dumps,
    encode_compact_tabled,
    loads,
)

RULE = parse_clause("p(X) :- q(X), not r(X).")
OTHER_RULE = parse_clause("p(X) :- s(X).")


class TestInterning:
    def test_atoms_intern_to_stable_slots(self):
        arena = Arena()
        a = arena.intern_atom(fact("q", 1))
        b = arena.intern_atom(fact("q", 2))
        assert a != b
        assert arena.intern_atom(fact("q", 1)) == a
        assert arena.atom_of(a) == fact("q", 1)
        assert arena.atom_id(fact("q", 2)) == b
        assert arena.atom_id(fact("q", 3)) is None

    def test_sentinel_slots(self):
        arena = Arena()
        # slot 0 of each table is pre-interned: no rule, the empty
        # element, and the assertion/trivial record.
        assert arena.intern_rule(None) == 0
        assert arena.intern_element(frozenset()) == EMPTY_ELEMENT
        assert (
            arena.intern_fact_record(0, frozenset(), frozenset())
            == ASSERTION
        )
        assert arena.intern_rule_record(None) == ASSERTION
        assert (
            arena.intern_paired_record(EMPTY_ELEMENT, EMPTY_ELEMENT)
            == ASSERTION
        )

    def test_fact_records_dedupe(self):
        arena = Arena()
        rule = arena.intern_rule(RULE)
        body = frozenset({arena.intern_atom(fact("q", 1))})
        first = arena.intern_fact_record(rule, body, frozenset())
        assert arena.intern_fact_record(rule, body, frozenset()) == first
        decoded = arena.decode_fact_record(first)
        assert decoded == FactRecord(
            RULE, frozenset({fact("q", 1)}), frozenset()
        )

    def test_elements_union_in_id_space(self):
        arena = Arena()
        left = arena.intern_element_entries({"q", Signed("-", "r")})
        right = arena.intern_element_entries({"s"})
        union = arena.union_elements((left, right))
        assert arena.decode_element(union) == frozenset(
            {"q", "s", Signed("-", "r")}
        )
        # ∅ is the neutral element
        assert arena.union_elements((left, EMPTY_ELEMENT)) == left


class TestSupportTable:
    def test_copy_isolation_both_directions(self):
        table = SupportTable()
        table.replace(1, {10, 11})
        table.replace(2, {20})
        dup = table.copy()
        table.add(1, 12)
        dup.discard(2, 20)
        assert table.get(1) == {10, 11, 12}
        assert dup.get(1) == {10, 11}
        assert table.get(2) == {20}
        assert not dup.get(2)

    def test_copy_stays_reusable(self):
        table = SupportTable()
        table.replace(1, {10})
        frozen = table.copy()
        table.pop(1)
        table.replace(3, {30})
        assert frozen.get(1) == {10}
        assert frozen.get(3) is None
        again = frozen.copy()
        again.add(1, 11)
        assert frozen.get(1) == {10}

    def test_discard_many_and_len(self):
        table = SupportTable()
        table.replace(1, {10, 11, 12})
        table.discard_many(1, {10, 12})
        assert table.get(1) == {11}
        assert len(table) == 1
        assert 1 in table and 2 not in table


class TestPruning:
    def test_prune_element_ids_matches_record_form(self):
        arena = Arena()
        a = arena.intern_element_entries({"a"})
        ab = arena.intern_element_entries({"a", "b"})
        c = arena.intern_element_entries({"c"})
        assert arena.prune_element_ids({a, ab, c}) == {a, c}
        assert arena.prune_element_ids({EMPTY_ELEMENT, a}) == {
            EMPTY_ELEMENT
        }

    def test_prune_paired_ids_dominates_on_both_sides(self):
        arena = Arena()
        small = arena.intern_paired_record(
            arena.intern_element_entries({"a"}),
            arena.intern_element_entries({Signed("+", "r")}),
        )
        bigger = arena.intern_paired_record(
            arena.intern_element_entries({"a", "b"}),
            arena.intern_element_entries({Signed("+", "r")}),
        )
        crossed = arena.intern_paired_record(
            arena.intern_element_entries({"a", "b"}),
            arena.intern_element_entries({Signed("+", "s")}),
        )
        # bigger is dominated by small; crossed is incomparable (its neg
        # side differs) and must survive.
        assert arena.prune_paired_ids({small, bigger, crossed}) == {
            small,
            crossed,
        }
        assert arena.prune_paired_ids({ASSERTION, small}) == {ASSERTION}


def _sample_fact_state() -> ArenaFactRecords:
    records = {
        fact("p", 1): {
            FactRecord(RULE, frozenset({fact("q", 1)}), frozenset()),
            FactRecord.assertion(),
        },
        fact("q", 1): {FactRecord.assertion()},
    }
    return ArenaFactRecords.from_records(records)


class TestCanonicalParts:
    def test_round_trip_every_kind(self):
        states = [
            _sample_fact_state(),
            ArenaRuleRecords.from_records(
                {
                    fact("p", 1): {
                        RuleRecord.of_rule(RULE),
                        RuleRecord.assertion(),
                    }
                }
            ),
            ArenaPairedRecords.from_records(
                {
                    fact("p", 1): {
                        PairedRecord(
                            frozenset({"q", Signed("-", "r")}),
                            frozenset({Signed("+", "r")}),
                        ),
                        PairedRecord.trivial(),
                    }
                }
            ),
            ArenaSosSupports.from_records(
                {
                    fact("p", 1): SetOfSetsSupport(
                        {frozenset({"q"})}, {frozenset({Signed("+", "r")})}
                    )
                }
            ),
        ]
        for state in states:
            parts = canonical_parts(state)
            rebuilt = from_canonical_parts(
                parts.kind,
                parts.atoms,
                parts.rules,
                parts.entries,
                parts.elements,
                parts.records,
                parts.table,
            )
            assert rebuilt.to_record_state() == state.to_record_state()

    def test_canonical_image_drops_garbage(self):
        # Records superseded during the session stay in the append-only
        # arena but must not reach the snapshot.
        arena = Arena()
        table = SupportTable()
        stale = arena.intern_fact_record(
            arena.intern_rule(OTHER_RULE),
            frozenset({arena.intern_atom(fact("s", 9))}),
            frozenset(),
        )
        live = arena.intern_fact_record(
            arena.intern_rule(RULE),
            frozenset({arena.intern_atom(fact("q", 1))}),
            frozenset(),
        )
        table.replace(arena.intern_atom(fact("p", 1)), {live})
        parts = canonical_parts(ArenaFactRecords(arena, table))
        assert fact("s", 9) not in parts.atoms
        assert OTHER_RULE not in parts.rules
        assert stale != live  # sanity: the stale slot existed

    def test_slot_order_does_not_change_bytes(self):
        # Two arenas that grew in different orders hold the same state;
        # their canonical encodings must be byte-identical.
        records = _sample_fact_state().to_record_state()
        reordered = dict(reversed(list(records.items())))
        one = encode_compact_tabled(ArenaFactRecords.from_records(records))
        two = encode_compact_tabled(
            ArenaFactRecords.from_records(reordered)
        )
        assert json.dumps(one, sort_keys=True) == json.dumps(
            two, sort_keys=True
        )


class TestSerialization:
    def test_compact_round_trip(self):
        state = _sample_fact_state()
        payload = encode_compact_tabled({"records": state})
        decoded = decode_compact(
            json.loads(json.dumps(payload, sort_keys=True))
        )
        rebuilt = decoded["records"]
        assert isinstance(rebuilt, ArenaFactRecords)
        assert rebuilt.to_record_state() == state.to_record_state()

    def test_dumps_expands_to_record_bytes(self):
        # The v1/object codec has no arena notion: an arena-backed state
        # and its record expansion must serialize to the same bytes, and
        # load back as the plain record mapping.
        state = _sample_fact_state()
        assert dumps({"records": state}) == dumps(
            {"records": state.to_record_state()}
        )
        assert loads(dumps({"records": state})) == {
            "records": state.to_record_state()
        }

    def test_live_arena_encodes_like_rebuilt(self):
        # Snapshot encode reads the live intern tables; the bytes must not
        # depend on the arena's private growth history.
        program = parse_program(
            """
            q(1). q(2). r(2).
            p(X) :- q(X), not r(X).
            """
        )
        engine = create_engine("factlevel", program)
        engine.apply("insert_fact", fact("r", 1))
        engine.apply("delete_fact", fact("r", 1))
        live = engine._support_state()["records"]
        rebuilt = ArenaFactRecords.from_records(live.to_record_state())
        assert json.dumps(
            encode_compact_tabled(live), sort_keys=True
        ) == json.dumps(encode_compact_tabled(rebuilt), sort_keys=True)


class TestEngineIntegration:
    PROGRAM = parse_program(
        """
        q(1). q(2). r(2). s(3).
        p(X) :- q(X), not r(X).
        p(X) :- s(X).
        """
    )

    def test_cross_mode_state_load(self):
        for name in (
            "factlevel",
            "cascade",
            "cascade-paper",
            "setofsets",
            "setofsets-paired",
        ):
            source = create_engine(name, self.PROGRAM)
            source.apply("insert_fact", fact("r", 1))
            state = source.state_dict()
            target = create_engine(name, self.PROGRAM, arena=False)
            target.load_state(state)
            assert target.model == source.model
            assert (
                target.support_entry_count()
                == source.support_entry_count()
            )
            # and back: a record-mode state loads into an arena engine
            back = create_engine(name, self.PROGRAM)
            back.load_state(target.state_dict())
            assert back.model == source.model
            assert (
                back.support_entry_count() == source.support_entry_count()
            )

    def test_checkpoint_restore_is_reusable(self):
        for name in ("factlevel", "cascade", "setofsets-paired"):
            engine = create_engine(name, self.PROGRAM)
            checkpoint = engine.checkpoint()
            model_before = engine.model.as_set()
            count_before = engine.support_entry_count()
            for _ in range(2):
                engine.apply("insert_fact", fact("r", 1))
                engine.apply("delete_fact", fact("q", 2))
                engine.restore(checkpoint)
                assert engine.model.as_set() == model_before
                assert engine.support_entry_count() == count_before
            # the restored engine keeps revising correctly
            engine.apply("insert_fact", fact("r", 1))
            record = create_engine(name, self.PROGRAM, arena=False)
            record.apply("insert_fact", fact("r", 1))
            assert engine.model == record.model

    def test_record_mode_flag_disables_arena(self):
        engine = create_engine("factlevel", self.PROGRAM, arena=False)
        assert engine.arena is False
        assert len(engine._table) == 0  # record dicts hold the state
        assert engine.records_of(fact("p", 3))
