"""Tests for denial integrity constraints and transactions."""

import pytest

from repro.constraints import (
    Constraint,
    ConstraintSet,
    ConstraintViolation,
    Transaction,
)
from repro.core.cascade_engine import CascadeEngine
from repro.datalog.atoms import fact
from repro.datalog.errors import SafetyError
from repro.datalog.model import Model
from repro.workloads.paper import pods


class TestConstraint:
    def test_parse_denial_syntax(self):
        constraint = Constraint.parse(":- accepted(X), rejected(X).")
        assert len(constraint.body) == 2

    def test_violations_found(self):
        constraint = Constraint.parse(":- accepted(X), rejected(X).")
        model = Model([fact("accepted", 1), fact("rejected", 1)])
        assert not constraint.is_satisfied(model)

    def test_no_violation(self):
        constraint = Constraint.parse(":- accepted(X), rejected(X).")
        model = Model([fact("accepted", 1), fact("rejected", 2)])
        assert constraint.is_satisfied(model)

    def test_negative_literal(self):
        constraint = Constraint.parse(":- accepted(X), not submitted(X).")
        model = Model([fact("accepted", 1)])
        assert not constraint.is_satisfied(model)
        model.add(fact("submitted", 1))
        assert constraint.is_satisfied(model)

    def test_unsafe_constraint_rejected(self):
        with pytest.raises(SafetyError):
            Constraint.parse(":- not ghost(X).")

    def test_witness_substitution(self):
        constraint = Constraint.parse(":- accepted(X), rejected(X).")
        model = Model([fact("accepted", 7), fact("rejected", 7)])
        [witness] = list(constraint.violations(model))
        assert list(witness.values()) == [7]


class TestConstraintSet:
    def test_check_collects_all(self):
        constraints = ConstraintSet(
            [":- accepted(X), rejected(X).", ":- late(X), accepted(X)."]
        )
        model = Model(
            [fact("accepted", 1), fact("rejected", 1), fact("late", 1)]
        )
        report = constraints.check(model)
        assert not report.ok
        assert len(report.violations) == 2

    def test_report_raise(self):
        constraints = ConstraintSet([":- bad(X)."])
        report = constraints.check(Model([fact("bad", 1)]))
        with pytest.raises(ConstraintViolation):
            report.first_or_raise()


class TestTransaction:
    CONSTRAINT = ":- accepted(X), rejected(X)."

    def _engine(self):
        # no deriving rule for accepted: assertions only, so the denial can
        # actually be violated
        return CascadeEngine(
            "submitted(1). submitted(2). accepted(1). rejected(2)."
        )

    def test_commit_when_satisfied(self):
        engine = self._engine()
        with Transaction(engine, [self.CONSTRAINT]) as txn:
            txn.insert_fact("accepted(3)")
        assert fact("accepted", 3) in engine.model

    def test_rollback_on_violation(self):
        engine = self._engine()
        before = engine.model.as_set()
        with pytest.raises(ConstraintViolation):
            with Transaction(engine, [self.CONSTRAINT]) as txn:
                txn.insert_fact("rejected(1)")  # accepted(1) & rejected(1)
        assert engine.model.as_set() == before
        assert engine.is_consistent()

    def test_rollback_restores_program(self):
        engine = self._engine()
        with pytest.raises(ConstraintViolation):
            with Transaction(engine, [self.CONSTRAINT]) as txn:
                txn.insert_fact("accepted(9)")
                txn.insert_fact("rejected(9)")
        assert not engine.db.is_asserted(fact("accepted", 9))

    def test_exception_inside_transaction_rolls_back(self):
        engine = self._engine()
        before = engine.model.as_set()
        with pytest.raises(RuntimeError):
            with Transaction(engine, [self.CONSTRAINT]) as txn:
                txn.insert_fact("accepted(5)")
                raise RuntimeError("boom")
        assert engine.model.as_set() == before

    def test_batch_of_updates(self):
        engine = self._engine()
        with Transaction(engine, [self.CONSTRAINT]) as txn:
            txn.insert_fact("submitted(3)")
            txn.insert_fact("accepted(3)")
            txn.delete_fact("rejected(2)")
        assert len(txn.results) == 3
        assert engine.is_consistent()

    def test_maintenance_interacts_with_constraints(self):
        # Deriving rule + constraint: the *maintained* model is what gets
        # checked — the point of the explicit representation. Inserting
        # late(2) derives nothing, but accepted(2) is asserted, so the
        # denial ":- accepted(X), late(X)." fires on the maintained state.
        engine = CascadeEngine(pods(l=3, accepted=(2,)))
        before = engine.model.as_set()
        with pytest.raises(ConstraintViolation):
            with Transaction(engine, [":- accepted(X), late(X)."]) as txn:
                txn.insert_fact("late(2)")
        assert engine.model.as_set() == before
        assert engine.is_consistent()
