"""Regressions found by the rule-update property sweep.

Rule deletions interact badly with self-supporting records in two ways the
per-stratum sweeps cannot see:

1. deleting a relation's *last* rule removes it from the dependency graph
   and hence from every stratum, so no later sweep ever visits its facts;
2. deleting the productive rule of a relation that also has a (direct or
   mutual) recursive rule leaves its facts holding only circular records.

Both engines with per-fact record stores (cascade, factlevel) handle these
explicitly; the section 4 engines are immune because they evict the head
relation's facts wholesale. Each scenario is pinned here for every engine.
"""

import pytest

from repro.core.registry import SOUND_ENGINE_NAMES, create_engine
from repro.datalog.atoms import fact

SELF_LOOP = "e(1). p(X) :- p(X). p(X) :- e(X), not q(X)."
MUTUAL = """
spark(1).
on(X) :- spark(X).
on(X) :- relay(X).
relay(X) :- on(X).
"""
ENGINES = [name for name in SOUND_ENGINE_NAMES if name != "recompute"]


class TestVanishedRelation:
    """Deleting a relation's last rule must still evict its derived facts."""

    @pytest.mark.parametrize("name", ENGINES)
    def test_facts_die_with_the_last_rule(self, name):
        engine = create_engine(name, SELF_LOOP)
        engine.delete_rule("p(X) :- p(X).")
        engine.delete_rule("p(X) :- e(X), not q(X).")
        assert fact("p", 1) not in engine.model, name
        assert engine.is_consistent(), name

    @pytest.mark.parametrize("name", ENGINES)
    def test_relation_can_come_back(self, name):
        engine = create_engine(name, SELF_LOOP)
        engine.delete_rule("p(X) :- p(X).")
        engine.delete_rule("p(X) :- e(X), not q(X).")
        engine.insert_rule("p(X) :- e(X).")
        assert fact("p", 1) in engine.model, name
        assert engine.is_consistent(), name


class TestSelfSupportedLeftover:
    """A fact must not survive on its own recursive record alone."""

    @pytest.mark.parametrize("name", ENGINES)
    def test_self_loop_rule_cannot_sustain_facts(self, name):
        engine = create_engine(name, SELF_LOOP)
        engine.delete_rule("p(X) :- e(X), not q(X).")
        assert fact("p", 1) not in engine.model, name
        assert engine.is_consistent(), name

    @pytest.mark.parametrize("name", ENGINES)
    def test_mutual_cycle_dies_with_its_rule(self, name):
        engine = create_engine(name, MUTUAL)
        engine.delete_rule("on(X) :- spark(X).")
        assert fact("on", 1) not in engine.model, name
        assert fact("relay", 1) not in engine.model, name
        assert engine.is_consistent(), name


class TestStaleRecordAcrossRestratification:
    """Found by the soak sweep (synthetic seed 24, reduced).

    Deleting a rule can merge a derived relation into its body's stratum;
    a fact deletion then evicts the body fact in the same stratum pass
    that kills records, so a record citing it goes stale. When the rule
    comes back (restratifying again), the stale record must neither count
    as grounded (its body fact is gone) nor sustain a cycle.
    """

    PROGRAM = """
    e(0, 7). e(7, 7). one(7, 7).
    a(Y) :- b(X, Y).
    b(Y, Y) :- e(X, Y).
    b(X, X) :- a(X), one(X, X).
    """
    MUTUAL_RULE = "b(X, X) :- a(X), one(X, X)."

    @pytest.mark.parametrize("name", ENGINES)
    def test_sequence_stays_sound(self, name):
        engine = create_engine(name, self.PROGRAM)
        engine.delete_rule(self.MUTUAL_RULE)   # b drops to e's stratum
        engine.delete_fact("e(7, 7)")          # same-stratum body death
        engine.insert_rule(self.MUTUAL_RULE)   # cycle restored
        engine.delete_fact("e(0, 7)")          # last external support gone
        assert fact("a", 7) not in engine.model, name
        assert fact("b", 7, 7) not in engine.model, name
        assert engine.is_consistent(), name

    def test_no_stale_record_survives_its_body_fact(self):
        engine = create_engine("factlevel", self.PROGRAM)
        engine.delete_rule(self.MUTUAL_RULE)
        engine.delete_fact("e(7, 7)")
        records = engine.records_of(fact("b", 7, 7))
        cited = {
            body for record in records for body in record.positive_facts
        }
        assert fact("e", 7, 7) not in cited


class TestAssertionWasTheExternalSupport:
    """Deleting an asserted fact that anchored a positive cycle."""

    @pytest.mark.parametrize("name", ENGINES)
    def test_cycle_dies_with_the_assertion(self, name):
        engine = create_engine(
            name, "on(1). relay(X) :- on(X). on(X) :- relay(X)."
        )
        engine.delete_fact("on(1)")
        assert fact("on", 1) not in engine.model, name
        assert fact("relay", 1) not in engine.model, name
        assert engine.is_consistent(), name

    @pytest.mark.parametrize("name", ENGINES)
    def test_cycle_survives_other_deletions(self, name):
        engine = create_engine(
            name,
            "on(1). decoy(5). relay(X) :- on(X). on(X) :- relay(X).",
        )
        engine.delete_fact("decoy(5)")
        assert fact("relay", 1) in engine.model, name
        assert engine.is_consistent(), name
