"""Tests for the stratified-database ↔ TMS bridge (experiment E13)."""

from repro.datalog.atoms import fact
from repro.datalog.evaluation import compute_model
from repro.datalog.parser import parse_program
from repro.tms.bridge import (
    absent,
    ground_instances,
    model_context,
    positive_envelope,
    standard_model_via_jtms,
    to_atms,
    to_jtms,
)
from repro.workloads.paper import cascade_example, meet, negation_chain, pods


class TestGrounding:
    def test_envelope_is_superset_of_model(self):
        program = pods(l=4, accepted=(2,))
        envelope = positive_envelope(program)
        model = compute_model(program)
        assert model.as_set() <= envelope.as_set()

    def test_instances_cover_all_firing_rules(self):
        program = parse_program("e(1). e(2). p(X) :- e(X), not q(X).")
        heads = {g.head for g in ground_instances(program) if g.clause.body}
        assert heads == {fact("p", 1), fact("p", 2)}

    def test_negative_atoms_ground(self):
        program = parse_program("e(1). p(X) :- e(X), not q(X).")
        [instance] = [g for g in ground_instances(program) if g.clause.body]
        assert instance.negative_atoms == (fact("q", 1),)


class TestJtmsEquivalence:
    def test_on_all_paper_examples(self):
        for program in (
            pods(l=5, accepted=(2, 4)),
            negation_chain(5),
            cascade_example(),
            meet(l=3),
        ):
            assert standard_model_via_jtms(program) == compute_model(
                program
            ).as_set()

    def test_after_an_update(self):
        program = pods(l=4, accepted=(2,))
        jtms = to_jtms(program)
        # Re-ground after the update: insert accepted(1) as a premise.
        jtms.premise(fact("accepted", 1))
        assert jtms.is_out(fact("rejected", 1))
        assert jtms.is_in(fact("accepted", 1))

    def test_source_string_accepted(self):
        assert standard_model_via_jtms("p :- not q.") == {fact("p")}


class TestAtmsCorrespondence:
    def test_label_is_the_fact_level_support(self):
        atms = to_atms(meet(l=3))
        label = atms.label(fact("accepted", 1))
        assert len(label) == 2
        assert frozenset(
            {fact("author", "name2", 1), fact("in_program_committee", "name2")}
        ) in label
        assert frozenset(
            {fact("submitted", 1), absent(fact("rejected", 1))}
        ) in label

    def test_model_context_reproduces_standard_model(self):
        program = pods(l=4, accepted=(2,))
        atms = to_atms(program)
        environment = model_context(atms, program)
        atoms_in_context = {
            node for node in atms.context(environment) if hasattr(node, "relation")
        }
        assert atoms_in_context == compute_model(program).as_set()

    def test_asserted_present_and_absent_is_nogood(self):
        program = parse_program("e(1). p(X) :- e(X), not e2(X). e2(1).")
        atms = to_atms(program)
        assert atms.is_nogood({fact("e2", 1), absent(fact("e2", 1))})
