"""Unit tests for repro.datalog.unify."""

import pytest

from repro.datalog.atoms import Atom, atom
from repro.datalog.terms import Variable
from repro.datalog.unify import (
    ground_atom,
    match_atom,
    match_tuple,
    substitute,
    substitute_args,
)

X = Variable("X")
Y = Variable("Y")


class TestMatchTuple:
    def test_binds_fresh_variables(self):
        subst = {}
        assert match_tuple((X, Y), ("a", "b"), subst)
        assert subst == {X: "a", Y: "b"}

    def test_respects_existing_bindings(self):
        subst = {X: "a"}
        assert match_tuple((X,), ("a",), subst)
        assert not match_tuple((X,), ("b",), dict(subst))

    def test_repeated_variable_must_agree(self):
        assert match_tuple((X, X), ("a", "a"), {})
        assert not match_tuple((X, X), ("a", "b"), {})

    def test_constants_compared(self):
        assert match_tuple(("a", 1), ("a", 1), {})
        assert not match_tuple(("a",), ("b",), {})

    def test_none_is_a_legal_constant(self):
        # Regression (ISSUE 3): a binding to None used to read as
        # "unbound", letting a repeated variable rebind to anything.
        subst = {}
        assert match_tuple((X,), (None,), subst)
        assert subst == {X: None}
        assert not match_tuple((X, X), (None, "a"), {})
        assert match_tuple((X, X), (None, None), {})
        assert not match_tuple((X,), ("a",), {X: None})
        assert not match_tuple((None,), ("a",), {})
        assert match_tuple((None,), (None,), {})


class TestMatchAtom:
    def test_relation_must_agree(self):
        assert match_atom(atom("p", X), Atom("q", ("a",))) is None

    def test_arity_must_agree(self):
        assert match_atom(atom("p", X), Atom("p", ("a", "b"))) is None

    def test_returns_new_dict(self):
        base = {Y: "c"}
        result = match_atom(atom("p", X), Atom("p", ("a",)), base)
        assert result == {Y: "c", X: "a"}
        assert base == {Y: "c"}

    def test_failure_returns_none(self):
        assert match_atom(atom("p", X, X), Atom("p", ("a", "b"))) is None


class TestSubstitution:
    def test_substitute_args_partial(self):
        assert substitute_args((X, Y, 1), {X: "a"}) == ("a", Y, 1)

    def test_substitute_atom(self):
        assert substitute(atom("p", X), {X: 5}) == Atom("p", (5,))

    def test_ground_atom_success(self):
        assert ground_atom(atom("p", X), {X: 1}).is_ground()

    def test_ground_atom_failure(self):
        with pytest.raises(ValueError) as exc:
            ground_atom(atom("p", X, Y), {X: 1})
        assert "Y" in str(exc.value)
