"""Tests for the cascade solution of section 5.1."""

import pytest

from repro.core.cascade_engine import CascadeEngine
from repro.core.supports import RuleRecord
from repro.datalog.atoms import fact
from repro.workloads.paper import cascade_example, meet, negation_chain, pods


class TestRulePointerSupports:
    def test_records_are_rule_pointers(self):
        engine = CascadeEngine(pods(l=3, accepted=(2,)))
        records = engine.records_of(fact("rejected", 1))
        assert len(records) == 1
        [record] = records
        assert record.rule is not None
        assert record.positive_relations == {"submitted"}
        assert record.negated_relations == {"accepted"}

    def test_asserted_fact_has_assertion_record(self):
        engine = CascadeEngine(pods(l=3, accepted=(2,)))
        assert RuleRecord.assertion() in engine.records_of(fact("accepted", 2))

    def test_one_record_per_rule_not_per_instantiation(self):
        # Section 5.2: "all facts produced in one delta are deduced by the
        # same rule, so the resulting update of their supports is the same"
        engine = CascadeEngine(meet(l=5))
        for i in range(2, 6):
            assert len(engine.records_of(fact("accepted", i))) == 1


class TestSection51Example:
    def test_saturate_first_never_removes_q(self):
        engine = CascadeEngine(cascade_example(), order="saturate_first")
        result = engine.insert_fact("p")
        assert fact("q") not in result.removed
        assert not result.migrated
        assert engine.is_consistent()

    def test_paper_order_migrates_q(self):
        engine = CascadeEngine(cascade_example(), order="paper")
        result = engine.insert_fact("p")
        assert fact("q") in result.removed
        assert fact("q") in result.migrated
        assert engine.is_consistent()

    def test_delete_p_afterwards(self):
        for order in ("saturate_first", "paper"):
            engine = CascadeEngine(cascade_example(), order=order)
            engine.insert_fact("p")
            engine.delete_fact("p")
            assert engine.model.as_set() == {fact("q")}
            assert engine.is_consistent(), order

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            CascadeEngine(cascade_example(), order="bogus")


class TestCascadeEffect:
    def test_chain_cascades_through_strata(self):
        engine = CascadeEngine(negation_chain(6))
        result = engine.insert_fact("p0")
        assert engine.model.as_set() == {
            fact("p0"),
            fact("p2"),
            fact("p4"),
            fact("p6"),
        }
        assert engine.is_consistent()
        # each flipped chain member appears exactly once in the net change
        assert result.net_removed == {fact("p1"), fact("p3"), fact("p5")}

    def test_skip_strata_gives_same_result(self):
        for skip in (True, False):
            engine = CascadeEngine(negation_chain(6), skip_strata=skip)
            engine.insert_fact("p0")
            assert engine.is_consistent(), f"skip_strata={skip}"

    def test_delete_fact_with_remaining_deduction_is_local(self):
        # q :- r and q :- not p… use: asserted fact also derivable by rule.
        program = """
        e(1).
        q(X) :- e(X).
        q(1).
        """
        engine = CascadeEngine(program)
        result = engine.delete_fact("q(1)")
        assert fact("q", 1) in engine.model  # the rule still derives it
        assert not result.removed and not result.added
        assert engine.is_consistent()


class TestRecursiveClusterGuard:
    """One-level relation supports are not well-founded under recursion;
    the engine rebuilds a touched recursive cluster (DESIGN.md)."""

    RECURSIVE = """
    base(1).
    blocker(9).
    seed(X) :- base(X), not blocker(X).
    chain(X, X) :- seed(X).
    chain(X, Y) :- chain(Y, X).
    """

    def test_cluster_dies_with_its_external_support(self):
        engine = CascadeEngine(self.RECURSIVE)
        assert fact("chain", 1, 1) in engine.model
        engine.insert_fact("blocker(1)")
        assert fact("chain", 1, 1) not in engine.model
        assert engine.is_consistent()

    def test_cluster_survives_unrelated_updates(self):
        engine = CascadeEngine(self.RECURSIVE)
        engine.insert_fact("base(2)")
        assert fact("chain", 2, 2) in engine.model
        assert engine.is_consistent()

    def test_transitive_closure_link_flaps(self):
        from repro.workloads.families import reachability
        from repro.workloads.updates import asserted_facts, flip_sequence

        program = reachability(nodes=6, seed=5)
        engine = CascadeEngine(program)
        for operation, subject in flip_sequence(
            asserted_facts(program, ["link"])[:4], seed=1, count=8
        ):
            engine.apply(operation, subject)
            assert engine.is_consistent()


class TestRuleUpdates:
    def test_insert_rule_fires_it_fully(self):
        engine = CascadeEngine(pods(l=4, accepted=(2,)))
        engine.insert_rule("maybe(X) :- submitted(X), not accepted(X).")
        assert engine.model.count_of("maybe") == 3
        assert engine.is_consistent()

    def test_delete_rule_kills_exactly_its_records(self):
        engine = CascadeEngine(meet(l=3))
        engine.delete_rule("accepted(Y) :- author(X, Y), in_program_committee(X).")
        # accepted(1) had two records; only the default deduction remains
        assert len(engine.records_of(fact("accepted", 1))) == 1
        assert fact("accepted", 1) in engine.model
        assert engine.is_consistent()

    def test_delete_only_rule_empties_relation(self):
        engine = CascadeEngine(pods(l=3, accepted=(2,)))
        engine.delete_rule("rejected(X) :- not accepted(X), submitted(X).")
        assert engine.model.count_of("rejected") == 0
        assert engine.is_consistent()


class TestNetChangePropagation:
    def test_intra_stratum_migration_invisible_above(self):
        # Under the paper order q migrates inside its own stratum; the
        # watcher one stratum up must not notice because only the *net*
        # per-stratum change feeds INC/DEC (q left and returned: net zero).
        program = """
        r :- p.
        q :- r.
        q :- not p.
        watcher :- not q.
        """
        engine = CascadeEngine(program, order="paper")
        result = engine.insert_fact("p")
        assert fact("q") in result.migrated  # it did churn locally
        assert fact("watcher") not in result.added
        assert fact("watcher") not in result.removed
        assert engine.is_consistent()

    def test_same_stratum_positive_consumer_follows_the_churn(self):
        # top :- q sits in the same stratum as q (positive dependencies do
        # not raise the level); the intra-stratum REMOVEPOS cascade under
        # the paper order takes it out and saturation brings it back.
        program = """
        r :- p.
        q :- r.
        q :- not p.
        top :- q.
        """
        engine = CascadeEngine(program, order="paper")
        result = engine.insert_fact("p")
        assert fact("top") in result.migrated
        assert engine.is_consistent()
