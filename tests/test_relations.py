"""Unit tests for repro.datalog.relations."""

import pytest

from repro.datalog.relations import Relation


class TestBasics:
    def test_add_and_contains(self):
        r = Relation("p", 2)
        assert r.add(("a", "b"))
        assert ("a", "b") in r
        assert not r.add(("a", "b"))
        assert len(r) == 1

    def test_discard(self):
        r = Relation("p", 1)
        r.add(("a",))
        assert r.discard(("a",))
        assert not r.discard(("a",))
        assert len(r) == 0

    def test_arity_enforced(self):
        r = Relation("p", 2)
        with pytest.raises(ValueError):
            r.add(("a",))

    def test_arity_adopted_from_first_tuple(self):
        r = Relation("p")
        r.add(("a", "b", "c"))
        assert r.arity == 3
        with pytest.raises(ValueError):
            r.add(("a",))

    def test_clear(self):
        r = Relation("p", 1)
        r.add(("a",))
        r.clear()
        assert len(r) == 0


class TestSelect:
    def _store(self):
        r = Relation("edge", 2)
        for row in [("a", "b"), ("a", "c"), ("b", "c"), ("c", "a")]:
            r.add(row)
        return r

    def test_full_scan(self):
        assert len(list(self._store().select({}))) == 4

    def test_single_column(self):
        rows = set(self._store().select({0: "a"}))
        assert rows == {("a", "b"), ("a", "c")}

    def test_two_columns(self):
        rows = set(self._store().select({0: "a", 1: "c"}))
        assert rows == {("a", "c")}

    def test_missing_value(self):
        assert list(self._store().select({0: "zzz"})) == []

    def test_index_maintained_after_add(self):
        r = self._store()
        list(r.select({0: "a"}))  # force index on column 0
        r.add(("a", "z"))
        assert set(r.select({0: "a"})) == {("a", "b"), ("a", "c"), ("a", "z")}

    def test_index_maintained_after_discard(self):
        r = self._store()
        list(r.select({1: "c"}))  # force index on column 1
        r.discard(("a", "c"))
        assert set(r.select({1: "c"})) == {("b", "c")}

    def test_select_while_mutating(self):
        # Saturation adds tuples while scanning; snapshots must protect us.
        r = self._store()
        for row in r.select({}):
            r.add((row[1], row[0] + "!"))  # mutate during iteration

    def test_lazy_index_consistent_after_discard(self):
        # An index built lazily AFTER a discard must not resurrect rows.
        r = self._store()
        r.discard(("a", "c"))
        assert set(r.select({1: "c"})) == {("b", "c")}
        assert set(r.select({0: "a"})) == {("a", "b")}

    def test_indexes_dropped_by_clear(self):
        r = self._store()
        list(r.select({0: "a"}))  # force index on column 0
        r.clear()
        assert list(r.select({0: "a"})) == []
        r.add(("a", "q"))
        assert set(r.select({0: "a"})) == {("a", "q")}

    def test_none_values_select_like_any_constant(self):
        r = Relation("p", 2)
        r.add((None, "a"))
        r.add(("b", None))
        assert set(r.select({0: None})) == {(None, "a")}
        assert set(r.select({1: None})) == {("b", None)}
        r.discard((None, "a"))
        assert list(r.select({0: None})) == []

    def test_empty_bucket_removed_then_readded(self):
        r = self._store()
        list(r.select({0: "b"}))  # index on column 0
        r.discard(("b", "c"))
        assert list(r.select({0: "b"})) == []
        r.add(("b", "z"))
        assert set(r.select({0: "b"})) == {("b", "z")}


class TestCompositeIndexes:
    def _store(self):
        r = Relation("t", 3)
        for i in range(40):
            r.add((i % 4, i % 5, i))
        return r

    def test_multi_bound_probe_is_one_composite_lookup(self):
        r = self._store()
        rows = set(r.select({0: 1, 1: 2}))
        assert rows == {row for row in r.tuples if row[0] == 1 and row[1] == 2}
        # one composite index on the full bound combination, no
        # single-column indexes were built
        assert set(r._indexes) == {(0, 1)}

    def test_composite_index_maintained_after_add_and_discard(self):
        r = self._store()
        list(r.select({0: 1, 1: 2}))  # force the (0, 1) index
        r.add((1, 2, 99))
        assert (1, 2, 99) in set(r.select({0: 1, 1: 2}))
        r.discard((1, 2, 99))
        assert (1, 2, 99) not in set(r.select({0: 1, 1: 2}))

    def test_probe_matches_select_intersect(self):
        r = self._store()
        for bound in ({0: 2}, {1: 3}, {0: 2, 1: 3}, {0: 2, 2: 7}):
            assert set(r.select(bound)) == set(r.select_intersect(bound))

    def test_probe_missing_key(self):
        r = self._store()
        assert list(r.select({0: 99, 1: 99})) == []


class TestStatistics:
    def test_distinct_counts_maintained(self):
        r = Relation("p", 2)
        r.add(("a", 1))
        r.add(("a", 2))
        r.add(("b", 1))
        assert r.distinct_count(0) == 2
        assert r.distinct_count(1) == 2
        r.discard(("a", 1))
        assert r.distinct_count(0) == 2  # "a" still present via ("a", 2)
        r.discard(("a", 2))
        assert r.distinct_count(0) == 1
        r.clear()
        assert r.distinct_count(0) == 0
        r.add(("c", 9))
        assert r.distinct_counts() == {0: 1, 1: 1}

    def test_estimated_matches_divides_by_distinct(self):
        r = Relation("p", 2)
        for i in range(30):
            r.add((i % 3, i))
        assert r.estimated_matches(()) == 30.0
        assert r.estimated_matches((0,)) == 10.0  # 30 / 3 distinct
        assert r.estimated_matches((1,)) == 1.0  # 30 / 30 distinct

    def test_empty_relation_estimates_zero(self):
        r = Relation("p", 2)
        assert r.estimated_matches((0,)) == 0.0
        assert r.distinct_count(0) == 0


class TestCopy:
    def test_copy_is_independent(self):
        r = self._store = Relation("p", 1)
        r.add(("a",))
        dup = r.copy()
        dup.add(("b",))
        assert len(r) == 1 and len(dup) == 2

    def test_copy_carries_indexes(self):
        # Model.copy (undo/redo, rollback, recompute baselines) used to
        # drop every lazily-built index, re-paying the build on first probe.
        r = Relation("edge", 2)
        for row in [("a", "b"), ("a", "c"), ("b", "c")]:
            r.add(row)
        list(r.select({0: "a"}))
        list(r.select({0: "a", 1: "c"}))
        dup = r.copy()
        assert set(dup._indexes) == {(0,), (0, 1)}
        # answering a select must not build anything new
        assert set(dup.select({0: "a"})) == {("a", "b"), ("a", "c")}
        assert set(dup._indexes) == {(0,), (0, 1)}

    def test_copied_indexes_are_independent(self):
        r = Relation("edge", 2)
        r.add(("a", "b"))
        list(r.select({0: "a"}))
        dup = r.copy()
        dup.add(("a", "z"))
        dup.discard(("a", "b"))
        assert set(dup.select({0: "a"})) == {("a", "z")}
        assert set(r.select({0: "a"})) == {("a", "b")}

    def test_copy_carries_statistics(self):
        r = Relation("p", 2)
        for i in range(12):
            r.add((i % 3, i))
        dup = r.copy()
        assert dup.distinct_counts() == r.distinct_counts()
        dup.discard((0, 0))
        assert dup.distinct_count(1) == 11
        assert r.distinct_count(1) == 12


class TestBulkOperations:
    def _loop_loaded(self, rows):
        r = Relation("p")
        for row in rows:
            r.add(row)
        return r

    def test_add_many_equals_per_tuple_loop(self):
        rows = [(i % 5, i % 3, i) for i in range(40)]
        loop = self._loop_loaded(rows)
        bulk = Relation("p")
        assert bulk.add_many(rows) == 40
        assert bulk.tuples == loop.tuples
        assert bulk.distinct_counts() == loop.distinct_counts()
        assert bulk.arity == loop.arity == 3

    def test_add_many_skips_duplicates(self):
        r = Relation("p", 1)
        r.add((1,))
        assert r.add_many([(1,), (2,), (2,), (3,)]) == 2
        assert len(r) == 3
        assert r.distinct_counts() == {0: 3}

    def test_add_many_maintains_live_indexes(self):
        r = Relation("p", 2)
        r.add((1, "a"))
        before = dict(r.index_for((0,)))  # build the index
        assert before
        r.add_many([(1, "b"), (2, "a")])
        assert set(r.probe((0,), (1,))) == {(1, "a"), (1, "b")}
        assert set(r.probe((0,), (2,))) == {(2, "a")}

    def test_add_many_rejects_mismatched_arity(self):
        r = Relation("p", 2)
        with pytest.raises(ValueError):
            r.add_many([(1, 2), (3,)])

    def test_discard_many_equals_per_tuple_loop(self):
        rows = [(i % 5, i) for i in range(30)]
        doomed = rows[::3]
        loop = self._loop_loaded(rows)
        for row in doomed:
            loop.discard(row)
        bulk = self._loop_loaded(rows)
        assert bulk.discard_many(doomed + [(99, 99)]) == len(doomed)
        assert bulk.tuples == loop.tuples
        assert bulk.distinct_counts() == loop.distinct_counts()

    def test_discard_many_maintains_live_indexes(self):
        r = Relation("p", 2)
        r.add_many([(1, "a"), (1, "b"), (2, "a")])
        r.index_for((1,))
        r.discard_many([(1, "a"), (2, "a")])
        assert set(r.probe((1,), ("a",))) == set()
        assert set(r.probe((1,), ("b",))) == {(1, "b")}

    def test_bulk_load_equals_per_tuple_loop(self):
        rows = [(i % 7, str(i % 2)) for i in range(25)]
        loop = self._loop_loaded(rows)
        bulk = Relation.bulk_load("p", rows)
        assert bulk.tuples == loop.tuples
        assert bulk.distinct_counts() == loop.distinct_counts()
        assert bulk.arity == 2
        # no indexes yet; they fill lazily and agree with the loop's
        assert bulk.index_columns() == ()
        assert set(bulk.probe((0,), (1,))) == set(loop.probe((0,), (1,)))

    def test_bulk_load_rejects_mismatched_arity(self):
        with pytest.raises(ValueError):
            Relation.bulk_load("p", [(1, 2), (3,)])

    def test_bulk_load_empty(self):
        r = Relation.bulk_load("p", [], arity=2)
        assert len(r) == 0
        assert r.arity == 2


class TestProbeExcluding:
    def test_subtracts_the_exclusion_set(self):
        r = Relation("p", 2)
        r.add_many([(1, "a"), (1, "b"), (2, "a")])
        kept = r.probe_excluding((0,), (1,), {(1, "a")})
        assert kept == {(1, "b")}

    def test_result_is_a_fresh_set(self):
        r = Relation("p", 2)
        r.add_many([(1, "a"), (1, "b")])
        kept = r.probe_excluding((0,), (1,), set())
        r.discard((1, "a"))  # mutating the relation must not affect kept
        assert kept == {(1, "a"), (1, "b")}

    def test_missing_key_is_empty(self):
        r = Relation("p", 2)
        r.add((1, "a"))
        assert r.probe_excluding((0,), (9,), {(1, "a")}) == set()

    def test_rows_excluding(self):
        r = Relation("p", 1)
        r.add_many([(1,), (2,), (3,)])
        assert r.rows_excluding({(2,)}) == {(1,), (3,)}


class TestCompositeEstimate:
    def _correlated(self):
        # column 1 is determined by column 0: independence is 25x off
        r = Relation("p", 3)
        r.add_many([(i % 5, (i % 5) * 10, i) for i in range(100)])
        return r

    def test_uses_composite_index_key_count_when_live(self):
        r = self._correlated()
        independence = r.estimated_matches((0, 1))
        assert independence == pytest.approx(100 / (5 * 5))
        r.index_for((0, 1))
        assert r.estimated_matches((0, 1)) == pytest.approx(100 / 5)

    def test_column_order_does_not_matter(self):
        r = self._correlated()
        r.index_for((0, 1))
        assert r.estimated_matches([1, 0]) == pytest.approx(100 / 5)

    def test_single_column_keeps_distinct_count_path(self):
        r = self._correlated()
        r.index_for((0,))
        assert r.estimated_matches((0,)) == pytest.approx(100 / 5)


class TestIndexReclamation:
    def _relation(self, idle):
        r = Relation("p", 2)
        r.index_idle_epochs = idle
        r.add_many([(i, i % 3) for i in range(10)])
        return r

    def test_unprobed_index_evicted_after_idle_epochs(self):
        r = self._relation(idle=3)
        r.probe((0,), (1,))
        assert (0,) in r.index_columns()
        for i in range(5):  # five mutation epochs, no probes
            r.add((100 + i, 0))
        assert (0,) not in r.index_columns()

    def test_probing_keeps_the_index_alive(self):
        r = self._relation(idle=3)
        for i in range(10):
            r.add((100 + i, 0))
            r.probe((0,), (1,))
        assert (0,) in r.index_columns()

    def test_evicted_index_rebuilds_lazily_and_correctly(self):
        r = self._relation(idle=2)
        r.probe((1,), (0,))
        for i in range(4):
            r.add((200 + i, 0))
        assert (1,) not in r.index_columns()
        rows = r.probe((1,), (0,))  # rebuilt on demand
        assert rows == {row for row in r if row[1] == 0}

    def test_probe_counts_exposed(self):
        r = self._relation(idle=100)
        r.probe((0,), (1,))
        r.probe((0,), (2,))
        r.probe((1,), (0,))
        counts = r.index_probe_counts()
        assert counts[(0,)] == 2
        assert counts[(1,)] == 1

    def test_copy_carries_reclamation_state(self):
        r = self._relation(idle=7)
        r.probe((0,), (1,))
        dup = r.copy()
        assert dup.index_idle_epochs == 7
        assert dup.mutation_epoch == r.mutation_epoch
        assert dup.index_probe_counts() == r.index_probe_counts()

    def test_zero_idle_disables_reclamation(self):
        r = self._relation(idle=0)
        r.probe((0,), (1,))
        for i in range(50):
            r.add((300 + i, 0))
        assert (0,) in r.index_columns()
