"""Unit tests for repro.datalog.relations."""

import pytest

from repro.datalog.relations import Relation


class TestBasics:
    def test_add_and_contains(self):
        r = Relation("p", 2)
        assert r.add(("a", "b"))
        assert ("a", "b") in r
        assert not r.add(("a", "b"))
        assert len(r) == 1

    def test_discard(self):
        r = Relation("p", 1)
        r.add(("a",))
        assert r.discard(("a",))
        assert not r.discard(("a",))
        assert len(r) == 0

    def test_arity_enforced(self):
        r = Relation("p", 2)
        with pytest.raises(ValueError):
            r.add(("a",))

    def test_arity_adopted_from_first_tuple(self):
        r = Relation("p")
        r.add(("a", "b", "c"))
        assert r.arity == 3
        with pytest.raises(ValueError):
            r.add(("a",))

    def test_clear(self):
        r = Relation("p", 1)
        r.add(("a",))
        r.clear()
        assert len(r) == 0


class TestSelect:
    def _store(self):
        r = Relation("edge", 2)
        for row in [("a", "b"), ("a", "c"), ("b", "c"), ("c", "a")]:
            r.add(row)
        return r

    def test_full_scan(self):
        assert len(list(self._store().select({}))) == 4

    def test_single_column(self):
        rows = set(self._store().select({0: "a"}))
        assert rows == {("a", "b"), ("a", "c")}

    def test_two_columns(self):
        rows = set(self._store().select({0: "a", 1: "c"}))
        assert rows == {("a", "c")}

    def test_missing_value(self):
        assert list(self._store().select({0: "zzz"})) == []

    def test_index_maintained_after_add(self):
        r = self._store()
        list(r.select({0: "a"}))  # force index on column 0
        r.add(("a", "z"))
        assert set(r.select({0: "a"})) == {("a", "b"), ("a", "c"), ("a", "z")}

    def test_index_maintained_after_discard(self):
        r = self._store()
        list(r.select({1: "c"}))  # force index on column 1
        r.discard(("a", "c"))
        assert set(r.select({1: "c"})) == {("b", "c")}

    def test_select_while_mutating(self):
        # Saturation adds tuples while scanning; snapshots must protect us.
        r = self._store()
        for row in r.select({}):
            r.add((row[1], row[0] + "!"))  # mutate during iteration

    def test_lazy_index_consistent_after_discard(self):
        # An index built lazily AFTER a discard must not resurrect rows.
        r = self._store()
        r.discard(("a", "c"))
        assert set(r.select({1: "c"})) == {("b", "c")}
        assert set(r.select({0: "a"})) == {("a", "b")}

    def test_indexes_dropped_by_clear(self):
        r = self._store()
        list(r.select({0: "a"}))  # force index on column 0
        r.clear()
        assert list(r.select({0: "a"})) == []
        r.add(("a", "q"))
        assert set(r.select({0: "a"})) == {("a", "q")}

    def test_none_values_select_like_any_constant(self):
        r = Relation("p", 2)
        r.add((None, "a"))
        r.add(("b", None))
        assert set(r.select({0: None})) == {(None, "a")}
        assert set(r.select({1: None})) == {("b", None)}
        r.discard((None, "a"))
        assert list(r.select({0: None})) == []

    def test_empty_bucket_removed_then_readded(self):
        r = self._store()
        list(r.select({0: "b"}))  # index on column 0
        r.discard(("b", "c"))
        assert list(r.select({0: "b"})) == []
        r.add(("b", "z"))
        assert set(r.select({0: "b"})) == {("b", "z")}


class TestCopy:
    def test_copy_is_independent(self):
        r = self._store = Relation("p", 1)
        r.add(("a",))
        dup = r.copy()
        dup.add(("b",))
        assert len(r) == 1 and len(dup) == 2
