"""Tests for the observability subsystem (repro.obs).

Covers the metrics registry and its Prometheus exposition, span nesting
and trace export round-trips, the no-op fast path while disabled, the
per-plan-step estimated-vs-actual instrumentation, and the metric/trace
hooks in the store layer. A hypothesis property cross-checks the engine
counters against the recompute oracle's model diffs.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.registry import create_engine
from repro.datalog.atoms import fact
from repro.datalog.parser import parse_clause, parse_program
from repro.obs import (
    NULL_REGISTRY,
    NULL_SPAN,
    MetricsRegistry,
    OBS,
    Span,
    Tracer,
    telemetry,
)
from repro.workloads.synthetic import SyntheticSpec, generate
from repro.workloads.updates import random_updates

PODS = """
submitted(1). submitted(2). submitted(3).
accepted(2).
rejected(X) :- not accepted(X), submitted(X).
"""


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with telemetry disabled and empty."""
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help text")
        counter.inc()
        counter.inc(4)
        assert registry.counter("c_total").value == 5

    def test_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", outcome="hit").inc()
        registry.counter("hits_total", outcome="miss").inc(2)
        assert registry.counter("hits_total", outcome="hit").value == 1
        assert registry.counter("hits_total", outcome="miss").value == 2
        assert len(registry) == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("fill")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.bucket_counts() == {0.01: 1, 0.1: 2, 1.0: 3}
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5.555)

    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", "Operations", kind="read").inc(3)
        registry.histogram("lat_seconds", "Latency", buckets=(0.1,)).observe(
            0.05
        )
        text = registry.exposition()
        assert "# HELP ops_total Operations" in text
        assert "# TYPE ops_total counter" in text
        assert 'ops_total{kind="read"} 3' in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_as_dict_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("c_total", engine="x").inc(2)
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        dumped = json.loads(json.dumps(registry.as_dict()))
        assert dumped["c_total"][0]["value"] == 2
        assert dumped["h_seconds"][0]["count"] == 1

    def test_null_registry_is_inert(self):
        assert len(NULL_REGISTRY) == 0
        instrument = NULL_REGISTRY.counter("anything")
        instrument.inc()
        instrument.observe(1.0)
        assert not instrument
        assert NULL_REGISTRY.exposition() == ""
        assert NULL_REGISTRY.as_dict() == {}


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-a"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("child-b"):
                pass
        assert tracer.last is root
        assert [child.name for child in root.children] == [
            "child-a", "child-b",
        ]
        assert root.children[0].children[0].name == "leaf"
        assert root.duration is not None

    def test_current_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_exception_closes_and_marks_spans(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        root = tracer.last
        assert root.name == "root"
        assert root.attrs["error"] == "RuntimeError"
        assert root.children[0].duration is not None

    def test_json_round_trip(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            root.set("key", 7)
            root.event("mark", detail="x")
            with tracer.span("child"):
                pass
        payload = json.loads(json.dumps(tracer.last.to_dict()))
        restored = Span.from_dict(payload)
        assert restored.to_dict() == tracer.last.to_dict()
        assert restored.attrs == {"key": 7}
        assert restored.events == [{"name": "mark", "detail": "x"}]
        assert restored.children[0].name == "child"

    def test_chrome_events(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            root.set("n", 1)
            with tracer.span("child"):
                pass
        events = tracer.chrome_events()
        assert [event["name"] for event in events] == ["root", "child"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        assert events[0]["args"]["n"] == 1

    def test_bounded_history(self):
        tracer = Tracer(max_traces=2)
        for index in range(5):
            with tracer.span(f"t{index}"):
                pass
        assert [span.name for span in tracer.traces] == ["t3", "t4"]

    def test_null_span_is_falsy_and_inert(self):
        with NULL_SPAN as span:
            assert not span
            span.set("k", 1)
            span.event("e")


class TestRuntimeSwitch:
    def test_disabled_span_is_the_null_span(self):
        assert OBS.span("anything") is NULL_SPAN
        assert OBS.metrics is NULL_REGISTRY

    def test_enable_swaps_in_real_instruments(self):
        OBS.enable()
        assert isinstance(OBS.metrics, MetricsRegistry)
        with OBS.span("live") as span:
            assert span
        assert OBS.tracer.last.name == "live"

    def test_metrics_survive_disable(self):
        OBS.enable()
        OBS.metrics.counter("kept_total").inc(3)
        OBS.disable()
        assert OBS.metrics is NULL_REGISTRY
        assert "kept_total 3" in OBS.exposition()

    def test_telemetry_contextmanager_restores_state(self):
        assert not OBS.enabled
        with telemetry() as obs:
            assert obs.enabled
        assert not OBS.enabled


class TestEngineTracing:
    def test_insert_fact_trace_shape(self):
        engine = create_engine("cascade", parse_program(PODS))
        with telemetry():
            engine.insert_fact(fact("accepted", 1))
            root = OBS.tracer.last
        assert root.name == "update:insert_fact"
        assert root.attrs["subject"] == "accepted(1)"
        assert root.attrs["removed"] >= 1  # rejected(1) evicted
        names = set()

        def collect(span):
            names.add(span.name)
            for child in span.children:
                collect(child)

        collect(root)
        assert "stratum" in names
        assert any(name.startswith("phase:") for name in names)

    def test_round_spans_carry_delta_sizes(self):
        program = parse_program(
            "e(1,2). e(2,3). e(3,4)."
            " t(X,Y) :- e(X,Y). t(X,Z) :- t(X,Y), e(Y,Z)."
        )
        engine = create_engine("cascade", program)
        with telemetry():
            engine.insert_fact(fact("e", 4, 5))
            root = OBS.tracer.last

        rounds = []

        def collect(span):
            if span.name == "round":
                rounds.append(span)
            for child in span.children:
                collect(child)

        collect(root)
        assert rounds, "no semi-naive round spans recorded"
        for span in rounds:
            assert "delta" in span.attrs and "round" in span.attrs

    def test_update_metrics_recorded(self):
        engine = create_engine("cascade", parse_program(PODS))
        with telemetry():
            engine.insert_fact(fact("accepted", 1))
            text = OBS.exposition()
        assert (
            'repro_updates_total{engine="cascade",operation="insert_fact"} 1'
            in text
        )
        assert "repro_update_seconds_count" in text

    def test_disabled_updates_record_nothing(self):
        engine = create_engine("cascade", parse_program(PODS))
        engine.insert_fact(fact("accepted", 1))
        assert OBS.tracer.last is None
        assert OBS.exposition() == ""


class TestPlanInstrumentation:
    PROGRAM = """
    a(1). a(2). a(3).
    link(1, 10). link(2, 20). link(3, 30). link(4, 40).
    b(10). b(20).
    out(X, Y) :- a(X), link(X, Y), b(Y).
    """

    def test_plan_events_carry_estimated_and_actual(self):
        engine = create_engine("cascade", parse_program(self.PROGRAM))
        with telemetry():
            engine.insert_fact(fact("a", 4))
            root = OBS.tracer.last

        plan_events = []

        def collect(span):
            plan_events.extend(
                event for event in span.events if event["name"] == "plan"
            )
            for child in span.children:
                collect(child)

        collect(root)
        target = [
            event for event in plan_events if "out(" in event["clause"]
        ]
        assert target, f"no plan event for the join rule in {plan_events}"
        for event in target:
            for step in event["steps"]:
                assert "estimated" in step
                assert "rows" in step
                assert step["rows"] >= 0

    def test_step_history_feeds_explain(self):
        engine = create_engine("cascade", parse_program(self.PROGRAM))
        clause = parse_clause("out(X, Y) :- a(X), link(X, Y), b(Y).")
        with telemetry():
            engine.insert_fact(fact("a", 4))
        report = engine.planner.explain(clause, engine.model)
        assert "plan for:" in report
        assert "estimated=" in report
        assert "observed=" in report
        # every positive body literal appears as a ranked step
        for text in ("a(X)", "link(X, Y)", "b(Y)"):
            assert text in report

    def test_explain_without_history(self):
        engine = create_engine("cascade", parse_program(self.PROGRAM))
        clause = parse_clause("out(X, Y) :- a(X), link(X, Y), b(Y).")
        report = engine.planner.explain(clause, engine.model)
        assert "no recorded executions" in report

    def test_probe_counters(self):
        engine = create_engine("cascade", parse_program(self.PROGRAM))
        with telemetry():
            engine.insert_fact(fact("a", 4))
            values = {
                key: series
                for key, series in OBS.metrics_dict().items()
                if key.startswith("repro_index_probes_total")
            }
        assert values, "no index probe counters recorded"
        total = sum(
            series["value"]
            for entries in values.values()
            for series in entries
        )
        assert total > 0


class TestStoreTelemetry:
    def test_journal_append_metrics(self, tmp_path):
        from repro.store import open_store

        with telemetry():
            store = open_store(
                tmp_path / "db", program=PODS, engine="cascade"
            )
            store.insert_fact(fact("accepted", 1))
            metrics = OBS.metrics_dict()
        # The write-ahead append runs before the engine opens its update
        # span, so only the metrics record it (no trace event to look for).
        assert metrics["repro_journal_appends_total"][0]["value"] == 1
        assert metrics["repro_journal_bytes_total"][0]["value"] > 0
        assert metrics["repro_journal_append_seconds"][0]["count"] == 1

    def test_snapshot_metrics(self, tmp_path):
        from repro.store import open_store
        from repro.store.snapshot import read_snapshot

        with telemetry():
            store = open_store(
                tmp_path / "db", program=PODS, engine="cascade"
            )
            store.insert_fact(fact("accepted", 1))
            path = store.snapshot()
            read_snapshot(path)
            metrics = OBS.metrics_dict()
        assert metrics["repro_snapshot_bytes_total"][0]["value"] > 0
        assert metrics["repro_snapshot_encode_seconds"][0]["count"] >= 1
        assert metrics["repro_snapshot_decode_seconds"][0]["count"] >= 1


SMALL = SyntheticSpec(
    levels=2,
    relations_per_level=2,
    rules_per_relation=2,
    edb_relations=2,
    edb_facts_per_relation=4,
    domain_size=4,
)


class TestCountersMatchOracle:
    """The added/removed/migrated counters must agree with the model
    diffs the recompute oracle observes across any update sequence."""

    @given(
        seed=st.integers(0, 10_000),
        n_updates=st.integers(min_value=1, max_value=5),
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_cascade_counters_track_model_diffs(self, seed, n_updates):
        syn = generate(seed, SMALL)
        updates = random_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=n_updates, seed=seed,
        )
        engine = create_engine("cascade", syn.program)
        expected_removed = expected_added = 0
        OBS.reset()
        with telemetry(reset=False):
            for operation, subject in updates:
                before = engine.model.as_set()
                result = engine.apply(operation, subject)
                after = engine.model.as_set()
                # the result sets are exactly the oracle's diff plus the
                # migrated facts (removed and re-added within the update)
                assert result.removed - result.migrated == before - after
                assert result.added - result.migrated == after - before
                expected_removed += len(result.removed)
                expected_added += len(result.added)
            registry = OBS.metrics
            removed = registry.counter(
                "repro_facts_removed_total", engine="cascade"
            ).value
            added = registry.counter(
                "repro_facts_added_total", engine="cascade"
            ).value
            update_count = registry.counter(
                "repro_updates_total", engine="cascade",
                operation=updates[0][0],
            ).value
        assert removed == expected_removed
        assert added == expected_added
        assert update_count >= 1
