"""Tests for the Theorem (vi) backchaining interpreter."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import Atom, fact
from repro.datalog.backchain import Backchainer
from repro.datalog.evaluation import compute_model
from repro.workloads.paper import cascade_example, negation_chain, pods
from repro.workloads.synthetic import SyntheticSpec, generate

TINY = SyntheticSpec(
    levels=2,
    relations_per_level=2,
    rules_per_relation=2,
    edb_relations=2,
    edb_facts_per_relation=3,
    domain_size=3,
)


class TestMembership:
    def test_pods(self):
        program = pods(l=4, accepted=(2,))
        chainer = Backchainer(program)
        assert chainer.holds("rejected(1)")
        assert not chainer.holds("rejected(2)")
        assert chainer.holds("accepted(2)")
        assert not chainer.holds("accepted(1)")

    def test_negation_chain(self):
        chainer = Backchainer(negation_chain(5))
        assert chainer.holds("p1") and chainer.holds("p3")
        assert not chainer.holds("p0") and not chainer.holds("p2")

    def test_cascade_example(self):
        chainer = Backchainer(cascade_example())
        assert chainer.holds("q")
        assert not chainer.holds("r")

    def test_transitive_closure(self):
        chainer = Backchainer(
            """
            edge(a, b). edge(b, c).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            """
        )
        assert chainer.holds(fact("path", "a", "c"))
        assert not chainer.holds(fact("path", "c", "a"))

    def test_loop_check_positive_cycle(self):
        # p and q support only each other: both must fail finitely.
        chainer = Backchainer("e(1). p(X) :- q(X). q(X) :- p(X).")
        assert not chainer.holds("p(1)")
        assert not chainer.holds("q(1)")

    def test_cycle_with_external_support(self):
        chainer = Backchainer(
            "spark(1). on(X) :- spark(X). on(X) :- relay(X). relay(X) :- on(X)."
        )
        assert chainer.holds("on(1)")
        assert chainer.holds("relay(1)")

    def test_memoisation_consistent_after_loop_blocked_failure(self):
        # relay(1) first fails inside a loop-blocked context when proving
        # on(1) via the relay rule; it must still succeed when asked later.
        chainer = Backchainer(
            "spark(1). on(X) :- relay(X). on(X) :- spark(X). relay(X) :- on(X)."
        )
        assert chainer.holds("on(1)")
        assert chainer.holds("relay(1)")


class TestAgainstStandardModel:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_agrees_with_compute_model(self, seed):
        syn = generate(seed, TINY)
        model = compute_model(syn.program)
        chainer = Backchainer(syn.program)
        assert chainer.check_against(model)
        # sample the complement
        import itertools

        for relation, arity in syn.arities.items():
            for args in itertools.islice(
                itertools.product(syn.domain, repeat=arity), 4
            ):
                atom = Atom(relation, tuple(args))
                assert chainer.holds(atom) == (atom in model), atom
