"""Unit tests for the Doyle-style JTMS."""

import pytest

from repro.tms.jtms import JTMS, Justification, NonStratifiedNetworkError


class TestBasics:
    def test_premise_is_in(self):
        tms = JTMS()
        tms.premise("a")
        assert tms.is_in("a")

    def test_unjustified_node_is_out(self):
        tms = JTMS()
        tms.add_node("a")
        assert tms.is_out("a")

    def test_monotone_chain(self):
        tms = JTMS()
        tms.premise("a")
        tms.justify("b", in_list=["a"])
        tms.justify("c", in_list=["b"])
        assert tms.in_nodes() == {"a", "b", "c"}

    def test_out_list_blocks(self):
        tms = JTMS()
        tms.premise("a")
        tms.justify("b", out_list=["a"])
        assert tms.is_out("b")

    def test_default_through_absence(self):
        tms = JTMS()
        tms.justify("b", out_list=["a"])  # a has no justification
        assert tms.is_in("b")


class TestRevision:
    def test_adding_justification_revises(self):
        tms = JTMS()
        tms.justify("b", out_list=["a"])
        assert tms.is_in("b")
        tms.premise("a")
        assert tms.is_out("b")

    def test_retraction_revises(self):
        tms = JTMS()
        premise = tms.premise("a")
        tms.justify("b", out_list=["a"])
        assert tms.is_out("b")
        tms.retract(premise)
        assert tms.is_in("b")

    def test_retract_unknown_justification_is_noop(self):
        tms = JTMS()
        tms.premise("a")
        tms.retract(Justification("zzz", in_list=["a"]))
        assert tms.is_in("a")

    def test_chain_flip(self):
        # the paper's Example 2 chain as raw justifications
        tms = JTMS()
        tms.justify("p1", out_list=["p0"])
        tms.justify("p2", out_list=["p1"])
        tms.justify("p3", out_list=["p2"])
        assert tms.in_nodes() == {"p1", "p3"}
        tms.premise("p0")
        assert tms.in_nodes() == {"p0", "p2"}


class TestWellFoundedness:
    def test_mutual_support_is_out(self):
        tms = JTMS()
        tms.justify("a", in_list=["b"])
        tms.justify("b", in_list=["a"])
        assert tms.is_out("a") and tms.is_out("b")

    def test_cycle_with_external_support_is_in(self):
        tms = JTMS()
        tms.justify("a", in_list=["b"])
        tms.justify("b", in_list=["a"])
        tms.premise("seed")
        tms.justify("a", in_list=["seed"])
        assert tms.is_in("a") and tms.is_in("b")

    def test_support_chain_is_noncircular(self):
        tms = JTMS()
        tms.premise("seed")
        tms.justify("a", in_list=["seed"])
        tms.justify("b", in_list=["a"])
        chain = tms.well_founded_support_chain("b")
        assert chain[0] == "b" and set(chain) == {"b", "a", "seed"}

    def test_odd_loop_rejected(self):
        tms = JTMS()
        tms.justify("a", out_list=["b"])
        tms.justify("b", out_list=["a"])
        with pytest.raises(NonStratifiedNetworkError):
            tms.in_nodes()


class TestSupportingJustification:
    def test_in_node_has_support(self):
        tms = JTMS()
        tms.premise("a")
        justification = tms.justify("b", in_list=["a"])
        assert tms.supporting_justification("b") == justification

    def test_out_node_has_none(self):
        tms = JTMS()
        tms.add_node("a")
        assert tms.supporting_justification("a") is None

    def test_duplicate_justification_deduplicated(self):
        tms = JTMS()
        tms.justify("b", in_list=["a"])
        tms.justify("b", in_list=["a"])
        assert len(tms.justifications_of("b")) == 1
