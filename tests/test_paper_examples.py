"""End-to-end reproduction of every worked example in the paper.

One test class per example; these are the narrative acceptance tests the
benchmarks build on (see DESIGN.md section 6 and EXPERIMENTS.md).
"""

from repro.core.registry import ENGINE_NAMES, create_engine
from repro.datalog.atoms import fact
from repro.datalog.evaluation import compute_model
from repro.workloads.paper import (
    cascade_example,
    conf,
    congress,
    meet,
    negation_chain,
    pods,
    staleness_counterexample,
)

SOUND_FOR_SINGLE_UPDATE = [
    name for name in ENGINE_NAMES if name != "dynamic-unsigned"
]


class TestSection3Pods:
    """M(PODS') = M(PODS) \\ {rejected(m)} ∪ {accepted(m)} and dually."""

    def test_standard_model(self):
        model = compute_model(pods(l=5, accepted=(2, 4)))
        assert {f.args[0] for f in model.facts_of("rejected")} == {1, 3, 5}

    def test_insertion_semantics_all_engines(self):
        for name in SOUND_FOR_SINGLE_UPDATE:
            engine = create_engine(name, pods(l=5, accepted=(2, 4)))
            result = engine.insert_fact("accepted(1)")
            assert result.net_added == {fact("accepted", 1)}, name
            assert result.net_removed == {fact("rejected", 1)}, name
            assert engine.is_consistent(), name

    def test_deletion_semantics_all_engines(self):
        for name in SOUND_FOR_SINGLE_UPDATE:
            engine = create_engine(name, pods(l=5, accepted=(2, 4)))
            result = engine.delete_fact("accepted(4)")
            assert result.net_removed == {fact("accepted", 4)}, name
            assert result.net_added == {fact("rejected", 4)}, name
            assert engine.is_consistent(), name


class TestExample1Conf:
    """Static migrates accepted(l+1); the dynamic solutions save it."""

    def test_model_shape(self):
        model = compute_model(conf(l=3))
        assert {f.args[0] for f in model.facts_of("accepted")} == {1, 2, 3, 4}

    def test_static_migrates_the_asserted_acceptance(self):
        engine = create_engine("static", conf(l=3))
        result = engine.insert_fact("rejected(4)")
        assert fact("accepted", 4) in result.migrated

    def test_dynamic_solutions_save_it(self):
        for name in ("dynamic", "setofsets", "cascade", "factlevel"):
            engine = create_engine(name, conf(l=3))
            result = engine.insert_fact("rejected(4)")
            assert fact("accepted", 4) not in result.removed, name
            assert engine.is_consistent(), name


class TestExample2Chain:
    """Unsigned dynamic supports lose the p3 -> p0 dependency."""

    def test_model_alternates(self):
        model = compute_model(negation_chain(5))
        assert {f.relation for f in model.facts()} == {"p1", "p3", "p5"}

    def test_signed_correct_unsigned_incorrect(self):
        signed = create_engine("dynamic", negation_chain(3))
        signed.insert_fact("p0")
        assert signed.is_consistent()

        unsigned = create_engine("dynamic-unsigned", negation_chain(3))
        unsigned.insert_fact("p0")
        assert fact("p3") in unsigned.model  # wrongly retained
        assert not unsigned.is_consistent()


class TestExample3Congress:
    """The pairwise-smaller support must replace the bigger one."""

    def test_migration_avoided_with_keep_smaller(self):
        engine = create_engine("dynamic", congress(l=2))
        result = engine.insert_fact("rejected(2)")
        assert fact("accepted", 2) not in result.removed


class TestExample4Meet:
    """Sets of sets keep both deductions of the PC-authored paper."""

    def test_single_support_migrates(self):
        engine = create_engine("dynamic", meet(l=3))
        result = engine.insert_fact("rejected(1)")
        assert fact("accepted", 1) in result.migrated

    def test_sets_of_sets_save_it(self):
        for name in ("setofsets", "setofsets-paired", "cascade", "factlevel"):
            engine = create_engine(name, meet(l=3))
            result = engine.insert_fact("rejected(1)")
            assert fact("accepted", 1) not in result.removed, name
            assert engine.is_consistent(), name


class TestSection51CascadeExample:
    """'In the above version the removal of q does not take place.'"""

    def test_older_solutions_migrate_q(self):
        for name in ("static", "dynamic", "setofsets"):
            engine = create_engine(name, cascade_example())
            result = engine.insert_fact("p")
            assert fact("q") in result.migrated, name

    def test_saturate_first_cascade_never_removes_q(self):
        engine = create_engine("cascade", cascade_example())
        result = engine.insert_fact("p")
        assert fact("q") not in result.removed
        assert engine.is_consistent()

    def test_printed_pseudocode_does_remove_q(self):
        engine = create_engine("cascade-paper", cascade_example())
        result = engine.insert_fact("p")
        assert fact("q") in result.migrated
        assert engine.is_consistent()


class TestStalenessNote:
    """DESIGN.md faithfulness note 1 (not in the paper): the printed 4.3
    can erroneously retain a fact across a sequence of updates."""

    def test_anomaly_and_its_fix(self):
        paper = create_engine("setofsets", staleness_counterexample())
        paper.insert_fact("d")
        paper.delete_fact("a")
        assert not paper.is_consistent()

        paired = create_engine("setofsets-paired", staleness_counterexample())
        paired.insert_fact("d")
        paired.delete_fact("a")
        assert paired.is_consistent()

    def test_every_other_solution_is_immune(self):
        for name in ("static", "dynamic", "cascade", "cascade-paper", "factlevel"):
            engine = create_engine(name, staleness_counterexample())
            engine.insert_fact("d")
            engine.delete_fact("a")
            assert engine.is_consistent(), name
