"""Tests for Theorem (v): M(P) is a model of Clark's completion."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.completion import (
    completion_violations,
    enumerate_supported_models,
    is_model_of_completion,
)
from repro.datalog.evaluation import compute_model
from repro.datalog.parser import parse_program
from repro.workloads.paper import cascade_example, meet, negation_chain, pods
from repro.workloads.synthetic import SyntheticSpec, generate

TINY = SyntheticSpec(
    levels=2,
    relations_per_level=2,
    rules_per_relation=2,
    edb_relations=2,
    edb_facts_per_relation=3,
    domain_size=3,
)


class TestCompletionCheck:
    def test_standard_models_satisfy_completion(self):
        for program in (
            pods(l=4, accepted=(2,)),
            negation_chain(4),
            cascade_example(),
            meet(l=3),
        ):
            assert is_model_of_completion(program, compute_model(program))

    def test_if_direction_violation_detected(self):
        program = parse_program("e(1). p(X) :- e(X).")
        model = compute_model(program)
        model.discard(next(model.facts_of("p")))
        [violation] = completion_violations(program, model)
        assert violation.direction == "if"
        assert "absent" in str(violation)

    def test_only_if_direction_violation_detected(self):
        from repro.datalog.atoms import fact

        program = parse_program("e(1). p(X) :- e(X).")
        model = compute_model(program)
        model.add(fact("p", 99))  # unsupported extra
        [violation] = completion_violations(program, model)
        assert violation.direction == "only-if"

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_property_standard_model_satisfies_completion(self, seed):
        program = generate(seed, TINY).program
        assert is_model_of_completion(program, compute_model(program))


class TestSupportedModelEnumeration:
    def test_standard_model_among_supported_models(self):
        program = parse_program("p :- not q. r :- p.")
        supported = list(enumerate_supported_models(program))
        standard = compute_model(program).as_set()
        assert standard in supported

    def test_standard_model_is_minimal_among_them(self):
        # Theorem (ii): M(P) is a minimal model; here checked exactly by
        # brute force on a propositional program with a positive cycle,
        # where {p, q} is also a supported (but unfounded) model.
        program = parse_program("p :- q. q :- p.")
        supported = list(enumerate_supported_models(program))
        standard = compute_model(program).as_set()
        assert standard == frozenset()
        assert standard in supported
        assert frozenset(
            {model for model in supported if model < standard}
        ) == frozenset()

    def test_unfounded_supported_model_exists_but_is_not_chosen(self):
        # the classic: mutual support is "supported" but not well-founded
        program = parse_program("p :- q. q :- p.")
        supported = set(enumerate_supported_models(program))
        assert len(supported) == 2  # {} and {p, q}
        assert compute_model(program).as_set() == frozenset()

    def test_limit_enforced(self):
        import pytest

        program = pods(l=10, accepted=(2,))
        with pytest.raises(ValueError):
            list(enumerate_supported_models(program, limit_atoms=5))

    def test_no_proper_subset_of_standard_is_supported_model(self):
        # minimality of M(P) among the models of comp(P), tiny instance
        program = parse_program(
            "a. b :- a. c :- not d. d :- a, not zz."
        )
        standard = compute_model(program).as_set()
        for supported in enumerate_supported_models(program):
            assert not supported < standard
