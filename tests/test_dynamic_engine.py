"""Tests for the dynamic solution of section 4.2 (single Pos/Neg pair)."""

from repro.core.dynamic_engine import DynamicEngine
from repro.core.supports import Signed
from repro.datalog.atoms import fact
from repro.workloads.paper import conf, congress, meet, negation_chain, pods


class TestSupportConstruction:
    def test_asserted_fact_has_trivial_support(self):
        engine = DynamicEngine(pods(l=3, accepted=(2,)))
        assert engine.support_of(fact("accepted", 2)).is_trivial()

    def test_derived_fact_records_used_dependencies(self):
        engine = DynamicEngine(pods(l=3, accepted=(2,)))
        support = engine.support_of(fact("rejected", 1))
        assert "submitted" in support.pos
        assert Signed("-", "accepted") in support.pos
        assert Signed("+", "accepted") in support.neg

    def test_support_entry_count_positive(self):
        engine = DynamicEngine(pods(l=3, accepted=(2,)))
        assert engine.support_entry_count() > 0


class TestExample1:
    def test_asserted_acceptance_survives(self):
        engine = DynamicEngine(conf(l=3))
        result = engine.insert_fact("rejected(4)")
        assert fact("accepted", 4) not in result.removed
        assert engine.is_consistent()

    def test_rule_derived_acceptances_still_migrate(self):
        engine = DynamicEngine(conf(l=3))
        result = engine.insert_fact("rejected(4)")
        assert fact("accepted", 1) in result.migrated  # relation-level cost


class TestExample2:
    def test_signed_supports_handle_the_chain(self):
        engine = DynamicEngine(negation_chain(3))
        assert engine.model.as_set() == {fact("p1"), fact("p3")}
        engine.insert_fact("p0")
        assert engine.model.as_set() == {fact("p0"), fact("p2")}
        assert engine.is_consistent()

    def test_chain_delete_after_insert(self):
        engine = DynamicEngine(negation_chain(3))
        engine.insert_fact("p0")
        engine.delete_fact("p0")
        assert engine.model.as_set() == {fact("p1"), fact("p3")}
        assert engine.is_consistent()

    def test_unsigned_supports_are_incorrect(self):
        engine = DynamicEngine(negation_chain(3), signed_statics=False)
        engine.insert_fact("p0")
        # p3's support {p2} misses the dependency on p0: p3 survives wrongly
        assert fact("p3") in engine.model
        assert not engine.is_consistent()

    def test_long_chain(self):
        engine = DynamicEngine(negation_chain(10))
        engine.insert_fact("p0")
        assert engine.is_consistent()


class TestExample3:
    def test_smaller_support_is_kept(self):
        engine = DynamicEngine(congress(l=2))
        support = engine.support_of(fact("accepted", 2))
        assert support.pos == {"submitted"}
        assert support.neg == frozenset()

    def test_keep_smaller_avoids_migration(self):
        engine = DynamicEngine(congress(l=2))
        result = engine.insert_fact("rejected(2)")
        assert fact("accepted", 2) not in result.migrated
        assert engine.is_consistent()

    def test_without_keep_smaller_migration_happens(self):
        engine = DynamicEngine(congress(l=2), keep_smaller=False)
        result = engine.insert_fact("rejected(2)")
        assert fact("accepted", 2) in result.migrated
        assert engine.is_consistent()  # migration, not incorrectness


class TestExample4:
    def test_single_support_migrates_the_pc_paper(self):
        engine = DynamicEngine(meet(l=3))
        result = engine.insert_fact("rejected(1)")
        # accepted(1) has a second deduction but only one support is kept
        assert fact("accepted", 1) in result.migrated
        assert engine.is_consistent()


class TestRuleUpdates:
    def test_insert_rule(self):
        engine = DynamicEngine(pods(l=4, accepted=(2,)))
        engine.insert_rule("maybe(X) :- submitted(X), not accepted(X).")
        assert engine.model.count_of("maybe") == 3
        assert engine.is_consistent()

    def test_delete_rule_evicts_derived_only_facts(self):
        engine = DynamicEngine(pods(l=4, accepted=(2,)))
        engine.delete_rule("rejected(X) :- not accepted(X), submitted(X).")
        assert engine.model.count_of("rejected") == 0
        assert engine.is_consistent()

    def test_delete_rule_spares_asserted_facts(self):
        engine = DynamicEngine(conf(l=3))
        engine.delete_rule("accepted(X) :- submitted(X), not rejected(X).")
        assert engine.model.count_of("accepted") == 1  # accepted(4) asserted
        assert engine.is_consistent()


class TestUpdateSequences:
    def test_insert_delete_roundtrip(self):
        engine = DynamicEngine(pods(l=5, accepted=(2, 4)))
        before = engine.model.as_set()
        engine.insert_fact("accepted(1)")
        engine.delete_fact("accepted(1)")
        assert engine.model.as_set() == before
        assert engine.is_consistent()

    def test_staleness_self_heals(self):
        # The 4.2 engine keeps one support; across sequences over-removal
        # plus re-saturation keeps it sound (unlike paper-mode 4.3).
        from repro.workloads.paper import staleness_counterexample

        engine = DynamicEngine(staleness_counterexample())
        engine.insert_fact("d")
        engine.delete_fact("a")
        assert fact("b") not in engine.model
        assert engine.is_consistent()
