"""Unit tests for repro.datalog.builder."""

import pytest

from repro.datalog.builder import ProgramBuilder, const
from repro.datalog.parser import parse_program
from repro.datalog.terms import Variable


class TestBuilder:
    def test_matches_parser_output(self):
        builder = ProgramBuilder()
        builder.fact("submitted", 1)
        builder.fact("submitted", 2)
        builder.rule("accepted", ("X",)).pos("submitted", "X").neg(
            "rejected", "X"
        )
        built = builder.build()
        parsed = parse_program(
            """
            submitted(1). submitted(2).
            accepted(X) :- submitted(X), not rejected(X).
            """
        )
        assert built.clauses == parsed.clauses

    def test_uppercase_strings_become_variables(self):
        builder = ProgramBuilder()
        builder.rule("p", ("X",)).pos("q", "X")
        [clause] = builder.build().clauses
        assert clause.head.args == (Variable("X"),)

    def test_const_marker_prevents_variable(self):
        builder = ProgramBuilder()
        builder.fact("city", "paris")
        builder.rule("p", ("X",)).pos("q", "X", const("Paris"))
        program = builder.build()
        clause = program.rules[0]
        assert clause.body[0].args == (Variable("X"), "Paris")

    def test_fact_arguments_taken_verbatim(self):
        builder = ProgramBuilder()
        builder.fact("name", "Alice")  # uppercase but a fact: constant
        [clause] = builder.build().clauses
        assert clause.head.args == ("Alice",)

    def test_fact_with_variable_rejected(self):
        builder = ProgramBuilder()
        with pytest.raises(ValueError):
            builder.fact("p", Variable("X"))

    def test_propositional_rule(self):
        builder = ProgramBuilder()
        builder.rule("q", ()).neg("p")
        [clause] = builder.build().clauses
        assert str(clause) == "q :- not p."

    def test_explicit_clause_append(self):
        from repro.datalog.parser import parse_clause

        builder = ProgramBuilder()
        builder.clause(parse_clause("p(1)."))
        assert len(builder.build()) == 1
