"""Engines under non-default substrate options (method, granularity).

The maintained model must be invariant under the saturation strategy and
the stratification granularity — the engine-level face of Theorem (i) and
of the [RLK] equivalence.
"""

import pytest

from repro.core.registry import SOUND_ENGINE_NAMES, create_engine
from repro.workloads.families import review_pipeline
from repro.workloads.paper import negation_chain, pods
from repro.workloads.updates import asserted_facts, flip_sequence


def _drive(engine):
    engine.insert_fact("accepted(1)")
    engine.delete_fact("accepted(2)")
    engine.insert_rule("maybe(X) :- submitted(X), not accepted(X).")
    assert engine.is_consistent()
    return engine.model.as_set()


class TestNaiveMethod:
    @pytest.mark.parametrize("name", SOUND_ENGINE_NAMES)
    def test_same_result_as_seminaive(self, name):
        program = pods(l=5, accepted=(2, 4))
        naive = create_engine(name, program, method="naive")
        seminaive = create_engine(name, program, method="seminaive")
        assert _drive(naive) == _drive(seminaive), name

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            engine = create_engine("static", pods(), method="bogus")
            engine.insert_fact("accepted(1)")


class TestSccGranularity:
    @pytest.mark.parametrize("name", SOUND_ENGINE_NAMES)
    def test_same_result_as_level(self, name):
        program = negation_chain(4)
        scc = create_engine(name, program, granularity="scc")
        level = create_engine(name, program, granularity="level")
        scc.insert_fact("p0")
        level.insert_fact("p0")
        assert scc.model == level.model, name
        assert scc.is_consistent(), name

    def test_scc_on_family_workload(self):
        program = review_pipeline(papers=8, committee=3, seed=2)
        engine = create_engine("cascade", program, granularity="scc")
        for operation, subject in flip_sequence(
            asserted_facts(program, ["submitted"])[:3], seed=2, count=6
        ):
            engine.apply(operation, subject)
            assert engine.is_consistent()

    def test_granularity_survives_rule_updates(self):
        engine = create_engine(
            "cascade", pods(l=4, accepted=(2,)), granularity="scc"
        )
        engine.insert_rule("maybe(X) :- submitted(X), not rejected(X).")
        assert engine.db.granularity == "scc"
        engine.delete_rule("maybe(X) :- submitted(X), not rejected(X).")
        assert engine.is_consistent()


class TestErrorMessages:
    def test_parse_error_position(self):
        from repro.datalog.errors import ParseError
        from repro.datalog.parser import parse_program

        with pytest.raises(ParseError) as exc:
            parse_program("p(1).\nq(X) :- , r(X).")
        assert "line 2" in str(exc.value)

    def test_parse_error_at_end_of_input(self):
        from repro.datalog.errors import ParseError
        from repro.datalog.parser import parse_program

        with pytest.raises(ParseError) as exc:
            parse_program("p(1).\nq(X) :- r(X)")
        assert "end of input" in str(exc.value)

    def test_stratification_error_names_the_arc(self):
        from repro.datalog.errors import StratificationError
        from repro.datalog.database import StratifiedDatabase

        with pytest.raises(StratificationError) as exc:
            StratifiedDatabase("p(X) :- e(X), not q(X). q(X) :- p(X).")
        message = str(exc.value)
        assert "p" in message and "q" in message

    def test_update_error_says_what_is_wrong(self):
        from repro.datalog.errors import UpdateError

        engine = create_engine("cascade", pods(l=3, accepted=(2,)))
        with pytest.raises(UpdateError) as exc:
            engine.delete_fact("rejected(1)")
        assert "not an asserted fact" in str(exc.value)
