"""Unit tests for repro.datalog.model."""

import pytest

from repro.datalog.atoms import fact
from repro.datalog.model import Model


class TestBasics:
    def test_add_and_contains(self):
        m = Model()
        assert m.add(fact("p", 1))
        assert fact("p", 1) in m
        assert not m.add(fact("p", 1))
        assert len(m) == 1

    def test_discard(self):
        m = Model([fact("p", 1)])
        assert m.discard(fact("p", 1))
        assert not m.discard(fact("p", 1))
        assert len(m) == 0

    def test_contains_by_relation_and_args(self):
        m = Model([fact("p", 1, 2)])
        assert m.contains("p", (1, 2))
        assert not m.contains("p", (2, 1))
        assert not m.contains("q", (1, 2))

    def test_facts_of(self):
        m = Model([fact("p", 1), fact("p", 2), fact("q", 1)])
        assert {f.args for f in m.facts_of("p")} == {(1,), (2,)}
        assert list(m.facts_of("zzz")) == []

    def test_counts(self):
        m = Model([fact("p", 1), fact("p", 2), fact("q", 1)])
        assert m.count_of("p") == 2
        assert m.per_relation_counts() == {"p": 2, "q": 1}

    def test_restrict(self):
        m = Model([fact("p", 1), fact("q", 1)])
        assert m.restrict(lambda name: name == "p") == {fact("p", 1)}


class TestRelationAccessor:
    def test_conflicting_arity_raises(self):
        # relation() used to silently ignore a mismatching arity argument,
        # deferring the failure to a confusing add() much later.
        m = Model([fact("p", 1, 2)])
        with pytest.raises(ValueError):
            m.relation("p", 3)

    def test_matching_arity_is_fine(self):
        m = Model([fact("p", 1, 2)])
        assert m.relation("p", 2).arity == 2
        assert m.relation("p").arity == 2

    def test_arity_adopted_by_unknown_store(self):
        m = Model()
        m.relation("p")  # created with unknown arity
        assert m.relation("p", 2).arity == 2
        with pytest.raises(ValueError):
            m.relation("p", 3)

    def test_estimated_matches(self):
        m = Model([fact("e", i % 2, i) for i in range(10)])
        assert m.estimated_matches("e", ()) == 10.0
        assert m.estimated_matches("e", (0,)) == 5.0
        assert m.estimated_matches("ghost", (0,)) == 0.0


class TestEquality:
    def test_equal_models(self):
        a = Model([fact("p", 1), fact("q", 2)])
        b = Model([fact("q", 2), fact("p", 1)])
        assert a == b

    def test_unequal_models(self):
        assert Model([fact("p", 1)]) != Model([fact("p", 2)])

    def test_empty_relation_does_not_matter(self):
        a = Model([fact("p", 1)])
        a.relation("ghost")  # creates an empty store
        assert a == Model([fact("p", 1)])


class TestCopy:
    def test_copy_is_independent(self):
        a = Model([fact("p", 1)])
        b = a.copy()
        b.add(fact("p", 2))
        a.discard(fact("p", 1))
        assert b.as_set() == {fact("p", 1), fact("p", 2)}
        assert len(a) == 0


class TestPretty:
    def test_sorted_rendering(self):
        m = Model([fact("b", 2), fact("a", 1), fact("b", 1)])
        assert m.pretty().splitlines() == ["a(1)", "b(1)", "b(2)"]
