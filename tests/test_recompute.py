"""Tests for the full-recomputation oracle engine."""

from repro.core.recompute import RecomputeEngine
from repro.datalog.atoms import fact
from repro.workloads.paper import pods


class TestRecompute:
    def test_never_migrates(self):
        engine = RecomputeEngine(pods(l=5, accepted=(2, 4)))
        result = engine.insert_fact("accepted(1)")
        assert not result.migrated
        result = engine.delete_fact("accepted(1)")
        assert not result.migrated

    def test_reports_net_changes(self):
        engine = RecomputeEngine(pods(l=5, accepted=(2, 4)))
        result = engine.insert_fact("accepted(1)")
        assert result.removed == {fact("rejected", 1)}
        assert result.added == {fact("accepted", 1)}

    def test_rule_updates(self):
        engine = RecomputeEngine(pods(l=3, accepted=(2,)))
        result = engine.insert_rule(
            "maybe(X) :- submitted(X), not accepted(X)."
        )
        assert {f.args[0] for f in result.added} == {1, 3}
        result = engine.delete_rule(
            "maybe(X) :- submitted(X), not accepted(X)."
        )
        assert {f.args[0] for f in result.removed} == {1, 3}

    def test_always_consistent(self):
        engine = RecomputeEngine(pods(l=5, accepted=(2, 4)))
        engine.insert_fact("accepted(1)")
        engine.delete_fact("accepted(4)")
        engine.insert_rule("w(X) :- submitted(X), not rejected(X).")
        assert engine.is_consistent()

    def test_no_supports(self):
        engine = RecomputeEngine(pods())
        assert engine.support_entry_count() == 0
