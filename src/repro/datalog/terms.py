"""Terms of the function-free language.

The language of the paper is function-free (a *Datalog* language): a term is
either a variable or a constant. Variables are represented by the
:class:`Variable` class; constants are plain hashable Python values
(strings and integers when programs come from the parser, but any hashable
value is accepted from the programmatic API). Keeping constants unwrapped
makes ground tuples ordinary Python tuples, which the fixpoint loops hash
millions of times.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator

Term = Any  # a Variable or any hashable constant
Constant = Hashable


class Variable:
    """A logical variable, identified by its name.

    Two variables with the same name are equal, so a rule can mention ``X``
    several times and the occurrences unify.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name
        self._hash = hash(("Variable", name))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash


def is_variable(term: Term) -> bool:
    """Return True when *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return True when *term* is a constant (anything but a Variable)."""
    return not isinstance(term, Variable)


def is_ground(terms: Iterable[Term]) -> bool:
    """Return True when no term in *terms* is a variable."""
    return not any(isinstance(term, Variable) for term in terms)


def variables_in(terms: Iterable[Term]) -> Iterator[Variable]:
    """Yield the variables occurring in *terms*, in order, with duplicates."""
    for term in terms:
        if isinstance(term, Variable):
            yield term


def variables(name_spec: str) -> tuple[Variable, ...]:
    """Create several variables at once: ``X, Y = variables("X Y")``.

    *name_spec* is a whitespace- or comma-separated list of names. This is a
    convenience for the programmatic API, mirroring ``sympy.symbols``.
    """
    names = name_spec.replace(",", " ").split()
    return tuple(Variable(name) for name in names)


def format_term(term: Term) -> str:
    """Render a term the way the parser would read it back.

    Strings that look like identifiers print bare; anything else is quoted
    (strings) or printed via ``repr`` (other constants).
    """
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, str):
        if term and (term[0].islower() or term[0] == "_") and all(
            ch.isalnum() or ch == "_" for ch in term
        ):
            return term
        escaped = term.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return repr(term)
