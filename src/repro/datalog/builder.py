"""Fluent programmatic construction of programs.

The parser covers most uses; this builder serves code that generates
programs (the workload generators) without formatting strings::

    builder = ProgramBuilder()
    builder.fact("submitted", 1)
    builder.rule("accepted", ("X",)).pos("submitted", "X").neg("rejected", "X")
    program = builder.build()

Strings that look like variables (leading uppercase or ``_``) become
variables, mirroring the textual syntax; everything else is a constant. Use
:meth:`RuleBuilder.pos_const` / :func:`const` when a constant genuinely
starts with an uppercase letter.
"""

from __future__ import annotations

from typing import Any

from .atoms import Atom, Literal
from .clauses import Clause, Program
from .terms import Term, Variable


class const(str):
    """Marks a string argument as a constant even if it looks like a variable."""

    __slots__ = ()


def _term(value: Any) -> Term:
    if isinstance(value, Variable):
        return value
    if isinstance(value, const):
        return str(value)
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return value


def _atom(relation: str, args: tuple) -> Atom:
    return Atom(relation, tuple(_term(value) for value in args))


class RuleBuilder:
    """Accumulates the body of one rule; finalised by the owning builder."""

    def __init__(self, owner: "ProgramBuilder", head: Atom) -> None:
        self._owner = owner
        self._head = head
        self._body: list[Literal] = []

    def pos(self, relation: str, *args: Any) -> "RuleBuilder":
        """Append a positive body literal."""
        self._body.append(Literal(_atom(relation, args), positive=True))
        return self

    def neg(self, relation: str, *args: Any) -> "RuleBuilder":
        """Append a negative body literal."""
        self._body.append(Literal(_atom(relation, args), positive=False))
        return self

    def clause(self) -> Clause:
        return Clause(self._head, tuple(self._body))


class ProgramBuilder:
    """Collects facts and rules, then builds a :class:`Program`."""

    def __init__(self) -> None:
        self._clauses: list[Clause] = []
        self._open_rules: list[RuleBuilder] = []

    def fact(self, relation: str, *args: Any) -> "ProgramBuilder":
        """Assert a ground fact. Arguments are taken as constants verbatim."""
        atom = Atom(relation, tuple(args))
        if not atom.is_ground():
            raise ValueError(f"fact {atom} contains variables")
        self._clauses.append(Clause(atom))
        return self

    def rule(self, relation: str, args: tuple = ()) -> RuleBuilder:
        """Open a rule with the given head; chain ``.pos/.neg`` calls on it."""
        builder = RuleBuilder(self, _atom(relation, tuple(args)))
        self._open_rules.append(builder)
        return builder

    def clause(self, clause: Clause) -> "ProgramBuilder":
        """Append an already-built clause."""
        self._clauses.append(clause)
        return self

    def build(self) -> Program:
        program = Program()
        for clause in self._clauses:
            program.add(clause)
        for rule_builder in self._open_rules:
            program.add(rule_builder.clause())
        return program
