"""Stratified Datalog substrate.

Everything the maintenance engines (``repro.core``) build upon: the
function-free language with negation, parsing, dependency analysis,
stratification, and saturation-based model computation.
"""

from .atoms import Atom, Literal, atom, fact, neg, pos
from .backchain import Backchainer
from .builder import ProgramBuilder, const
from .clauses import Clause, Program, rule
from .completion import (
    active_herbrand_base,
    completion_violations,
    enumerate_supported_models,
    is_model_of_completion,
)
from .database import StratifiedDatabase
from .dependency import DependencyGraph, StaticDependencies
from .errors import (
    DatalogError,
    ParseError,
    SafetyError,
    StratificationError,
    UpdateError,
)
from .evaluation import (
    Derivation,
    compute_model,
    iter_derivations,
    naive_saturate,
    saturate,
    semi_naive_saturate,
)
from .model import Model
from .parser import parse_atom, parse_clause, parse_fact, parse_program
from .plan import DEFAULT_PLANNER, ClausePlan, Planner
from .query import ask, iter_answers, parse_query, query
from .relations import Relation
from .stratify import Stratification, Stratum, stratify
from .terms import Variable, variables

__all__ = [
    "Atom",
    "Backchainer",
    "Clause",
    "ClausePlan",
    "DEFAULT_PLANNER",
    "DatalogError",
    "DependencyGraph",
    "Derivation",
    "Literal",
    "Model",
    "ParseError",
    "Planner",
    "Program",
    "ProgramBuilder",
    "Relation",
    "SafetyError",
    "StaticDependencies",
    "Stratification",
    "StratificationError",
    "StratifiedDatabase",
    "Stratum",
    "UpdateError",
    "Variable",
    "active_herbrand_base",
    "ask",
    "atom",
    "completion_violations",
    "compute_model",
    "const",
    "enumerate_supported_models",
    "fact",
    "is_model_of_completion",
    "iter_answers",
    "iter_derivations",
    "naive_saturate",
    "neg",
    "parse_atom",
    "parse_clause",
    "parse_fact",
    "parse_program",
    "parse_query",
    "pos",
    "query",
    "rule",
    "saturate",
    "semi_naive_saturate",
    "stratify",
    "variables",
]
