"""Stratification of programs.

A program P is *stratified* when there is a partition P = P1 ∪ ... ∪ Pn such
that a relation occurring positively in a clause of Pi has its definition in
⋃ Pj for j ≤ i, and one occurring negatively has it in ⋃ Pj for j < i —
equivalently, when no cycle of the dependency graph contains a negative arc.

This module computes the canonical finest stratification by assigning each
SCC of the dependency graph the least level compatible with the two
conditions (positive arcs may stay on the same level, negative arcs must go
strictly down). A coarser stratification can be requested for testing the
paper's Theorem (i): the model does not depend on the stratification.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .clauses import Clause, Program
from .dependency import Arc, DependencyGraph, format_witness
from .errors import StratificationError


def _locate_negative_arc(
    clauses: Iterable[Clause], arc: Arc
) -> tuple[int, int]:
    """Source position of a clause contributing *arc* as a negative reference.

    Returns (0, 0) when no clause carries a position (programmatic input).
    """
    for clause in clauses:
        if clause.head.relation != arc.source:
            continue
        for lit in clause.body:
            if not lit.positive and lit.relation == arc.target:
                line = lit.line or clause.line
                column = lit.column or clause.column
                if line:
                    return line, column
    return 0, 0


def unstratifiable_error(
    graph: DependencyGraph, clauses: Iterable[Clause], context: str
) -> StratificationError:
    """Build the witness-carrying error for an unstratifiable graph."""
    witness = graph.negative_cycle_witness()
    offending = witness[0]
    line, column = _locate_negative_arc(clauses, offending)
    return StratificationError(
        f"{context}: negative arc {offending.source} -> {offending.target} "
        f"lies on the cycle {format_witness(witness)}",
        witness=witness,
        line=line,
        column=column,
    )


class Stratum:
    """One element P_i of the partition: its index, relations and clauses.

    The clause sequence is kept in sync with the program by the owning
    :class:`~repro.datalog.database.StratifiedDatabase` when facts are
    asserted or retracted (rule updates rebuild the whole stratification).
    Membership is indexed and the exposed tuple is cached, so registering
    an asserted fact costs O(1) however many facts the stratum holds —
    the service's worker engines re-sync fact diffs on every restore.
    """

    __slots__ = (
        "index", "relations", "_clauses", "_members", "_tuple", "_rules"
    )

    def __init__(
        self, index: int, relations: frozenset[str], clauses: tuple[Clause, ...]
    ) -> None:
        self.index = index  # 1-based, as in the paper
        self.relations = relations
        self._clauses = list(clauses)
        self._members = set(self._clauses)
        self._tuple: tuple[Clause, ...] | None = tuple(self._clauses)
        self._rules: tuple[Clause, ...] | None = None

    @property
    def clauses(self) -> tuple[Clause, ...]:
        if self._tuple is None:
            self._tuple = tuple(self._clauses)
        return self._tuple

    @property
    def rules(self) -> tuple[Clause, ...]:
        """The stratum's clauses with bodies (asserted facts excluded).

        Fact churn leaves this tuple alone — asserting a fact is a
        bodiless clause — so per-update passes that only consult rules
        stay O(rules) however many facts accumulate.
        """
        if self._rules is None:
            self._rules = tuple(c for c in self._clauses if c.body)
        return self._rules

    def add(self, clause: Clause) -> None:
        if clause not in self._members:
            self._members.add(clause)
            self._clauses.append(clause)
            self._tuple = None
            if clause.body:
                self._rules = None

    def discard(self, clause: Clause) -> None:
        if clause in self._members:
            self._members.discard(clause)
            self._clauses.remove(clause)
            self._tuple = None
            if clause.body:
                self._rules = None

    def __repr__(self) -> str:
        return (
            f"Stratum({self.index}, relations={sorted(self.relations)}, "
            f"{len(self._clauses)} clauses)"
        )


class Stratification:
    """A stratification P1 ∪ ... ∪ Pn of a program."""

    def __init__(self, strata: Sequence[Stratum], level_of: dict[str, int]) -> None:
        self._strata = tuple(strata)
        self._level_of = dict(level_of)

    @property
    def strata(self) -> tuple[Stratum, ...]:
        return self._strata

    def __len__(self) -> int:
        return len(self._strata)

    def __iter__(self) -> Iterator[Stratum]:
        return iter(self._strata)

    def stratum_of(self, relation: str) -> int:
        """1-based stratum index of *relation* (1 for unknown relations).

        Unknown relations arise when a fact about a brand-new extensional
        relation is inserted; such a relation can occur in no rule body yet,
        so placing it at the bottom is always consistent.
        """
        return self._level_of.get(relation, 1)

    def relations_at(self, index: int) -> frozenset[str]:
        return self._strata[index - 1].relations

    def clauses_at(self, index: int) -> tuple[Clause, ...]:
        return self._strata[index - 1].clauses

    def level_map(self) -> dict[str, int]:
        return dict(self._level_of)

    def add_clause(self, clause: Clause) -> None:
        """Register a clause of an already-known relation in its stratum."""
        self._strata[self.stratum_of(clause.head.relation) - 1].add(clause)

    def remove_clause(self, clause: Clause) -> None:
        """Unregister a clause from its stratum (no-op when absent)."""
        self._strata[self.stratum_of(clause.head.relation) - 1].discard(
            clause
        )


def _scc_levels(
    graph: DependencyGraph, clauses: Iterable[Clause] = ()
) -> dict[str, int]:
    """Assign each relation the least admissible level (1-based)."""
    sccs = graph.sccs()  # dependencies come before dependents
    component_of: dict[str, int] = {}
    for i, component in enumerate(sccs):
        for relation in component:
            component_of[relation] = i
    level_of_component = [1] * len(sccs)
    for i, component in enumerate(sccs):
        level = 1
        for relation in component:
            for succ in graph.successors(relation):
                j = component_of[succ]
                arc = graph.arc(relation, succ)
                if j == i:
                    if arc.negative:
                        raise unstratifiable_error(
                            graph,
                            clauses,
                            "recursion through negation: "
                            f"{relation} negatively depends on {succ}",
                        )
                    continue
                needed = level_of_component[j] + (1 if arc.negative else 0)
                if arc.positive:
                    needed = max(needed, level_of_component[j])
                level = max(level, needed)
        level_of_component[i] = level
    return {
        relation: level_of_component[component_of[relation]]
        for relation in graph.relations
    }


def stratify(
    program: Program, granularity: str = "level"
) -> Stratification:
    """Compute a stratification of *program*.

    ``granularity="level"`` groups relations by their least admissible
    level — the canonical stratification of [ABW] with as few strata as the
    levels allow. ``granularity="scc"`` gives the finest partition: one
    stratum per SCC of the dependency graph, in topological order, which the
    paper calls a *maximal* stratification (no stratum can be further
    decomposed). The standard model is the same either way (Theorem i).

    Raises :class:`StratificationError` when the program is not stratified.
    """
    graph = DependencyGraph(program)
    levels = _scc_levels(graph, program)  # raises on recursion through negation

    if granularity == "level":
        level_of = levels
    elif granularity == "scc":
        # SCCs arrive dependencies-first; ordering them by (level, position)
        # keeps every arc pointing to a strictly lower stratum index.
        level_of = {}
        sccs = graph.sccs()
        ordered = sorted(
            range(len(sccs)),
            key=lambda i: (min(levels[r] for r in sccs[i]), i),
        )
        for rank, i in enumerate(ordered, start=1):
            for relation in sccs[i]:
                level_of[relation] = rank
    else:
        raise ValueError(f"unknown granularity {granularity!r}")

    definitions = program.definitions()
    max_level = max(level_of.values(), default=1)
    strata: list[Stratum] = []
    for index in range(1, max_level + 1):
        relations = frozenset(
            relation for relation, level in level_of.items() if level == index
        )
        clauses = tuple(
            clause
            for relation in sorted(relations)
            for clause in definitions.get(relation, ())
        )
        strata.append(Stratum(index, relations, clauses))
    return Stratification(strata, level_of)


def check_stratified_with(
    program: Program, extra_clauses: Iterable[Clause]
) -> None:
    """Raise unless *program* plus *extra_clauses* is still stratified.

    This is the admission test the paper requires before a rule insertion:
    "each new arc obtained from the rule does not create in the dependency
    graph a cycle containing a negative arc".
    """
    extra = tuple(extra_clauses)
    graph = DependencyGraph(program)
    for clause in extra:
        graph.add_clause(clause)
    if not graph.is_stratified():
        raise unstratifiable_error(
            graph,
            tuple(program) + extra,
            "rule insertion would break stratification",
        )
