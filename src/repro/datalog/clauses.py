"""Clauses (rules) and programs.

A :class:`Clause` is ``head :- body`` where the body is a sequence of
literals; a clause with an empty body asserts its (ground) head — that is
how extensional facts live inside a program, exactly as in the paper where
the database ``P`` "is divided into a set of ground atoms defining
extensional relations [and] a set of clauses defining intentional
relations".

A :class:`Program` is an ordered collection of clauses with the derived
views used everywhere else: the set of asserted facts, the definitions map
(relation -> clauses concluding it), and the safety check.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from .atoms import Atom, Literal
from .errors import SafetyError
from .terms import Variable


class Clause:
    """A rule ``head :- L1, ..., Lk`` (k may be 0, making it a fact).

    ``line``/``column`` locate the clause in its source text when it was
    parsed (1-based; 0/0 for programmatically built clauses). They default
    to the head atom's position, are provenance only, and take no part in
    equality or hashing.
    """

    __slots__ = ("head", "body", "_hash", "line", "column")

    def __init__(
        self,
        head: Atom,
        body: Sequence[Literal] = (),
        *,
        line: int = 0,
        column: int = 0,
    ) -> None:
        self.head = head
        self.body = tuple(body)
        self._hash = hash((head, self.body))
        self.line = line or head.line
        self.column = column or head.column

    @property
    def is_fact(self) -> bool:
        """True for a bodiless clause with a ground head."""
        return not self.body and self.head.is_ground()

    @property
    def positive_body(self) -> tuple[Literal, ...]:
        return tuple(lit for lit in self.body if lit.positive)

    @property
    def negative_body(self) -> tuple[Literal, ...]:
        return tuple(lit for lit in self.body if not lit.positive)

    def body_relations(self) -> Iterator[tuple[str, bool]]:
        """Yield ``(relation, positive)`` for every body literal."""
        for lit in self.body:
            yield lit.relation, lit.positive

    def head_variables(self) -> set[Variable]:
        return set(self.head.variables())

    def unsafe_variables(
        self,
    ) -> tuple[tuple[Variable, ...], tuple[tuple[Literal, tuple[Variable, ...]], ...]]:
        """The range-restriction violations of the clause, if any.

        Returns ``(head_unbound, negative_unbound)``: the head variables not
        bound by any positive body literal (sorted by name, deduplicated),
        and for each offending negative literal the tuple of its unbound
        variables. Both are empty exactly when the clause is safe. This is
        the single computation behind :meth:`check_safety` (the raising
        enforcement path) and the analyzer's ``DL001`` diagnostic.
        """
        bound = {
            var
            for lit in self.body
            if lit.positive
            for var in lit.variables()
        }
        head_unbound = tuple(
            sorted(
                {var for var in self.head.variables() if var not in bound},
                key=lambda var: var.name,
            )
        )
        negative_unbound = []
        for lit in self.body:
            if lit.positive:
                continue
            unbound = tuple(
                sorted(
                    {var for var in lit.variables() if var not in bound},
                    key=lambda var: var.name,
                )
            )
            if unbound:
                negative_unbound.append((lit, unbound))
        return head_unbound, tuple(negative_unbound)

    def check_safety(self) -> None:
        """Raise :class:`SafetyError` unless the clause is range-restricted.

        Safety demands that every variable of the head and of every negative
        body literal also occurs in some positive body literal. Bodiless
        clauses must therefore have ground heads. The raised error carries
        diagnostic code ``DL001`` and the clause's source position when it
        was parsed from text.
        """
        head_unbound, negative_unbound = self.unsafe_variables()
        if head_unbound:
            names = ", ".join(var.name for var in head_unbound)
            raise SafetyError(
                f"unsafe clause {self}: head variable(s) {names} do not occur "
                "in a positive body literal",
                line=self.line,
                column=self.column,
            )
        if negative_unbound:
            lit, unbound = negative_unbound[0]
            names = ", ".join(var.name for var in unbound)
            raise SafetyError(
                f"unsafe clause {self}: variable(s) {names} of negative "
                f"literal {lit} do not occur in a positive body literal",
                line=lit.line or self.line,
                column=lit.column or self.column,
            )

    def __repr__(self) -> str:
        return f"Clause({self.head!r}, {self.body!r})"

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        rendered = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {rendered}."

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Clause)
            and other._hash == self._hash
            and other.head == self.head
            and other.body == self.body
        )

    def __hash__(self) -> int:
        return self._hash


def rule(head: Atom, *body: Literal) -> Clause:
    """Convenience constructor: ``rule(atom("p", X), pos("q", X))``."""
    return Clause(head, body)


class Program:
    """An ordered, duplicate-free collection of clauses.

    The order is preserved for reproducibility (the model does not depend on
    it, but iteration order of dict/set operations downstream does, and we
    want runs to be deterministic).
    """

    __slots__ = ("_clauses", "_index", "_tuple")

    def __init__(self, clauses: Iterable[Clause] = ()) -> None:
        self._clauses: list[Clause] = []
        self._index: dict[Clause, int] = {}
        self._tuple: tuple[Clause, ...] | None = None
        for clause in clauses:
            self.add(clause)

    def add(self, clause: Clause) -> bool:
        """Add *clause* unless already present. Return True when added."""
        if clause in self._index:
            return False
        clause.check_safety()
        self._index[clause] = len(self._clauses)
        self._clauses.append(clause)
        self._tuple = None
        return True

    def remove(self, clause: Clause) -> bool:
        """Remove *clause* if present. Return True when removed."""
        if clause not in self._index:
            return False
        del self._index[clause]
        self._clauses.remove(clause)
        self._tuple = None
        return True

    def __contains__(self, clause: Clause) -> bool:
        return clause in self._index

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    @property
    def clauses(self) -> tuple[Clause, ...]:
        if self._tuple is None:
            self._tuple = tuple(self._clauses)
        return self._tuple

    @property
    def rules(self) -> tuple[Clause, ...]:
        """The clauses with non-empty bodies (the intentional part)."""
        return tuple(clause for clause in self._clauses if clause.body)

    @property
    def facts(self) -> tuple[Atom, ...]:
        """The heads of the bodiless clauses (the extensional part)."""
        return tuple(
            clause.head for clause in self._clauses if not clause.body
        )

    def relations(self) -> set[str]:
        """Every relation name occurring anywhere in the program."""
        names: set[str] = set()
        for clause in self._clauses:
            names.add(clause.head.relation)
            for lit in clause.body:
                names.add(lit.relation)
        return names

    def definitions(self) -> Mapping[str, tuple[Clause, ...]]:
        """Map each relation to its definition.

        The *definition* of a relation is "the set of clauses using it in
        its conclusion" (section 2 of the paper). Relations that occur only
        in bodies map to an empty tuple.
        """
        result: dict[str, list[Clause]] = {name: [] for name in self.relations()}
        for clause in self._clauses:
            result[clause.head.relation].append(clause)
        return {name: tuple(defs) for name, defs in result.items()}

    def extensional_relations(self) -> set[str]:
        """Relations defined exclusively by ground facts (the EDB)."""
        edb: set[str] = set()
        idb: set[str] = set()
        for clause in self._clauses:
            target = idb if clause.body else edb
            target.add(clause.head.relation)
        for clause in self._clauses:
            for lit in clause.body:
                if lit.relation not in edb and lit.relation not in idb:
                    edb.add(lit.relation)  # mentioned but never concluded
        return edb - idb

    def intensional_relations(self) -> set[str]:
        """Relations concluded by at least one proper rule (the IDB)."""
        return {clause.head.relation for clause in self._clauses if clause.body}

    def copy(self) -> "Program":
        return Program(self._clauses)

    def __repr__(self) -> str:
        return f"Program({len(self._clauses)} clauses)"

    def __str__(self) -> str:
        return "\n".join(str(clause) for clause in self._clauses)
