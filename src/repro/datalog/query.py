"""Conjunctive queries over a model.

The paper chooses the *explicit representation* — maintaining ``M(P)`` —
precisely because it "is more interesting in case of frequent queries and
infrequent updates": a query is then a plain relational evaluation against
the materialised model, no deduction needed. This module provides that
evaluation: a query is a conjunction of literals (negation allowed, safe),
optionally with distinguished output variables.

    >>> rows = query(model, "accepted(X), not invited(X)")
    >>> rows = query(model, "author(A, P), accepted(P)", distinct=("A",))
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

from .atoms import Atom, Literal
from .clauses import Clause
from .errors import ParseError, SafetyError
from .evaluation import _iter_matches
from .model import Model
from .parser import _Parser
from .terms import Variable
from .unify import substitute_args

QuerySource = Union[str, Sequence[Literal]]


def parse_query(text: str) -> tuple[Literal, ...]:
    """Parse a comma-separated conjunction of literals (no period needed)."""
    stripped = text.strip()
    if stripped.endswith("."):
        stripped = stripped[:-1]
    parser = _Parser(stripped + " .")
    literals = [parser.parse_literal()]
    while parser._peek() is not None and parser._peek().kind == "COMMA":
        parser._next("COMMA")
        literals.append(parser.parse_literal())
    trailing = parser._peek()
    if trailing is None or trailing.kind != "PERIOD":
        raise ParseError("malformed query conjunction")
    return tuple(literals)


def _as_literals(source: QuerySource) -> tuple[Literal, ...]:
    if isinstance(source, str):
        return parse_query(source)
    return tuple(source)


def _check_safety(literals: Sequence[Literal]) -> None:
    bound = {
        var
        for lit in literals
        if lit.positive
        for var in lit.variables()
    }
    for lit in literals:
        if lit.positive:
            continue
        unbound = sorted(
            {var.name for var in lit.variables() if var not in bound}
        )
        if unbound:
            raise SafetyError(
                f"unsafe query: variable(s) {', '.join(unbound)} occur only "
                f"in the negative literal {lit}"
            )


def iter_answers(
    model: Model, source: QuerySource
) -> Iterator[dict[Variable, object]]:
    """Yield one substitution per satisfying instance of the conjunction."""
    literals = _as_literals(source)
    _check_safety(literals)
    probe = Clause(Atom("__query__"), literals)
    for subst, _facts in _iter_matches(probe, model):
        blocked = False
        for lit in probe.negative_body:
            ground = substitute_args(lit.args, subst)
            if model.contains(lit.relation, ground):
                blocked = True
                break
        if not blocked:
            yield subst


def query(
    model: Model,
    source: QuerySource,
    distinct: Optional[Sequence[str]] = None,
) -> list[tuple]:
    """Evaluate a conjunctive query; return sorted, de-duplicated rows.

    *distinct* names the output variables (default: all query variables in
    first-occurrence order). Rows are tuples of the output variables'
    values.
    """
    literals = _as_literals(source)
    if distinct is None:
        seen: list[Variable] = []
        for lit in literals:
            for var in lit.variables():
                if var not in seen:
                    seen.append(var)
        outputs = seen
    else:
        outputs = [Variable(name) for name in distinct]
    rows = {
        tuple(subst.get(var) for var in outputs)
        for subst in iter_answers(model, literals)
    }
    return sorted(rows, key=repr)


def ask(model: Model, source: QuerySource) -> bool:
    """Boolean query: does the conjunction have any satisfying instance?"""
    return next(iter_answers(model, source), None) is not None
