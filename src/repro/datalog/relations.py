"""Tuple storage for one relation: hash indexes and maintained statistics.

The saturation loops join rule bodies against relations; a join step asks
"give me the tuples whose columns ``(i, j, ...)`` equal ``(u, v, ...)``".
The store answers from a *composite* hash index keyed on the full bound
column tuple — built lazily the first time that column combination is
probed and maintained incrementally afterwards — so a multi-bound probe is
one dict lookup, not an intersection of single-column buckets. The
delta-driven mechanism of the paper is only profitable when those lookups
are constant-time.

The store also maintains per-column *distinct-value counts* on every
add/discard (a value→multiplicity map per column, so a discard knows when
a value died). They cost a few dict operations per mutation and give the
join planner real cardinality estimates: the expected number of rows
matching a probe on columns ``C`` is ``len(R) / Π_{c∈C} distinct(c)``,
which is what replaces the old flat 0.1-per-bound-column guess on skewed
data (experiment E17).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

Tuple_ = tuple  # ground tuples are plain Python tuples of constants


class Relation:
    """A named set of ground tuples of a fixed arity.

    The arity may be left unknown (None) and is adopted from the first
    tuple inserted; afterwards mismatching tuples are rejected.
    """

    __slots__ = ("name", "arity", "_tuples", "_indexes", "_value_counts")

    def __init__(self, name: str, arity: int | None = None):
        self.name = name
        self.arity = arity
        self._tuples: set[tuple] = set()
        # composite indexes, keyed by the (sorted) column tuple; each maps
        # the projection of a row onto those columns to the matching rows
        self._indexes: dict[tuple[int, ...], dict[tuple, set[tuple]]] = {}
        # per-column value→multiplicity maps; len() of one is the distinct
        # count. Keyed lazily so unknown-arity relations cost nothing.
        self._value_counts: dict[int, dict[Hashable, int]] = {}

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __contains__(self, row: tuple) -> bool:
        return row in self._tuples

    @property
    def tuples(self) -> frozenset[tuple]:
        return frozenset(self._tuples)

    def add(self, row: tuple) -> bool:
        """Insert *row*; return True when it was not present."""
        if self.arity is None:
            self.arity = len(row)
        elif len(row) != self.arity:
            raise ValueError(
                f"relation {self.name} has arity {self.arity}, got {row!r}"
            )
        if row in self._tuples:
            return False
        self._tuples.add(row)
        for column in range(self.arity):
            counts = self._value_counts.get(column)
            if counts is None:
                counts = self._value_counts[column] = {}
            value = row[column]
            counts[value] = counts.get(value, 0) + 1
        for columns, index in self._indexes.items():
            key = tuple(row[column] for column in columns)
            index.setdefault(key, set()).add(row)
        return True

    def discard(self, row: tuple) -> bool:
        """Remove *row*; return True when it was present."""
        if row not in self._tuples:
            return False
        self._tuples.discard(row)
        for column in range(self.arity or 0):
            counts = self._value_counts.get(column)
            if counts is None:
                continue
            value = row[column]
            remaining = counts.get(value, 0) - 1
            if remaining > 0:
                counts[value] = remaining
            else:
                counts.pop(value, None)
        for columns, index in self._indexes.items():
            key = tuple(row[column] for column in columns)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]
        return True

    def clear(self) -> None:
        self._tuples.clear()
        self._indexes.clear()
        self._value_counts.clear()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def distinct_count(self, column: int) -> int:
        """Number of distinct values in *column* (0 when empty)."""
        counts = self._value_counts.get(column)
        return 0 if counts is None else len(counts)

    def distinct_counts(self) -> dict[int, int]:
        """Distinct count per column, for introspection and tests."""
        return {
            column: len(counts)
            for column, counts in self._value_counts.items()
        }

    def estimated_matches(self, bound_columns: Iterable[int]) -> float:
        """Expected rows matching a probe binding *bound_columns*.

        The textbook uniform-independence estimate
        ``len(R) / Π distinct(c)``. The result may drop below one row —
        that is the signal a very selective probe should rank first.
        """
        estimate = float(len(self._tuples))
        for column in bound_columns:
            distinct = self.distinct_count(column)
            if distinct > 1:
                estimate /= distinct
        return estimate

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def index_for(
        self, columns: tuple[int, ...]
    ) -> dict[tuple, set[tuple]]:
        """The composite index on *columns* (sorted), built on first use
        and maintained incrementally afterwards."""
        index = self._indexes.get(columns)
        if index is None:
            index = {}
            for row in self._tuples:
                key = tuple(row[column] for column in columns)
                index.setdefault(key, set()).add(row)
            self._indexes[columns] = index
        return index

    def probe(self, columns: tuple[int, ...], key: tuple) -> set[tuple]:
        """Rows whose projection onto *columns* equals *key* — one dict
        lookup once the composite index exists. The hot path of the join
        executor; *columns* must be sorted ascending."""
        return self.index_for(columns).get(key, _EMPTY)

    def select(self, bound: Mapping[int, Hashable]) -> Iterable[tuple]:
        """Tuples matching the given column bindings.

        *bound* maps column positions to required values. With no bindings
        this is a full scan; otherwise one probe of the composite index on
        the full bound column combination.
        """
        if not bound:
            # Snapshot: saturation adds tuples to a relation while matching
            # a recursive rule against it.
            return iter(tuple(self._tuples))
        columns = tuple(sorted(bound))
        bucket = self.probe(columns, tuple(bound[c] for c in columns))
        return iter(tuple(bucket))

    def select_intersect(self, bound: Mapping[int, Hashable]) -> Iterable[tuple]:
        """The pre-composite probe: intersect single-column indexes.

        Scans the smallest single-column bucket and filters on the
        remaining bindings. Kept as the measurable baseline of experiment
        E17 (``Planner(composite=False)``) and as an escape hatch for
        probes too rare to deserve a composite index.
        """
        if not bound:
            return iter(tuple(self._tuples))
        best_column = None
        best_bucket: set[tuple] | None = None
        for column, value in bound.items():
            bucket = self.index_for((column,)).get((value,))
            if bucket is None:
                return iter(())
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_bucket = bucket
                best_column = column
        rest = [(c, v) for c, v in bound.items() if c != best_column]
        if not rest:
            return iter(tuple(best_bucket))
        return (
            row
            for row in tuple(best_bucket)
            if all(row[column] == value for column, value in rest)
        )

    def copy(self) -> "Relation":
        """An independent duplicate carrying indexes and statistics.

        Undo/redo, transaction rollback, and recompute baselines all go
        through :meth:`Model.copy`; dropping the lazily-built indexes here
        (as this method once did) made every copied model re-pay a full
        index rebuild on its first probe.
        """
        dup = Relation(self.name, self.arity)
        dup._tuples = set(self._tuples)
        dup._indexes = {
            columns: {key: set(bucket) for key, bucket in index.items()}
            for columns, index in self._indexes.items()
        }
        dup._value_counts = {
            column: dict(counts)
            for column, counts in self._value_counts.items()
        }
        return dup

    def __repr__(self) -> str:
        return f"Relation({self.name!r}/{self.arity}, {len(self._tuples)} tuples)"


_EMPTY: frozenset = frozenset()
