"""Tuple storage for one relation: hash indexes and maintained statistics.

The saturation loops join rule bodies against relations; a join step asks
"give me the tuples whose columns ``(i, j, ...)`` equal ``(u, v, ...)``".
The store answers from a *composite* hash index keyed on the full bound
column tuple — built lazily the first time that column combination is
probed and maintained incrementally afterwards — so a multi-bound probe is
one dict lookup, not an intersection of single-column buckets. The
delta-driven mechanism of the paper is only profitable when those lookups
are constant-time.

The store also maintains per-column *distinct-value counts* on every
add/discard (a value→multiplicity map per column, so a discard knows when
a value died). They cost a few dict operations per mutation and give the
join planner real cardinality estimates: the expected number of rows
matching a probe on columns ``C`` is ``len(R) / Π_{c∈C} distinct(c)``,
which is what replaces the old flat 0.1-per-bound-column guess on skewed
data (experiment E17). When the composite index on exactly ``C`` already
exists, its key count *is* the distinct count of the combination, so the
estimator uses it directly instead of assuming column independence.

Bulk mutation goes through :meth:`Relation.add_many` /
:meth:`Relation.discard_many` / :meth:`Relation.bulk_load`, which pay the
statistics once per batch (a C-level ``Counter`` pass per column) instead
of O(arity) dict operations per tuple — the contract snapshot restore,
``Model.copy``, transaction rollback and batch maintenance build on
(experiment E18).

Composite indexes are reclaimed when they go cold: every mutation call is
one *epoch*, and an index that has not been probed for
:attr:`Relation.index_idle_epochs` epochs is dropped (it rebuilds lazily
on the next probe), so a long-lived store serving varied ad-hoc queries
stops paying maintenance for dead indexes.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Iterator, Mapping

from ..obs import OBS

Tuple_ = tuple  # ground tuples are plain Python tuples of constants


class Relation:
    """A named set of ground tuples of a fixed arity.

    The arity may be left unknown (None) and is adopted from the first
    tuple inserted; afterwards mismatching tuples are rejected.
    """

    #: Mutation epochs a composite index may go unprobed before it is
    #: reclaimed. Large enough that the equivalence between per-tuple and
    #: bulk mutation (which advance the epoch at different rates) is
    #: unobservable in ordinary workloads; tests lower it per instance.
    INDEX_IDLE_EPOCHS = 4096

    __slots__ = (
        "name", "arity", "_tuples", "_indexes", "_value_counts",
        "_epoch", "_index_hits", "_index_last_probe", "_reclaim_at",
        "index_idle_epochs", "_shared",
    )

    def __init__(self, name: str, arity: int | None = None) -> None:
        self.name = name
        self.arity = arity
        self._tuples: set[tuple] = set()
        # composite indexes, keyed by the (sorted) column tuple; each maps
        # the projection of a row onto those columns to the matching rows
        self._indexes: dict[tuple[int, ...], dict[tuple, set[tuple]]] = {}
        # per-column value→multiplicity maps; len() of one is the distinct
        # count. Keyed lazily so unknown-arity relations cost nothing.
        self._value_counts: dict[int, dict[Hashable, int]] = {}
        # index-reclamation bookkeeping: one epoch per mutation call, a
        # probe-hit count and last-probed epoch per composite index.
        # _reclaim_at is a lower bound on the earliest epoch any index
        # can be stale, so the per-mutation check is one comparison.
        self._epoch = 0
        self._index_hits: dict[tuple[int, ...], int] = {}
        self._index_last_probe: dict[tuple[int, ...], int] = {}
        self._reclaim_at = 0
        self.index_idle_epochs = self.INDEX_IDLE_EPOCHS
        # copy-on-write: True while the tuple/index/statistics containers
        # are shared with another Relation produced by copy(); the first
        # mutation on either side privatizes (_own) before touching them.
        self._shared = False

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __contains__(self, row: tuple) -> bool:
        return row in self._tuples

    @property
    def tuples(self) -> frozenset[tuple]:
        return frozenset(self._tuples)

    def _adopt_arity(self, row: tuple) -> None:
        if self.arity is None:
            self.arity = len(row)
        elif len(row) != self.arity:
            raise ValueError(
                f"relation {self.name} has arity {self.arity}, got {row!r}"
            )

    def _bump_epoch(self) -> None:
        """One mutation epoch: reclaim composite indexes that went cold.

        The hot path is one comparison: ``_reclaim_at`` lower-bounds the
        earliest epoch any index can be stale (probes only postpone
        staleness, so the bound stays valid between scans). Only when the
        clock reaches it does the O(live indexes) scan run, dropping
        stale indexes *before* the mutation would maintain them and
        recomputing the bound from the survivors' last-probe epochs.
        """
        self._epoch += 1
        idle = self.index_idle_epochs
        if not idle or not self._indexes or self._epoch < self._reclaim_at:
            return
        epoch = self._epoch
        last = self._index_last_probe
        stale = [
            columns
            for columns in self._indexes
            if epoch - last.get(columns, 0) > idle
        ]
        for columns in stale:
            del self._indexes[columns]
            self._index_hits.pop(columns, None)
            last.pop(columns, None)
        if stale and OBS.enabled:
            OBS.metrics.counter(
                "repro_index_reclaims_total",
                "Cold composite indexes dropped by epoch reclamation",
                relation=self.name,
            ).inc(len(stale))
        if self._indexes:
            self._reclaim_at = (
                min(last[columns] for columns in self._indexes) + idle + 1
            )
        else:
            self._reclaim_at = epoch + idle + 1

    def _own(self) -> None:
        """Privatize the shared containers before the first write.

        A relation and its :meth:`copy` share every container until one of
        them mutates; the deep copy the old ``copy()`` paid eagerly is
        paid here, once, by the first side that actually writes. Read-only
        copies (checkpoints, rollback saves, reader sessions pinning an
        epoch) therefore cost O(1) regardless of relation size.
        """
        if not self._shared:
            return
        self._shared = False
        self._tuples = set(self._tuples)
        # list() snapshots: a sibling copy on another thread may publish a
        # lazily-built index into the still-shared dict while we privatize.
        self._indexes = {
            columns: {key: set(bucket) for key, bucket in index.items()}
            for columns, index in list(self._indexes.items())
        }
        self._value_counts = {
            column: dict(counts)
            for column, counts in self._value_counts.items()
        }
        self._index_hits = dict(self._index_hits)
        self._index_last_probe = dict(self._index_last_probe)

    def add(self, row: tuple) -> bool:
        """Insert *row*; return True when it was not present."""
        self._adopt_arity(row)
        self._own()
        self._bump_epoch()
        if row in self._tuples:
            return False
        self._tuples.add(row)
        for column in range(self.arity):
            counts = self._value_counts.get(column)
            if counts is None:
                counts = self._value_counts[column] = {}
            value = row[column]
            counts[value] = counts.get(value, 0) + 1
        for columns, index in self._indexes.items():
            key = tuple(row[column] for column in columns)
            index.setdefault(key, set()).add(row)
        return True

    def discard(self, row: tuple) -> bool:
        """Remove *row*; return True when it was present."""
        self._own()
        self._bump_epoch()
        if row not in self._tuples:
            return False
        self._tuples.discard(row)
        for column in range(self.arity or 0):
            counts = self._value_counts.get(column)
            if counts is None:
                continue
            value = row[column]
            remaining = counts.get(value, 0) - 1
            if remaining > 0:
                counts[value] = remaining
            else:
                counts.pop(value, None)
        for columns, index in self._indexes.items():
            key = tuple(row[column] for column in columns)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]
        return True

    # ------------------------------------------------------------------
    # Bulk operations (experiment E18)
    # ------------------------------------------------------------------

    def _batch_count(self, rows: Iterable[tuple], sign: int) -> None:
        """Fold *rows* into the per-column statistics in one pass per
        column — a C-level ``Counter`` over the column's values instead of
        O(arity) dict operations per tuple."""
        if not rows or self.arity is None:
            return
        for column in range(self.arity):
            counts = self._value_counts.get(column)
            if counts is None:
                counts = self._value_counts[column] = {}
            batch = Counter(row[column] for row in rows)
            if sign > 0:
                for value, gained in batch.items():
                    counts[value] = counts.get(value, 0) + gained
            else:
                for value, lost in batch.items():
                    remaining = counts.get(value, 0) - lost
                    if remaining > 0:
                        counts[value] = remaining
                    else:
                        counts.pop(value, None)

    def add_many(self, rows: Iterable[tuple]) -> int:
        """Insert a batch of rows; return how many were new.

        One mutation epoch, one set union, one batched statistics pass,
        and one index-maintenance sweep over the genuinely new rows —
        equivalent to calling :meth:`add` per row (same tuples, same
        distinct counts, same index contents) at a fraction of the
        per-tuple bookkeeping.
        """
        rows = rows if isinstance(rows, (set, frozenset)) else set(rows)
        if not rows:
            return 0
        for row in rows:
            self._adopt_arity(row)
        self._own()
        self._bump_epoch()
        new = rows - self._tuples if self._tuples else set(rows)
        if not new:
            return 0
        self._tuples |= new
        self._batch_count(new, +1)
        for columns, index in self._indexes.items():
            setdefault = index.setdefault
            for row in new:
                setdefault(tuple(row[c] for c in columns), set()).add(row)
        return len(new)

    def discard_many(self, rows: Iterable[tuple]) -> int:
        """Remove a batch of rows; return how many were present."""
        rows = rows if isinstance(rows, (set, frozenset)) else set(rows)
        self._own()
        self._bump_epoch()
        dead = self._tuples & rows
        if not dead:
            return 0
        self._tuples -= dead
        self._batch_count(dead, -1)
        for columns, index in self._indexes.items():
            for row in dead:
                key = tuple(row[c] for c in columns)
                bucket = index.get(key)
                if bucket is not None:
                    bucket.discard(row)
                    if not bucket:
                        del index[key]
        return len(dead)

    @classmethod
    def bulk_load(
        cls, name: str, rows: Iterable[tuple], arity: int | None = None
    ) -> "Relation":
        """Construct a relation around *rows* with deferred maintenance.

        The fastest ingest path: the tuple set is built in one pass, the
        statistics are batch-counted once at the end, and no indexes exist
        yet (they fill lazily on first probe) — exactly the state a fresh
        relation reaches after per-tuple :meth:`add` calls, minus the
        per-tuple overhead. Snapshot restore and ``Model`` bulk loading
        are built on this.
        """
        relation = cls(name, arity)
        tuples = set(rows)
        for row in tuples:
            relation._adopt_arity(row)
        relation._tuples = tuples
        relation._batch_count(tuples, +1)
        return relation

    def clear(self) -> None:
        # Rebind fresh containers instead of clearing in place: the old
        # ones may be shared with a copy-on-write duplicate.
        self._shared = False
        self._tuples = set()
        self._indexes = {}
        self._value_counts = {}
        self._index_hits = {}
        self._index_last_probe = {}
        self._reclaim_at = 0

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def distinct_count(self, column: int) -> int:
        """Number of distinct values in *column* (0 when empty)."""
        counts = self._value_counts.get(column)
        return 0 if counts is None else len(counts)

    def distinct_counts(self) -> dict[int, int]:
        """Distinct count per column, for introspection and tests."""
        return {
            column: len(counts)
            for column, counts in self._value_counts.items()
        }

    def index_columns(self) -> tuple[tuple[int, ...], ...]:
        """The column combinations with a live composite index (sorted)."""
        return tuple(sorted(self._indexes))

    def index_probe_counts(self) -> dict[tuple[int, ...], int]:
        """Probe hits per live composite index, for reclamation tests."""
        return {
            columns: self._index_hits.get(columns, 0)
            for columns in self._indexes
        }

    @property
    def mutation_epoch(self) -> int:
        """Mutation calls so far — the clock index reclamation runs on."""
        return self._epoch

    def estimated_matches(self, bound_columns: Iterable[int]) -> float:
        """Expected rows matching a probe binding *bound_columns*.

        When the composite index on exactly this column combination is
        already live, its key count is the *exact* distinct count of the
        combination, so the estimate ``len(R) / len(index)`` is immune to
        column correlation (experiment E17d). Otherwise the textbook
        uniform-independence estimate ``len(R) / Π distinct(c)`` applies.
        The result may drop below one row — that is the signal a very
        selective probe should rank first.
        """
        columns = tuple(sorted(bound_columns))
        if len(columns) > 1:
            index = self._indexes.get(columns)
            if index:
                return len(self._tuples) / len(index)
        estimate = float(len(self._tuples))
        for column in columns:
            distinct = self.distinct_count(column)
            if distinct > 1:
                estimate /= distinct
        return estimate

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def index_for(
        self, columns: tuple[int, ...]
    ) -> dict[tuple, set[tuple]]:
        """The composite index on *columns* (sorted), built on first use
        and maintained incrementally afterwards."""
        index = self._indexes.get(columns)
        if index is None:
            index = {}
            for row in self._tuples:
                key = tuple(row[column] for column in columns)
                index.setdefault(key, set()).add(row)
            self._indexes[columns] = index
            if OBS.enabled:
                OBS.metrics.counter(
                    "repro_index_builds_total",
                    "Composite indexes built lazily on first probe",
                    relation=self.name,
                ).inc()
        self._index_hits[columns] = self._index_hits.get(columns, 0) + 1
        self._index_last_probe[columns] = self._epoch
        return index

    def probe(self, columns: tuple[int, ...], key: tuple) -> set[tuple]:
        """Rows whose projection onto *columns* equals *key* — one dict
        lookup once the composite index exists. The hot path of the join
        executor; *columns* must be sorted ascending."""
        bucket = self.index_for(columns).get(key, _EMPTY)
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_index_probes_total", "Composite-index probes",
                relation=self.name, outcome="hit" if bucket else "miss",
            ).inc()
        return bucket

    def probe_excluding(
        self, columns: tuple[int, ...], key: tuple, exclude: set[tuple]
    ) -> set[tuple]:
        """:meth:`probe` with *exclude* subtracted — one C-level set
        difference instead of a per-candidate membership filter, and the
        result is a fresh set, safe against saturation mutating the live
        bucket underneath the caller. The materialized restricted delta
        of the semi-naive loop (experiment E17c/E18)."""
        bucket = self.index_for(columns).get(key)
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_index_probes_total", "Composite-index probes",
                relation=self.name, outcome="hit" if bucket else "miss",
            ).inc()
        if not bucket:
            return set()
        return bucket - exclude

    def rows_excluding(self, exclude: set[tuple]) -> set[tuple]:
        """All rows minus *exclude* — the full-scan counterpart of
        :meth:`probe_excluding`, also a fresh set."""
        return self._tuples - exclude

    def select(self, bound: Mapping[int, Hashable]) -> Iterable[tuple]:
        """Tuples matching the given column bindings.

        *bound* maps column positions to required values. With no bindings
        this is a full scan; otherwise one probe of the composite index on
        the full bound column combination.
        """
        if not bound:
            # Snapshot: saturation adds tuples to a relation while matching
            # a recursive rule against it.
            return iter(tuple(self._tuples))
        columns = tuple(sorted(bound))
        bucket = self.probe(columns, tuple(bound[c] for c in columns))
        return iter(tuple(bucket))

    def select_intersect(self, bound: Mapping[int, Hashable]) -> Iterable[tuple]:
        """The pre-composite probe: intersect single-column indexes.

        Scans the smallest single-column bucket and filters on the
        remaining bindings. Kept as the measurable baseline of experiment
        E17 (``Planner(composite=False)``) and as an escape hatch for
        probes too rare to deserve a composite index.
        """
        if not bound:
            return iter(tuple(self._tuples))
        best_column = None
        best_bucket: set[tuple] | None = None
        for column, value in bound.items():
            bucket = self.index_for((column,)).get((value,))
            if bucket is None:
                return iter(())
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_bucket = bucket
                best_column = column
        rest = [(c, v) for c, v in bound.items() if c != best_column]
        if not rest:
            return iter(tuple(best_bucket))
        return (
            row
            for row in tuple(best_bucket)
            if all(row[column] == value for column, value in rest)
        )

    def copy(self) -> "Relation":
        """An O(1) copy-on-write duplicate carrying indexes and statistics.

        Undo/redo, transaction rollback, engine checkpoints, and recompute
        baselines all go through :meth:`Model.copy`. Both sides share
        every container until one of them mutates (:meth:`_own` pays the
        deep copy then), so pinning a snapshot of a large model is
        constant-time — what the per-session epochs of the concurrent
        service need. Two caveats, both benign: an index built lazily
        while still shared lands in both relations (their tuple sets are
        the identical object then, so the index is correct for both), and
        probe-hit statistics recorded while shared are visible to both
        sides until the split.
        """
        dup = Relation(self.name, self.arity)
        self._shared = True
        dup._shared = True
        dup._tuples = self._tuples
        dup._indexes = self._indexes
        dup._value_counts = self._value_counts
        dup._epoch = self._epoch
        dup._index_hits = self._index_hits
        dup._index_last_probe = self._index_last_probe
        dup._reclaim_at = self._reclaim_at
        dup.index_idle_epochs = self.index_idle_epochs
        return dup

    def __repr__(self) -> str:
        return f"Relation({self.name!r}/{self.arity}, {len(self._tuples)} tuples)"


_EMPTY: frozenset = frozenset()
