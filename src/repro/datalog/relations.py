"""Tuple storage for one relation, with lazy per-column hash indexes.

The saturation loops join rule bodies against relations; a join step asks
"give me the tuples whose column *i* equals *v*". The store answers from a
per-column index built lazily the first time a column is used as a join key
and maintained incrementally afterwards — the delta-driven mechanism of the
paper is only profitable when those lookups are constant-time.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

Tuple_ = tuple  # ground tuples are plain Python tuples of constants


class Relation:
    """A named set of ground tuples of a fixed arity.

    The arity may be left unknown (None) and is adopted from the first
    tuple inserted; afterwards mismatching tuples are rejected.
    """

    __slots__ = ("name", "arity", "_tuples", "_indexes")

    def __init__(self, name: str, arity: int | None = None):
        self.name = name
        self.arity = arity
        self._tuples: set[tuple] = set()
        self._indexes: dict[int, dict[Hashable, set[tuple]]] = {}

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __contains__(self, row: tuple) -> bool:
        return row in self._tuples

    @property
    def tuples(self) -> frozenset[tuple]:
        return frozenset(self._tuples)

    def add(self, row: tuple) -> bool:
        """Insert *row*; return True when it was not present."""
        if self.arity is None:
            self.arity = len(row)
        elif len(row) != self.arity:
            raise ValueError(
                f"relation {self.name} has arity {self.arity}, got {row!r}"
            )
        if row in self._tuples:
            return False
        self._tuples.add(row)
        for column, index in self._indexes.items():
            index.setdefault(row[column], set()).add(row)
        return True

    def discard(self, row: tuple) -> bool:
        """Remove *row*; return True when it was present."""
        if row not in self._tuples:
            return False
        self._tuples.discard(row)
        for column, index in self._indexes.items():
            bucket = index.get(row[column])
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[row[column]]
        return True

    def clear(self) -> None:
        self._tuples.clear()
        self._indexes.clear()

    def _index_on(self, column: int) -> dict[Hashable, set[tuple]]:
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for row in self._tuples:
                index.setdefault(row[column], set()).add(row)
            self._indexes[column] = index
        return index

    def select(self, bound: Mapping[int, Hashable]) -> Iterable[tuple]:
        """Tuples matching the given column bindings.

        *bound* maps column positions to required values. With no bindings
        this is a full scan; otherwise the smallest indexed candidate set is
        scanned and filtered on the remaining bindings.
        """
        if not bound:
            # Snapshot: saturation adds tuples to a relation while matching
            # a recursive rule against it.
            return iter(tuple(self._tuples))
        # Probe every bound column's index and start from the smallest
        # bucket; building indexes is amortised over subsequent calls.
        best_column = None
        best_bucket: set[tuple] | None = None
        for column, value in bound.items():
            bucket = self._index_on(column).get(value)
            if bucket is None:
                return iter(())
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_bucket = bucket
                best_column = column
        rest = [(c, v) for c, v in bound.items() if c != best_column]
        if not rest:
            return iter(tuple(best_bucket))
        return (
            row
            for row in tuple(best_bucket)
            if all(row[column] == value for column, value in rest)
        )

    def copy(self) -> "Relation":
        dup = Relation(self.name, self.arity)
        dup._tuples = set(self._tuples)
        return dup

    def __repr__(self) -> str:
        return f"Relation({self.name!r}/{self.arity}, {len(self._tuples)} tuples)"
