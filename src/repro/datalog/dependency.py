"""The dependency graph D_P and the static Pos/Neg closures of section 4.1.

Following the paper: ``(r, q)`` belongs to D_P iff there is a clause using
``r`` in a conclusion and ``q`` in a hypothesis. Each arc carries whether
the reference is positive, negative, or both (the same pair of relations may
be referenced both ways, not necessarily in the same rule).

``Pos(p)`` is the set of relations from which ``p`` depends through an even
number of negations, ``Neg(p)`` through an odd number. Both are computed by
a breadth-first search over (relation, parity) states. Note ``p ∈ Pos(p)``
always (the empty path has zero, hence an even number of, negative arcs) —
the fact-deletion procedure of section 4.1 relies on this to evict the
deleted relation's own facts.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from .clauses import Clause, Program


class Arc:
    """A labelled arc of the dependency graph."""

    __slots__ = ("source", "target", "positive", "negative")

    def __init__(self, source: str, target: str) -> None:
        self.source = source
        self.target = target
        self.positive = False
        self.negative = False

    def __repr__(self) -> str:
        signs = []
        if self.positive:
            signs.append("+")
        if self.negative:
            signs.append("-")
        return f"Arc({self.source} -> {self.target}, {'/'.join(signs)})"


class DependencyGraph:
    """Relation-level dependency graph of a program.

    Arcs point from the concluding relation to the relations of its
    hypotheses, so following arcs forward walks *down* the dependency chain.
    """

    def __init__(self, clauses: Iterable[Clause] = ()) -> None:
        self._arcs: dict[tuple[str, str], Arc] = {}
        self._successors: dict[str, set[str]] = {}
        self._predecessors: dict[str, set[str]] = {}
        self._relations: set[str] = set()
        for clause in clauses:
            self.add_clause(clause)

    @classmethod
    def of_program(cls, program: Program) -> "DependencyGraph":
        return cls(program)

    def add_clause(self, clause: Clause) -> None:
        """Record the arcs contributed by *clause*."""
        head = clause.head.relation
        self._touch(head)
        for relation, positive in clause.body_relations():
            self._touch(relation)
            arc = self._arcs.get((head, relation))
            if arc is None:
                arc = Arc(head, relation)
                self._arcs[(head, relation)] = arc
                self._successors[head].add(relation)
                self._predecessors[relation].add(head)
            if positive:
                arc.positive = True
            else:
                arc.negative = True

    def _touch(self, relation: str) -> None:
        if relation not in self._relations:
            self._relations.add(relation)
            self._successors[relation] = set()
            self._predecessors[relation] = set()

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(self._relations)

    def arcs(self) -> Iterator[Arc]:
        return iter(self._arcs.values())

    def arc(self, source: str, target: str) -> Arc | None:
        return self._arcs.get((source, target))

    def successors(self, relation: str) -> frozenset[str]:
        """Relations that *relation* references in its defining bodies."""
        return frozenset(self._successors.get(relation, ()))

    def predecessors(self, relation: str) -> frozenset[str]:
        """Relations whose definitions reference *relation*."""
        return frozenset(self._predecessors.get(relation, ()))

    # ------------------------------------------------------------------
    # Strongly connected components (iterative Tarjan, so deep negation
    # chains do not hit the Python recursion limit).
    # ------------------------------------------------------------------

    def sccs(self) -> list[frozenset[str]]:
        """SCCs in reverse topological order (dependencies first).

        Tarjan emits a component only after all components it depends on
        (through arcs leaving it) have been emitted, which is exactly the
        order stratification needs.
        """
        index_counter = 0
        indexes: dict[str, int] = {}
        lowlinks: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        result: list[frozenset[str]] = []

        for root in sorted(self._relations):
            if root in indexes:
                continue
            work: list[tuple[str, Iterator[str]]] = [
                (root, iter(sorted(self._successors[root])))
            ]
            indexes[root] = lowlinks[root] = index_counter
            index_counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in indexes:
                        indexes[succ] = lowlinks[succ] = index_counter
                        index_counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(self._successors[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlinks[node] = min(lowlinks[node], indexes[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
                if lowlinks[node] == indexes[node]:
                    component = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    result.append(frozenset(component))
        return result

    # ------------------------------------------------------------------
    # Stratifiability
    # ------------------------------------------------------------------

    def negative_arc_in_cycle(self) -> Arc | None:
        """Return a negative arc lying on a cycle, or None when stratified.

        A program is stratified iff no cycle of its dependency graph
        contains a negative arc, i.e. iff no negative arc connects two
        relations of the same SCC.
        """
        component_of: dict[str, int] = {}
        for i, component in enumerate(self.sccs()):
            for relation in component:
                component_of[relation] = i
        for arc in self._arcs.values():
            if not arc.negative:
                continue
            if component_of[arc.source] == component_of[arc.target]:
                return arc
        return None

    def is_stratified(self) -> bool:
        return self.negative_arc_in_cycle() is None

    def negative_cycle_witness(self) -> tuple[Arc, ...]:
        """A concrete cycle through a negative arc, or ``()`` when stratified.

        The witness is a sequence of arcs ``a -> b -> ... -> a`` whose first
        arc is the negative one: the shortest completion of
        :meth:`negative_arc_in_cycle` back to its source inside the same
        strongly connected component. This is the path a diagnostic can show
        a user — *why* the program is not stratified, not merely which arc
        offends.
        """
        offending = self.negative_arc_in_cycle()
        if offending is None:
            return ()
        component_of: dict[str, int] = {}
        for i, component in enumerate(self.sccs()):
            for relation in component:
                component_of[relation] = i
        home = component_of[offending.source]
        # BFS from the arc's target back to its source, restricted to the
        # SCC (so every hop provably stays on a cycle); sorted successors
        # keep the witness deterministic.
        parents: dict[str, str] = {}
        queue: deque[str] = deque([offending.target])
        seen = {offending.target}
        while queue:
            node = queue.popleft()
            if node == offending.source:
                break
            for succ in sorted(self._successors.get(node, ())):
                if succ in seen or component_of.get(succ) != home:
                    continue
                seen.add(succ)
                parents[succ] = node
                queue.append(succ)
        path: list[str] = [offending.source]
        node = offending.source
        while node != offending.target:
            node = parents[node]
            path.append(node)
        path.reverse()  # target ... source
        arcs = [offending]
        for source, target in zip(path, path[1:]):
            arcs.append(self._arcs[(source, target)])
        return tuple(arcs)

    # ------------------------------------------------------------------
    # Static Pos / Neg closures (section 4.1)
    # ------------------------------------------------------------------

    def pos_neg_sets(self, relation: str) -> tuple[frozenset[str], frozenset[str]]:
        """Compute (Pos(relation), Neg(relation)).

        BFS over (relation, parity) states; an arc that is both positive and
        negative contributes transitions for both parities, exactly as the
        paper's definition quantifies over *some* path.
        """
        # The empty path makes Pos reflexive — for every relation, known to
        # the graph or not (a relation whose last rule was deleted must
        # still satisfy p ∈ Pos(p) so its facts are evicted).
        pos: set[str] = {relation}
        neg: set[str] = set()
        seen: set[tuple[str, bool]] = set()
        queue: deque[tuple[str, bool]] = deque()
        start = (relation, False)  # False = even number of negative arcs
        if relation in self._relations:
            seen.add(start)
            queue.append(start)
        while queue:
            node, odd = queue.popleft()
            for succ in self._successors.get(node, ()):
                arc = self._arcs[(node, succ)]
                for arc_negative in (False, True):
                    if arc_negative and not arc.negative:
                        continue
                    if not arc_negative and not arc.positive:
                        continue
                    next_state = (succ, odd != arc_negative)
                    if next_state in seen:
                        continue
                    seen.add(next_state)
                    (neg if next_state[1] else pos).add(succ)
                    queue.append(next_state)
        return frozenset(pos), frozenset(neg)

    def dependents_of(self, relation: str) -> frozenset[str]:
        """All relations that depend on *relation*, transitively.

        Includes *relation* itself. This is the set whose static Pos/Neg
        sets must be recomputed after a rule update about *relation*
        (section 4.1, rule insertion step 2).
        """
        seen = {relation}
        queue = deque([relation])
        while queue:
            node = queue.popleft()
            for pred in self._predecessors.get(node, ()):
                if pred not in seen:
                    seen.add(pred)
                    queue.append(pred)
        return frozenset(seen)

    def arc_path(self, source: str, target: str) -> tuple[Arc, ...]:
        """A shortest arc path ``source -> ... -> target``, or ``()``.

        Follows successor arcs (head towards body, i.e. *down* the
        dependency chain), so a non-empty result witnesses that *source*
        depends on *target*. ``source == target`` yields the empty path.
        BFS with sorted successors keeps the witness deterministic — the
        same style as :meth:`negative_cycle_witness`, reusable through
        :func:`format_witness` for conflict diagnostics.
        """
        if source == target:
            return ()
        parents: dict[str, str] = {}
        queue: deque[str] = deque([source])
        seen = {source}
        while queue:
            node = queue.popleft()
            if node == target:
                break
            for succ in sorted(self._successors.get(node, ())):
                if succ not in seen:
                    seen.add(succ)
                    parents[succ] = node
                    queue.append(succ)
        else:
            return ()
        path = [target]
        node = target
        while node != source:
            node = parents[node]
            path.append(node)
        path.reverse()
        return tuple(
            self._arcs[(a, b)] for a, b in zip(path, path[1:])
        )

    def depends_on(self, relation: str) -> frozenset[str]:
        """All relations that *relation* depends on, transitively (incl. self)."""
        seen = {relation}
        queue = deque([relation])
        while queue:
            node = queue.popleft()
            for succ in self._successors.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    queue.append(succ)
        return frozenset(seen)


def format_witness(arcs: Iterable[Arc]) -> str:
    """Render a witness cycle like ``p -not-> q -> r -> p``.

    Negative arcs render as ``-not->`` (arcs that are both positive and
    negative count as negative here: the negative reference is what breaks
    stratification).
    """
    arcs = list(arcs)
    if not arcs:
        return "(no cycle)"
    parts = [arcs[0].source]
    for arc in arcs:
        parts.append("-not->" if arc.negative else "->")
        parts.append(arc.target)
    return " ".join(parts)


class StaticDependencies:
    """Cache of the static Pos/Neg sets of every relation.

    The dynamic solutions consult these sets while expanding signed support
    entries (section 4.2), so lookups must be cheap; the cache is rebuilt
    only for the relations affected by a rule update.
    """

    def __init__(self, graph: DependencyGraph) -> None:
        self._graph = graph
        self._pos: dict[str, frozenset[str]] = {}
        self._neg: dict[str, frozenset[str]] = {}

    def pos(self, relation: str) -> frozenset[str]:
        """Static Pos(relation); empty for unknown relations."""
        if relation not in self._pos:
            self._compute(relation)
        return self._pos[relation]

    def neg(self, relation: str) -> frozenset[str]:
        """Static Neg(relation); empty for unknown relations."""
        if relation not in self._neg:
            self._compute(relation)
        return self._neg[relation]

    def _compute(self, relation: str) -> None:
        pos, neg = self._graph.pos_neg_sets(relation)
        self._pos[relation] = pos
        self._neg[relation] = neg

    def invalidate(self, relations: Iterable[str]) -> None:
        """Drop cached sets (e.g. for ``dependents_of`` after a rule update)."""
        for relation in relations:
            self._pos.pop(relation, None)
            self._neg.pop(relation, None)

    def rebase(self, graph: DependencyGraph) -> None:
        """Point at a new graph and drop the whole cache."""
        self._graph = graph
        self._pos.clear()
        self._neg.clear()
