"""Parser for the textual Datalog syntax.

The accepted syntax is the usual one::

    % a comment (also: # comment)
    submitted(1).  submitted(2).
    accepted(X) :- submitted(X), not rejected(X).
    path(X, Z) <- edge(X, Y), path(Y, Z).   % "<-" is accepted for ":-"

* relation names and constants are lowercase identifiers, integers, or
  quoted strings (``'paper one'``);
* variables start with an uppercase letter or ``_``;
* negation is written ``not``, ``\\+`` or ``~``;
* every clause ends with a period.

The parser is a hand-rolled tokenizer + recursive descent with position
tracking, so syntax errors point at the offending token.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from .atoms import Atom, Literal
from .clauses import Clause, Program
from .errors import ParseError
from .terms import Term, Variable

_PUNCTUATION = {
    ":-": "ARROW",
    "<-": "ARROW",
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    ".": "PERIOD",
    "\\+": "NOT",
    "~": "NOT",
}


class Token(NamedTuple):
    kind: str  # NAME, VARIABLE, INTEGER, STRING, ARROW, LPAREN, ...
    value: object
    line: int
    column: int


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens with 1-based line/column positions."""
    line = 1
    column = 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch in "%#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        two = text[i : i + 2]
        if two in _PUNCTUATION:
            yield Token(_PUNCTUATION[two], two, line, column)
            i += 2
            column += 2
            continue
        if ch in _PUNCTUATION:
            yield Token(_PUNCTUATION[ch], ch, line, column)
            i += 1
            column += 1
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            chunks: list[str] = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    chunks.append(text[j + 1])
                    j += 2
                else:
                    chunks.append(text[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated string", line, column)
            yield Token("STRING", "".join(chunks), line, column)
            width = j + 1 - i
            i = j + 1
            column += width
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            yield Token("INTEGER", int(text[i:j]), line, column)
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word == "not":
                yield Token("NOT", word, line, column)
            elif word[0].isupper() or word[0] == "_":
                yield Token("VARIABLE", word, line, column)
            else:
                yield Token("NAME", word, line, column)
            column += j - i
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._tokens = list(tokenize(text))
        self._pos = 0

    def _peek(self) -> Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self, expected: str | None = None) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError(
                f"unexpected end of input (expected {expected or 'more input'})"
            )
        if expected is not None and token.kind != expected:
            raise ParseError(
                f"expected {expected}, found {token.value!r}",
                token.line,
                token.column,
            )
        self._pos += 1
        return token

    def parse_program(self) -> Program:
        program = Program()
        while self._peek() is not None:
            program.add(self.parse_clause())
        return program

    def parse_clauses(self) -> list[Clause]:
        clauses: list[Clause] = []
        while self._peek() is not None:
            clauses.append(self.parse_clause())
        return clauses

    def parse_clause(self) -> Clause:
        head = self.parse_atom()
        token = self._peek()
        if token is not None and token.kind == "ARROW":
            self._next("ARROW")
            body = [self.parse_literal()]
            while self._peek() is not None and self._peek().kind == "COMMA":
                self._next("COMMA")
                body.append(self.parse_literal())
        else:
            body = []
        self._next("PERIOD")
        # The clause starts where its head does; Clause() copies the head
        # atom's position by default.
        return Clause(head, body)

    def parse_literal(self) -> Literal:
        token = self._peek()
        if token is not None and token.kind == "NOT":
            self._next("NOT")
            return Literal(self.parse_atom(), positive=False)
        return Literal(self.parse_atom(), positive=True)

    def parse_atom(self) -> Atom:
        name_token = self._next("NAME")
        relation = str(name_token.value)
        args: list[Term] = []
        token = self._peek()
        if token is not None and token.kind == "LPAREN":
            self._next("LPAREN")
            args.append(self.parse_term())
            while self._peek() is not None and self._peek().kind == "COMMA":
                self._next("COMMA")
                args.append(self.parse_term())
            self._next("RPAREN")
        return Atom(
            relation,
            tuple(args),
            line=name_token.line,
            column=name_token.column,
        )

    def parse_term(self) -> Term:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input (expected a term)")
        if token.kind == "VARIABLE":
            self._next()
            return Variable(str(token.value))
        if token.kind in ("NAME", "STRING"):
            self._next()
            return str(token.value)
        if token.kind == "INTEGER":
            self._next()
            return token.value
        raise ParseError(
            f"expected a term, found {token.value!r}", token.line, token.column
        )


def parse_program(text: str) -> Program:
    """Parse a full program (any number of clauses)."""
    return _Parser(text).parse_program()


def parse_clauses(text: str) -> list[Clause]:
    """Parse a clause list without admission checks.

    Unlike :func:`parse_program`, the clauses are returned as-is: nothing
    is deduplicated and — crucially for the static analyzer — no
    :class:`~repro.datalog.errors.SafetyError` is raised for unsafe
    clauses, so a defective program can be *diagnosed* instead of merely
    rejected at its first flaw.
    """
    return _Parser(text).parse_clauses()


def parse_clause(text: str) -> Clause:
    """Parse exactly one clause; raise if trailing input remains."""
    parser = _Parser(text)
    clause = parser.parse_clause()
    trailing = parser._peek()
    if trailing is not None:
        raise ParseError(
            f"trailing input after clause: {trailing.value!r}",
            trailing.line,
            trailing.column,
        )
    return clause


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"accepted(5)"`` (no trailing period)."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    trailing = parser._peek()
    if trailing is not None:
        raise ParseError(
            f"trailing input after atom: {trailing.value!r}",
            trailing.line,
            trailing.column,
        )
    return atom


def parse_fact(text: str) -> Atom:
    """Parse a single ground atom; raise when it contains variables."""
    atom = parse_atom(text)
    if not atom.is_ground():
        raise ParseError(f"fact {atom} contains variables")
    return atom
