"""The stratified database: a program plus its update admission rules.

Section 3 of the paper: a stratified database is a function-free stratified
logic program divided into an extensional part (ground atoms) and an
intentional part (rules), with two admission rules for updates:

* a rule insertion must leave the program stratified (checked on the
  dependency graph before the rule is admitted);
* deletions are only allowed "for the relations defined in the extensional
  part" — concretely, only an *asserted* fact (a bodiless clause) can be
  retracted.

The database object owns the program, its dependency graph, its (maximal)
stratification and the static Pos/Neg cache, keeping them consistent across
updates; maintenance engines build on top of it.
"""

from __future__ import annotations

from .atoms import Atom
from .clauses import Clause, Program
from .dependency import DependencyGraph, StaticDependencies
from .errors import UpdateError
from .evaluation import DerivationListener, compute_model
from .model import Model
from .parser import parse_program
from .stratify import Stratification, stratify, unstratifiable_error


class StratifiedDatabase:
    """A stratified program with consistent derived structures."""

    def __init__(self, program: Program | str, granularity: str = "level") -> None:
        if isinstance(program, str):
            program = parse_program(program)
        self._program = program.copy()
        self._granularity = granularity
        self._graph = DependencyGraph(self._program)
        if not self._graph.is_stratified():
            raise unstratifiable_error(
                self._graph, self._program, "program is not stratified"
            )
        self._stratification = stratify(self._program, granularity)
        self._statics = StaticDependencies(self._graph)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    @property
    def program(self) -> Program:
        return self._program

    @property
    def graph(self) -> DependencyGraph:
        return self._graph

    @property
    def stratification(self) -> Stratification:
        return self._stratification

    @property
    def statics(self) -> StaticDependencies:
        return self._statics

    @property
    def granularity(self) -> str:
        return self._granularity

    def stratum_of(self, relation: str) -> int:
        return self._stratification.stratum_of(relation)

    def stratum_count(self) -> int:
        return len(self._stratification)

    def clauses_of_stratum(self, index: int) -> tuple[Clause, ...]:
        return self._stratification.clauses_at(index)

    def extensional_relations(self) -> set[str]:
        return self._program.extensional_relations()

    def intensional_relations(self) -> set[str]:
        return self._program.intensional_relations()

    def is_asserted(self, fact: Atom) -> bool:
        """True when *fact* is a bodiless clause of the program."""
        return Clause(fact) in self._program

    def analyze(self, ignore: tuple = ()) -> "Report":
        """Static diagnostics for the current program.

        Returns a :class:`repro.analysis.Report`; a live database is
        stratified and safe by construction, so the report can only carry
        the softer codes (arity drift, undefined references, dead rules,
        singleton variables, duplicates/subsumption, cross products).
        Imported lazily: :mod:`repro.analysis` sits above this module.
        """
        from ..analysis import analyze_program

        return analyze_program(self._program, ignore=ignore, graph=self._graph)

    def compute_model(
        self,
        method: str = "seminaive",
        listener: DerivationListener | None = None,
    ) -> Model:
        """The standard model M(P), from scratch."""
        return compute_model(
            self._program,
            stratification=self._stratification,
            method=method,
            listener=listener,
        )

    # ------------------------------------------------------------------
    # Updates (program-level; engines drive the model-level work)
    # ------------------------------------------------------------------

    def assert_fact(self, fact: Atom) -> bool:
        """Add *fact* as a bodiless clause. Returns False if already there."""
        if not fact.is_ground():
            raise UpdateError(f"cannot assert non-ground atom {fact}")
        clause = Clause(fact)
        added = self._program.add(clause)
        if not added:
            return False
        if fact.relation in self._graph.relations:
            self._stratification.add_clause(clause)
        else:
            self._rebuild()
        return True

    def retract_fact(self, fact: Atom) -> None:
        """Remove the assertion of *fact*.

        Raises :class:`UpdateError` when the fact was never asserted — a
        derived fact cannot be deleted directly (the paper only allows
        deletions in the extensional part).
        """
        clause = Clause(fact)
        if not self._program.remove(clause):
            raise UpdateError(
                f"cannot delete {fact}: it is not an asserted fact"
            )
        self._stratification.remove_clause(clause)

    def add_rule(self, clause: Clause) -> None:
        """Admit a rule insertion, re-checking stratifiability first."""
        self._check_rule_insertion(clause)
        self._program.add(clause)
        self._rebuild()

    def _check_rule_insertion(self, clause: Clause) -> None:
        if clause in self._program:
            raise UpdateError(f"rule already present: {clause}")
        trial = DependencyGraph(self._program)
        trial.add_clause(clause)
        if not trial.is_stratified():
            raise unstratifiable_error(
                trial,
                self._program.clauses + (clause,),
                "rule insertion would break stratification",
            )

    def admits(self, operation: str, subject: Atom | Clause) -> None:
        """Raise the error *operation* would raise, without applying it.

        A dry run of the admission rules above, for callers (the durable
        store) that must refuse an update *before* taking irreversible
        bookkeeping steps such as discarding a redo tail.
        """
        if operation == "insert_fact":
            if not subject.is_ground():
                raise UpdateError(f"cannot assert non-ground atom {subject}")
        elif operation == "delete_fact":
            if Clause(subject) not in self._program:
                raise UpdateError(
                    f"cannot delete {subject}: it is not an asserted fact"
                )
        elif operation == "insert_rule":
            subject.check_safety()
            self._check_rule_insertion(subject)
        elif operation == "delete_rule":
            if not subject.body:
                raise UpdateError(
                    f"use retract_fact to delete the asserted fact "
                    f"{subject.head}"
                )
            if subject not in self._program:
                raise UpdateError(f"rule not present: {subject}")
        else:
            raise ValueError(f"unknown operation {operation!r}")

    def remove_rule(self, clause: Clause) -> None:
        """Remove a rule; raises :class:`UpdateError` when absent."""
        if not clause.body:
            raise UpdateError(
                f"use retract_fact to delete the asserted fact {clause.head}"
            )
        if not self._program.remove(clause):
            raise UpdateError(f"rule not present: {clause}")
        self._rebuild()

    def _rebuild(self) -> None:
        """Recompute graph, stratification and statics after a rule change."""
        self._graph = DependencyGraph(self._program)
        self._stratification = stratify(self._program, self._granularity)
        self._statics.rebase(self._graph)

    def source_text(self) -> str:
        """Deterministic textual form of the program that round-trips.

        Rules come first in insertion order, then the asserted facts sorted
        by relation and row; every clause ends with its period and its own
        line. Parsing the text back yields a program with the same clause
        set, and saving an unchanged reload reproduces the bytes — the
        contract the CLI ``save`` command and the store rely on.
        """
        rules = [str(clause) for clause in self._program.rules]
        facts = sorted(
            (str(Clause(fact)) for fact in self._program.facts),
            key=str,
        )
        lines = rules + facts
        return "\n".join(lines) + ("\n" if lines else "")

    def copy(self) -> "StratifiedDatabase":
        return StratifiedDatabase(self._program, self._granularity)

    def __repr__(self) -> str:
        return (
            f"StratifiedDatabase({len(self._program)} clauses, "
            f"{self.stratum_count()} strata)"
        )
