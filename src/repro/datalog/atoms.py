"""Atoms and literals.

An :class:`Atom` is a relation name applied to a tuple of terms; a ground
atom is the paper's notion of a *fact*. A :class:`Literal` is an atom with a
polarity; rule bodies are sequences of literals, and a negative literal
``not p(t)`` is the paper's negative hypothesis, read "if so far ``p(t)``
cannot be confirmed".

Both classes are immutable with cached hashes: the saturation loops use
facts as set elements and dictionary keys throughout.
"""

from __future__ import annotations

from typing import Iterator

from .terms import Term, Variable, format_term, is_ground


class Atom:
    """A relation name applied to terms: ``p(t1, ..., tn)``.

    Ground atoms (no variables) are facts. Atom equality is structural.

    ``line``/``column`` are the 1-based source position of the relation name
    when the atom was parsed from text (0/0 otherwise, e.g. for derived
    facts). Positions are provenance, not identity: they take no part in
    equality or hashing, so a parsed atom and the same atom built
    programmatically remain interchangeable as set elements and dict keys.
    """

    __slots__ = ("relation", "args", "_hash", "line", "column")

    def __init__(
        self,
        relation: str,
        args: tuple[Term, ...] = (),
        *,
        line: int = 0,
        column: int = 0,
    ) -> None:
        if not relation:
            raise ValueError("relation name must be non-empty")
        self.relation = relation
        self.args = tuple(args)
        self._hash = hash((relation, self.args))
        self.line = line
        self.column = column

    @property
    def arity(self) -> int:
        return len(self.args)

    def is_ground(self) -> bool:
        """True when the atom contains no variables (i.e. it is a fact)."""
        return is_ground(self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of the atom, in order, with duplicates."""
        for term in self.args:
            if isinstance(term, Variable):
                yield term

    def __repr__(self) -> str:
        return f"Atom({self.relation!r}, {self.args!r})"

    def __str__(self) -> str:
        if not self.args:
            return self.relation
        rendered = ", ".join(format_term(term) for term in self.args)
        return f"{self.relation}({rendered})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and other._hash == self._hash
            and other.relation == self.relation
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash


class Literal:
    """A signed atom: positive (``p(t)``) or negative (``not p(t)``)."""

    __slots__ = ("atom", "positive", "_hash")

    def __init__(self, atom: Atom, positive: bool = True) -> None:
        self.atom = atom
        self.positive = positive
        self._hash = hash((atom, positive))

    @property
    def relation(self) -> str:
        return self.atom.relation

    @property
    def args(self) -> tuple[Term, ...]:
        return self.atom.args

    @property
    def line(self) -> int:
        """Source line of the underlying atom (0 when not parsed)."""
        return self.atom.line

    @property
    def column(self) -> int:
        """Source column of the underlying atom (0 when not parsed)."""
        return self.atom.column

    def negate(self) -> "Literal":
        """Return the literal with flipped polarity."""
        return Literal(self.atom, not self.positive)

    def variables(self) -> Iterator[Variable]:
        return self.atom.variables()

    def __repr__(self) -> str:
        return f"Literal({self.atom!r}, positive={self.positive})"

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and other._hash == self._hash
            and other.positive == self.positive
            and other.atom == self.atom
        )

    def __hash__(self) -> int:
        return self._hash


def atom(relation: str, *args: Term) -> Atom:
    """Convenience constructor: ``atom("edge", "a", X)``."""
    return Atom(relation, args)


def pos(relation: str, *args: Term) -> Literal:
    """Positive literal constructor for the programmatic API."""
    return Literal(Atom(relation, args), positive=True)


def neg(relation: str, *args: Term) -> Literal:
    """Negative literal constructor for the programmatic API."""
    return Literal(Atom(relation, args), positive=False)


def fact(relation: str, *args: Term) -> Atom:
    """Construct a ground atom, raising if any argument is a variable."""
    built = Atom(relation, args)
    if not built.is_ground():
        raise ValueError(f"fact {built} contains variables")
    return built
