"""The backchaining interpreter of Theorem (vi).

[ABW]'s theorem, quoted in section 2 of the paper: "there is a backchaining
interpreter for P using the negation as failure rule and loop checking (but
working only with fully instantiated clauses) which tests for membership in
M(P) when P is function-free."

This module implements that interpreter — the *implicit representation*
alternative the paper decides against (section 3): membership queries
without materialising the model.

* a ground goal succeeds when it is asserted, or some fully instantiated
  clause concludes it with every positive subgoal provable and every
  negative subgoal finitely failing (negation as failure);
* *loop checking*: a positive subgoal equal to an ancestor goal fails that
  proof path (positive recursion cannot ground out through itself);
* negative subgoals start fresh proofs — in a stratified program they only
  call strictly downward, so the recursion terminates.

Successes are memoised unconditionally. Failures are memoised only when no
loop check fired on the path (a loop-blocked failure is relative to its
ancestors), so the interpreter stays sound for every stratified program.

Clause instantiation enumerates the active domain, exactly the "fully
instantiated clauses" of the theorem — exponential in the per-clause
variable count, which is the practical argument for the explicit
representation (benchmarked against it in the test suite).
"""

from __future__ import annotations

from itertools import product
from typing import Union

from .atoms import Atom
from .clauses import Program
from .model import Model
from .parser import parse_fact, parse_program
from .terms import Variable
from .unify import match_atom, substitute_args


class Backchainer:
    """Top-down membership tests for the standard model."""

    def __init__(self, program: Union[Program, str]) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        self._program = program
        self._definitions = program.definitions()
        self._asserted = set(program.facts)
        self._domain = sorted(
            {
                value
                for clause in program
                for atom in [clause.head, *[lit.atom for lit in clause.body]]
                for value in atom.args
                if not isinstance(value, Variable)
            },
            key=repr,
        )
        self._proved: set[Atom] = set()
        self._failed: set[Atom] = set()

    def holds(self, goal: Union[Atom, str]) -> bool:
        """Is *goal* a member of M(P)?"""
        if isinstance(goal, str):
            goal = parse_fact(goal)
        result, _pure = self._prove(goal, frozenset())
        return result

    def _prove(
        self, goal: Atom, ancestors: frozenset[Atom]
    ) -> tuple[bool, bool]:
        """Returns (provable, pure).

        *pure* is False when a loop check pruned some path, in which case a
        failure must not be cached (it may be an artifact of the context).
        """
        if goal in self._proved:
            return True, True
        if goal in self._failed:
            return False, True
        if goal in self._asserted:
            self._proved.add(goal)
            return True, True
        if goal in ancestors:
            return False, False  # loop check fired
        below = ancestors | {goal}
        pure = True
        for clause in self._definitions.get(goal.relation, ()):
            if not clause.body:
                continue  # non-matching assertion handled above
            head_subst = match_atom(clause.head, goal)
            if head_subst is None:
                continue
            free = sorted(
                {
                    var
                    for lit in clause.body
                    for var in lit.variables()
                    if var not in head_subst
                },
                key=lambda var: var.name,
            )
            for values in product(self._domain, repeat=len(free)):
                subst = dict(head_subst)
                subst.update(zip(free, values))
                ok = True
                for lit in clause.body:
                    ground = Atom(
                        lit.relation, substitute_args(lit.args, subst)
                    )
                    if lit.positive:
                        sub_ok, sub_pure = self._prove(ground, below)
                        pure = pure and sub_pure
                        if not sub_ok:
                            ok = False
                            break
                    else:
                        # negation as failure: a fresh proof, strictly lower
                        # stratum in a stratified program
                        sub_ok, sub_pure = self._prove(ground, frozenset())
                        pure = pure and sub_pure
                        if sub_ok:
                            ok = False
                            break
                if ok:
                    self._proved.add(goal)
                    return True, True
        if pure:
            self._failed.add(goal)
        return False, pure

    def check_against(self, model: Model) -> bool:
        """Agreement test: every model fact holds, a sample of absent
        atoms fails. Used by the property tests."""
        for fact in model.facts():
            if not self.holds(fact):
                return False
        return True
