"""Substitutions and matching.

Rule evaluation over a database of ground facts only ever needs *matching*
(one-sided unification): bind the variables of a rule literal against a
ground tuple. Substitutions are plain dicts from :class:`Variable` to
constants.
"""

from __future__ import annotations

from typing import Mapping, MutableMapping, Optional

from .atoms import Atom
from .terms import Term, Variable

Substitution = Mapping[Variable, Term]


class _UnboundType:
    """The "no binding yet" marker.

    Any hashable constant — including ``None`` — is a legal term
    (:mod:`.terms`), so absence of a binding must be signalled by a value no
    program can contain. Compare with ``is``.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "UNBOUND"


UNBOUND: Term = _UnboundType()


def match_tuple(
    pattern: tuple[Term, ...],
    ground: tuple[Term, ...],
    subst: MutableMapping[Variable, Term],
) -> bool:
    """Extend *subst* in place so that pattern[subst] == ground.

    Returns False (and may leave *subst* partially extended — callers pass a
    scratch copy) when the match fails. Constants must be equal; variables
    must be consistent with existing bindings.
    """
    for pat, value in zip(pattern, ground):
        if isinstance(pat, Variable):
            bound = subst.get(pat, UNBOUND)
            if bound is UNBOUND:
                subst[pat] = value
            elif bound != value:
                return False
        elif pat != value:
            return False
    return True


def match_atom(
    pattern: Atom, fact: Atom, subst: Optional[Substitution] = None
) -> Optional[dict[Variable, Term]]:
    """Match *pattern* against ground *fact*, extending *subst*.

    Returns the extended substitution as a new dict, or None on failure.
    """
    if pattern.relation != fact.relation or pattern.arity != fact.arity:
        return None
    scratch: dict[Variable, Term] = dict(subst) if subst else {}
    if match_tuple(pattern.args, fact.args, scratch):
        return scratch
    return None


def substitute_args(
    args: tuple[Term, ...], subst: Substitution
) -> tuple[Term, ...]:
    """Apply *subst* to a tuple of terms."""
    return tuple(
        subst.get(term, term) if isinstance(term, Variable) else term
        for term in args
    )


def substitute(atom: Atom, subst: Substitution) -> Atom:
    """Apply *subst* to an atom."""
    return Atom(atom.relation, substitute_args(atom.args, subst))


def ground_atom(atom: Atom, subst: Substitution) -> Atom:
    """Apply *subst* and verify that the result is ground."""
    result = substitute(atom, subst)
    if not result.is_ground():
        missing = sorted({var.name for var in result.variables()})
        raise ValueError(
            f"atom {atom} not fully instantiated: unbound {', '.join(missing)}"
        )
    return result
