"""Clark's completion — Theorem (v) of [ABW], quoted in section 2.

"M(P) is a model of comp(P), Clark's completion of P." Over the active
Herbrand base, comp(P) replaces every definition by an if-and-only-if:
a ground atom holds exactly when some instance of a defining clause has a
true body. This module checks both directions against an interpretation:

* the *if* direction is modelhood (a satisfied body forces the head);
* the *only-if* direction is supportedness (every member has a satisfied
  defining instance; non-members must have none).

Used by the property tests to certify the models our saturation produces,
and handy as a standalone sanity check for hand-maintained models.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, NamedTuple, Union

from .atoms import Atom
from .clauses import Program
from .evaluation import iter_derivations
from .model import Model
from .parser import parse_program
from .terms import Variable


class CompletionViolation(NamedTuple):
    """One counterexample to comp(P) in the checked interpretation."""

    atom: Atom
    direction: str  # "if" (body true, head absent) or "only-if"

    def __str__(self) -> str:
        if self.direction == "if":
            return (
                f"{self.atom}: a defining instance has a true body but the "
                "atom is absent"
            )
        return f"{self.atom}: present but no defining instance supports it"


def _supported_atoms(program: Program, model: Model) -> set[Atom]:
    """Heads of all clause instances whose bodies hold in *model*."""
    return {
        derivation.head
        for clause in program
        for derivation in iter_derivations(clause, model)
    }


def active_herbrand_base(program: Program) -> Iterator[Atom]:
    """Ground atoms over the program's relations and active domain.

    The particularization axioms of the paper close the domain over the
    constants occurring in the program.
    """
    domain = sorted(
        {
            value
            for clause in program
            for atom in [clause.head, *[lit.atom for lit in clause.body]]
            for value in atom.args
            if not isinstance(value, Variable)
        },
        key=repr,
    )
    arities: dict[str, int] = {}
    for clause in program:
        arities[clause.head.relation] = clause.head.arity
        for lit in clause.body:
            arities[lit.relation] = lit.atom.arity
    for relation in sorted(arities):
        for args in product(domain, repeat=arities[relation]):
            yield Atom(relation, args)


def completion_violations(
    program: Union[Program, str], model: Model
) -> list[CompletionViolation]:
    """Every violation of comp(P) by *model* (empty list = model of comp)."""
    if isinstance(program, str):
        program = parse_program(program)
    supported = _supported_atoms(program, model)
    violations = [
        CompletionViolation(atom, "if")
        for atom in supported
        if atom not in model
    ]
    violations.extend(
        CompletionViolation(fact, "only-if")
        for fact in model.facts()
        if fact not in supported
    )
    return violations


def is_model_of_completion(
    program: Union[Program, str], model: Model
) -> bool:
    """Does *model* satisfy comp(P) (over the atoms it mentions)?"""
    return not completion_violations(program, model)


def enumerate_supported_models(
    program: Union[Program, str], limit_atoms: int = 14
) -> Iterator[frozenset[Atom]]:
    """Brute-force enumeration of the supported models of a tiny program.

    Used to check Theorem (ii)/(iv)-style minimality claims exactly: among
    all supported models, ``M(P)`` must be one, and no proper subset of it
    may be another. Exponential — refuses programs whose active Herbrand
    base exceeds *limit_atoms*.
    """
    if isinstance(program, str):
        program = parse_program(program)
    base = list(dict.fromkeys(active_herbrand_base(program)))
    if len(base) > limit_atoms:
        raise ValueError(
            f"Herbrand base has {len(base)} atoms; limit is {limit_atoms}"
        )
    for mask in range(2 ** len(base)):
        candidate = Model(
            atom for i, atom in enumerate(base) if mask >> i & 1
        )
        if is_model_of_completion(program, candidate):
            yield candidate.as_set()
