"""The maintained Herbrand interpretation.

A :class:`Model` is the explicit representation the paper chooses to
maintain (section 3): the set of facts of ``M(P)``, stored per relation so
joins and the per-stratum layers ``N_i = M_i \\ M_{i-1}`` are cheap. Since a
relation's definition lives in exactly one stratum, the layer of a fact is
determined by its relation — the model itself does not track strata.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .atoms import Atom
from .relations import Relation


class Model:
    """A set of facts organised per relation."""

    __slots__ = ("_relations",)

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        for fact in facts:
            self.add(fact)

    def relation(self, name: str, arity: int | None = None) -> Relation:
        """The store for *name*, created empty on first use.

        Passing an *arity* that conflicts with the existing store's is an
        error — the same mismatch :meth:`Relation.add` rejects per tuple.
        (It used to be silently ignored, which let a caller's wrong arity
        pass unnoticed until a confusing failure at insert time.)
        """
        store = self._relations.get(name)
        if store is None:
            store = Relation(name, arity)
            self._relations[name] = store
        elif arity is not None and store.arity is not None and arity != store.arity:
            raise ValueError(
                f"relation {name} has arity {store.arity}, got arity {arity}"
            )
        elif arity is not None and store.arity is None:
            store.arity = arity
        return store

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> Iterator[str]:
        return iter(self._relations)

    def add(self, fact: Atom) -> bool:
        """Insert *fact*; return True when it was new."""
        store = self._relations.get(fact.relation)
        if store is None:
            store = Relation(fact.relation, fact.arity)
            self._relations[fact.relation] = store
        return store.add(fact.args)

    def discard(self, fact: Atom) -> bool:
        """Remove *fact*; return True when it was present."""
        store = self._relations.get(fact.relation)
        if store is None:
            return False
        return store.discard(fact.args)

    # ------------------------------------------------------------------
    # Bulk operations (experiment E18)
    # ------------------------------------------------------------------

    def add_many(self, facts: Iterable[Atom]) -> int:
        """Insert a batch of facts; return how many were new.

        Groups the batch per relation and hands each group to
        :meth:`Relation.add_many`, so the statistics and index
        maintenance are paid once per (relation, batch) instead of once
        per fact.
        """
        by_relation: dict[str, list[tuple]] = {}
        for fact in facts:
            by_relation.setdefault(fact.relation, []).append(fact.args)
        added = 0
        for name, rows in by_relation.items():
            store = self._relations.get(name)
            if store is None:
                store = self._relations[name] = Relation(name)
            added += store.add_many(rows)
        return added

    def discard_many(self, facts: Iterable[Atom]) -> int:
        """Remove a batch of facts; return how many were present."""
        by_relation: dict[str, list[tuple]] = {}
        for fact in facts:
            by_relation.setdefault(fact.relation, []).append(fact.args)
        removed = 0
        for name, rows in by_relation.items():
            store = self._relations.get(name)
            if store is not None:
                removed += store.discard_many(rows)
        return removed

    def relation_data(self) -> list[tuple[str, int | None, list[tuple]]]:
        """Columnar dump: ``(name, arity, sorted rows)`` per non-empty
        relation, relations sorted by name, rows by repr.

        The deterministic bulk counterpart of :meth:`sorted_facts`:
        flattening it to atoms reproduces that list exactly, and
        :meth:`from_relation_data` bulk-loads it back. Engine snapshots
        (``state_dict``) and the v2 store codec carry the model in this
        form.
        """
        return [
            (name, store.arity, sorted(store, key=repr))
            for name, store in sorted(self._relations.items())
            if len(store)
        ]

    @classmethod
    def from_relation_data(
        cls, data: Iterable[tuple[str, int, Iterable[tuple]]]
    ) -> "Model":
        """Rebuild a model from :meth:`relation_data` via bulk loads."""
        model = cls()
        for name, arity, rows in data:
            model._relations[name] = Relation.bulk_load(name, rows, arity)
        return model

    def __contains__(self, fact: Atom) -> bool:
        store = self._relations.get(fact.relation)
        return store is not None and fact.args in store

    def contains(self, relation: str, args: tuple) -> bool:
        store = self._relations.get(relation)
        return store is not None and args in store

    def __len__(self) -> int:
        return sum(len(store) for store in self._relations.values())

    def __iter__(self) -> Iterator[Atom]:
        return self.facts()

    def facts(self) -> Iterator[Atom]:
        """All facts, relation by relation."""
        for name, store in self._relations.items():
            for row in store:
                yield Atom(name, row)

    def facts_of(self, relation: str) -> Iterator[Atom]:
        store = self._relations.get(relation)
        if store is None:
            return iter(())
        return (Atom(relation, row) for row in store)

    def count_of(self, relation: str) -> int:
        store = self._relations.get(relation)
        return 0 if store is None else len(store)

    def estimated_matches(
        self, relation: str, bound_columns: Iterable[int]
    ) -> float:
        """Expected rows of *relation* matching a probe on *bound_columns*.

        Cardinality divided by the product of the bound columns' distinct
        counts (:meth:`Relation.estimated_matches`) — the planner's
        estimator. 0.0 for an absent relation.
        """
        store = self._relations.get(relation)
        return 0.0 if store is None else store.estimated_matches(bound_columns)

    def per_relation_counts(self) -> dict[str, int]:
        return {
            name: len(store)
            for name, store in self._relations.items()
            if len(store)
        }

    def as_set(self) -> frozenset[Atom]:
        return frozenset(self.facts())

    def sorted_facts(self) -> list[Atom]:
        """All facts in a stable order (relation name, then row repr).

        Serialization (snapshots, journals) iterates the model through this
        so that equal models always produce byte-identical output,
        independent of set/dict iteration order.
        """
        return [
            Atom(name, row)
            for name in sorted(self._relations)
            for row in sorted(self._relations[name], key=repr)
        ]

    def restrict(self, predicate: Callable[[str], bool]) -> frozenset[Atom]:
        """The facts whose relation satisfies *predicate*."""
        return frozenset(
            Atom(name, row)
            for name, store in self._relations.items()
            if predicate(name)
            for row in store
        )

    def copy(self) -> "Model":
        dup = Model()
        dup._relations = {
            name: store.copy() for name, store in self._relations.items()
        }
        return dup

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Model):
            return NotImplemented
        return self.as_set() == other.as_set()

    def __repr__(self) -> str:
        return f"Model({len(self)} facts over {len(self._relations)} relations)"

    def pretty(self) -> str:
        """Multi-line rendering, sorted, for tests and examples."""
        lines = []
        for name in sorted(self._relations):
            for row in sorted(self._relations[name], key=repr):
                lines.append(str(Atom(name, row)))
        return "\n".join(lines)
