"""Join planning: clauses compiled into statistics-ordered join plans.

The saturation loops spend almost all their time enumerating the ground
instances of rule bodies. This module compiles each clause once into a
:class:`ClausePlan` — per-literal column maps, integer variable slots, and
argument templates for the head and the negative hypotheses — and executes
it with a substitution *array* instead of per-row dict copies. At execution
time the positive literals are greedily reordered by estimated candidate
count — relation cardinality divided by the distinct-value counts of the
bound columns, statistics :class:`~.relations.Relation` maintains
incrementally — so a rule like ``q(Y) :- big(X, Y), probe(X)`` starts from
``probe`` and index-probes ``big`` instead of scanning it (experiments E16
and E17). Each executed step knows its full bound-column combination at
compile time and probes the relation's *composite* index on it: one dict
lookup per step, not an intersection of single-column buckets.

Three invariants keep the planner a drop-in replacement for the naive
left-to-right enumerator in :mod:`.evaluation`:

* the delta literal of the [RLK] mechanism is always placed first, so the
  increment keeps driving the whole join;
* exclusion sets (the triangular old/new split) stay keyed by *original*
  body position, whatever the executed order;
* the positive body facts of every match are reported in original body
  order, so derivations are identical objects whichever order ran.

Unbound slots hold :data:`~.unify.UNBOUND`, never ``None`` — ``None`` is a
legal constant and must join like any other value.

Plans depend only on the clause structure; the cardinality statistics are
read per execution, so a cached plan never goes stale. A :class:`Planner`
caches plans per clause with bounded LRU eviction (facts are compiled but
not cached — they have no join): engines own one each, *pin* their rule
plans so ad-hoc probe churn can never evict them, and invalidate on rule
insertion/deletion so deleted rules do not pin memory. The module keeps a
bounded default instance for ad-hoc callers (queries, constraint checks).

Plans also carry *support templates*: engines attach their per-clause
support records (rule pointers, signed base sets) to the plan once and
reuse them on every derivation, instead of re-deriving the clause-level
part of a support on each firing (see the listeners in
:mod:`repro.core`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping, Optional

from .atoms import Atom
from .terms import Variable
from .unify import UNBOUND

if TYPE_CHECKING:  # imported lazily to avoid a cycle with clauses.py
    from .clauses import Clause
    from .model import Model

# An argument template: (True, slot) reads the substitution array, while
# (False, value) is a constant (or a variable foreign to the positive body,
# left in place exactly as substitute_args would leave it).
ArgSpec = tuple[tuple[bool, object], ...]

ESTIMATORS = ("stats", "heuristic")
"""``stats`` divides cardinality by the bound columns' distinct counts;
``heuristic`` is the pre-statistics flat 0.1-per-bound-column discount,
kept as the measurable baseline of experiment E17."""


class LiteralPlan:
    """Order-independent description of one positive body literal."""

    __slots__ = ("position", "relation", "const_cols", "var_cols", "slots")

    def __init__(
        self,
        position: int,
        relation: str,
        const_cols: tuple[tuple[int, object], ...],
        var_cols: tuple[tuple[int, int], ...],
    ) -> None:
        self.position = position
        self.relation = relation
        self.const_cols = const_cols  # (column, constant) pairs
        self.var_cols = var_cols  # (column, slot) pairs, in column order
        self.slots = frozenset(slot for _column, slot in var_cols)

    def bound_columns(self, bound_slots: set[int]) -> list[int]:
        """The columns a probe binds once *bound_slots* are available."""
        columns = [column for column, _constant in self.const_cols]
        columns.extend(
            column for column, slot in self.var_cols if slot in bound_slots
        )
        return columns


class _Step:
    """One literal of an executable order, split against what is bound.

    ``bound_cols`` were bound by earlier steps (pushed into the index
    probe); ``free_cols`` bind their slot from the row (first occurrence of
    the variable in this step); ``check_cols`` are repeated occurrences of a
    slot first bound *within this same step* and are verified per row.

    ``probe_cols``/``probe_parts`` describe the step's full bound-column
    combination — constants plus already-bound variables, in column order.
    They are fixed at compile time, which is where the composite index on
    exactly that combination is requested: the executor builds the key
    tuple from the substitution array and resolves the step in one dict
    lookup.
    """

    __slots__ = (
        "position", "relation", "select_consts", "bound_cols", "free_cols",
        "check_cols", "probe_cols", "probe_parts",
    )

    def __init__(self, literal: LiteralPlan, bound_slots: set[int]) -> None:
        self.position = literal.position
        self.relation = literal.relation
        self.select_consts = dict(literal.const_cols)
        bound: list[tuple[int, int]] = []
        free: list[tuple[int, int]] = []
        check: list[tuple[int, int]] = []
        fresh: set[int] = set()
        for column, slot in literal.var_cols:
            if slot in bound_slots:
                bound.append((column, slot))
            elif slot in fresh:
                check.append((column, slot))
            else:
                fresh.add(slot)
                free.append((column, slot))
        self.bound_cols = tuple(bound)
        self.free_cols = tuple(free)
        self.check_cols = tuple(check)
        probe: list[tuple[int, tuple[bool, object]]] = [
            (column, (False, constant))
            for column, constant in literal.const_cols
        ]
        probe.extend((column, (True, slot)) for column, slot in bound)
        probe.sort(key=lambda item: item[0])
        self.probe_cols = tuple(column for column, _spec in probe)
        self.probe_parts = tuple(spec for _column, spec in probe)
        bound_slots |= fresh


class ClausePlan:
    """A compiled clause: slots, literal maps, head/negative templates."""

    __slots__ = (
        "clause", "slot_of", "num_slots", "literals", "head_spec",
        "negatives", "positive_relations", "negated_relations", "_orders",
        "_templates", "step_history",
    )

    def __init__(self, clause: "Clause") -> None:
        self.clause = clause
        slot_of: dict[Variable, int] = {}
        literals = []
        for position, literal in enumerate(clause.positive_body):
            const_cols = []
            var_cols = []
            for column, term in enumerate(literal.args):
                if isinstance(term, Variable):
                    slot = slot_of.setdefault(term, len(slot_of))
                    var_cols.append((column, slot))
                else:
                    const_cols.append((column, term))
            literals.append(
                LiteralPlan(
                    position, literal.relation,
                    tuple(const_cols), tuple(var_cols),
                )
            )
        self.slot_of = slot_of
        self.num_slots = len(slot_of)
        self.literals = tuple(literals)
        self.head_spec = self._spec(clause.head.args)
        self.negatives = tuple(
            (literal.relation, self._spec(literal.args))
            for literal in clause.negative_body
        )
        self.positive_relations = tuple(
            literal.relation for literal in clause.positive_body
        )
        self.negated_relations = tuple(
            literal.relation for literal in clause.negative_body
        )
        # executed orders, keyed by the order tuple — shapes recur because
        # relative cardinalities rarely flip between rounds
        self._orders: dict[tuple[int, ...], tuple[_Step, ...]] = {}
        # engine-attached per-clause support records (see module docstring)
        self._templates: dict[str, object] = {}
        # accumulated estimate-vs-actual telemetry, keyed by original body
        # position (see record_execution); lives and dies with the plan,
        # so the planner's LRU bounds it — this is the outcome history
        # ROADMAP item 4's feedback re-planner consumes
        self.step_history: dict[int, dict] = {}

    def _spec(self, args: tuple) -> ArgSpec:
        # Variables outside the positive body (unsafe clauses never reach
        # evaluation, but ad-hoc probes may) stay in place, mirroring
        # substitute_args on an unbound variable.
        return tuple(
            (True, self.slot_of[term])
            if isinstance(term, Variable) and term in self.slot_of
            else (False, term)
            for term in args
        )

    def build(self, spec: ArgSpec, subst: list) -> tuple:
        """Instantiate an argument template from the substitution array."""
        return tuple(
            subst[value] if is_slot else value for is_slot, value in spec
        )

    def subst_dict(self, subst: list) -> dict[Variable, object]:
        """The array as a plain substitution dict (external callers)."""
        return {
            variable: subst[slot]
            for variable, slot in self.slot_of.items()
            if subst[slot] is not UNBOUND
        }

    def support_template(self, key: str, factory: Callable) -> object:
        """The engine support record attached under *key*, built once.

        ``factory(clause)`` runs on first request; afterwards every
        derivation of this clause reuses the same object — the plan-level
        support construction that replaces a per-derivation re-derivation
        in the engines' listeners.
        """
        template = self._templates.get(key)
        if template is None:
            template = factory(self.clause)
            self._templates[key] = template
        return template

    # ------------------------------------------------------------------
    # Ordering and cost estimation
    # ------------------------------------------------------------------

    def _candidate_estimate(
        self,
        model: "Model",
        literal: LiteralPlan,
        bound_slots: set[int],
        estimator: str,
    ) -> float:
        if estimator == "stats":
            return model.estimated_matches(
                literal.relation, literal.bound_columns(bound_slots)
            )
        bound = len(literal.const_cols) + sum(
            1 for _column, slot in literal.var_cols if slot in bound_slots
        )
        return model.count_of(literal.relation) * (0.1 ** bound)

    def order_for(
        self,
        model: "Model",
        delta_position: Optional[int] = None,
        reorder: bool = True,
        estimator: str = "stats",
    ) -> tuple[int, ...]:
        """Greedy selectivity order over the positive literals.

        At each step the literal with the smallest estimated candidate
        count is taken — cardinality divided by the distinct counts of the
        columns bound by a constant or an already-bound variable (the
        ``heuristic`` estimator keeps the old flat tenfold discount per
        bound column). The delta literal, when present, is pinned first;
        ties break towards the original position, so equally-estimated
        plans keep the written order.
        """
        count = len(self.literals)
        if delta_position is None:
            order: list[int] = []
            remaining = list(range(count))
        else:
            order = [delta_position]
            remaining = [i for i in range(count) if i != delta_position]
        if not reorder or count <= 1:
            return tuple(order + remaining)
        bound_slots: set[int] = set()
        for position in order:
            bound_slots |= self.literals[position].slots
        while remaining:
            best = remaining[0]
            best_cost: Optional[float] = None
            for position in remaining:
                cost = self._candidate_estimate(
                    model, self.literals[position], bound_slots, estimator
                )
                if best_cost is None or cost < best_cost:
                    best, best_cost = position, cost
            order.append(best)
            remaining.remove(best)
            bound_slots |= self.literals[best].slots
        return tuple(order)

    def estimate_firing(
        self,
        model: "Model",
        delta_position: int,
        delta_size: int,
        estimator: str = "stats",
    ) -> float:
        """Estimated cost of firing the clause with *delta_position* driving.

        The sum of estimated intermediate result sizes along the greedy
        order with the delta literal (of *delta_size* rows) pinned first —
        the estimator the semi-naive loop uses for cost-based
        delta-position choice.
        """
        order = self.order_for(model, delta_position, True, estimator)
        rows = cost = float(max(delta_size, 0))
        bound_slots = set(self.literals[delta_position].slots)
        for position in order[1:]:
            literal = self.literals[position]
            per_row = self._candidate_estimate(
                model, literal, bound_slots, estimator
            )
            rows *= max(per_row, 0.0)
            cost += rows
            bound_slots |= literal.slots
        return cost

    def steps_for(self, order: tuple[int, ...]) -> tuple[_Step, ...]:
        steps = self._orders.get(order)
        if steps is None:
            bound_slots: set[int] = set()
            steps = tuple(
                _Step(self.literals[position], bound_slots)
                for position in order
            )
            self._orders[order] = steps
        return steps

    def record_execution(self, steps: list[dict]) -> None:
        """Fold one execution's observed step counts into the history.

        *steps* is what a :class:`StepObserver` collected: per executed
        step its original body position, estimated candidate rows, and the
        probes/rows actually seen. The history accumulates per position,
        so :meth:`Planner.explain` (and, later, a feedback re-planner) can
        compare the estimator against reality over the plan's lifetime.
        """
        history = self.step_history
        for entry in steps:
            record = history.get(entry["position"])
            if record is None:
                record = {
                    "relation": entry["relation"],
                    "executions": 0,
                    "estimated": 0.0,
                    "probes": 0,
                    "rows": 0,
                }
                history[entry["position"]] = record
            record["executions"] += 1
            record["estimated"] += entry["estimated"]
            record["probes"] += entry["probes"]
            record["rows"] += entry["rows"]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        model: "Model",
        delta_position: Optional[int] = None,
        delta_rows: Optional[Iterable[tuple]] = None,
        exclude: Optional[Mapping[int, set[tuple]]] = None,
        reorder: bool = True,
        estimator: str = "stats",
        composite: bool = True,
        materialize: bool = True,
        observer: Optional["StepObserver"] = None,
    ) -> Iterator[tuple[list, list]]:
        """Yield (substitution array, facts by original position).

        Both yielded lists are live scratch buffers reused across matches —
        consume them before advancing the iterator. When *delta_position*
        is given, that literal enumerates *delta_rows* (lazily indexed on
        its constant columns) instead of its relation. *exclude* removes
        rows per original body position. ``composite=False`` probes through
        single-column index intersection instead of the composite index
        (the E17 baseline). With ``materialize=True`` (default) an excluded
        step resolves through one set subtraction of the probed bucket
        (:meth:`~.relations.Relation.probe_excluding`) instead of a
        per-candidate membership filter — the materialized restricted
        delta of E17c/E18; ``materialize=False`` keeps the per-candidate
        check as the ablation baseline.

        An *observer* (a :class:`StepObserver`) sees every step's candidate
        stream: estimated rows are computed once per execution, actual
        probes and rows counted as the join runs. ``observer=None`` (the
        default, and the only mode when telemetry is off) leaves the inner
        loop untouched.
        """
        if delta_position is None:
            delta_rows = None
        order = self.order_for(model, delta_position, reorder, estimator)
        steps = self.steps_for(order)
        if observer is not None:
            delta_size = None
            if delta_rows is not None:
                try:
                    delta_size = len(delta_rows)
                except TypeError:
                    delta_rows = tuple(delta_rows)
                    delta_size = len(delta_rows)
            observer.begin(
                self, model, order, estimator, delta_position, delta_size
            )
        subst = [UNBOUND] * self.num_slots
        facts: list = [None] * len(self.literals)
        if not steps:
            yield subst, facts
            return
        exclusions = tuple(
            (exclude or {}).get(step.position) for step in steps
        )
        delta_index: Optional[dict[tuple, list[tuple]]] = None
        delta_index_cols: tuple[int, ...] = ()

        def delta_candidates(bound: Mapping[int, object]) -> Iterable[tuple]:
            nonlocal delta_index, delta_index_cols
            if not bound:
                return delta_rows
            if delta_index is None:
                delta_index_cols = tuple(sorted(bound))
                delta_index = {}
                for row in delta_rows:
                    key = tuple(row[c] for c in delta_index_cols)
                    delta_index.setdefault(key, []).append(row)
            probe = tuple(bound[c] for c in delta_index_cols)
            return delta_index.get(probe, ())

        last = len(steps) - 1

        def recurse(index: int) -> Iterator[tuple[list, list]]:
            step = steps[index]
            excluded = exclusions[index]
            if index == 0 and delta_rows is not None:
                if step.bound_cols:
                    bound = dict(step.select_consts)
                    for column, slot in step.bound_cols:
                        bound[column] = subst[slot]
                else:
                    bound = step.select_consts
                candidates: Iterable[tuple] = delta_candidates(bound)
            elif not step.probe_cols:
                if excluded is not None and materialize:
                    # one set subtraction replaces both the defensive
                    # snapshot copy and the per-candidate filter
                    candidates = model.relation(step.relation).rows_excluding(
                        excluded
                    )
                    excluded = None
                else:
                    candidates = model.relation(step.relation).select({})
            elif composite:
                key = tuple(
                    subst[value] if is_slot else value
                    for is_slot, value in step.probe_parts
                )
                store = model.relation(step.relation)
                if excluded is not None and materialize:
                    candidates = store.probe_excluding(
                        step.probe_cols, key, excluded
                    )
                    excluded = None
                else:
                    # snapshot: the bucket is live and saturation mutates it
                    candidates = tuple(store.probe(step.probe_cols, key))
            else:
                bound = dict(step.select_consts)
                for column, slot in step.bound_cols:
                    bound[column] = subst[slot]
                candidates = model.relation(step.relation).select_intersect(
                    bound
                )
            if observer is not None:
                candidates = observer.count(index, candidates)
            free_cols = step.free_cols
            check_cols = step.check_cols
            relation = step.relation
            position = step.position
            for row in candidates:
                if excluded is not None and row in excluded:
                    continue
                for column, slot in free_cols:
                    subst[slot] = row[column]
                if check_cols and any(
                    subst[slot] != row[column] for column, slot in check_cols
                ):
                    continue
                facts[position] = Atom(relation, row)
                if index == last:
                    yield subst, facts
                else:
                    yield from recurse(index + 1)

        yield from recurse(0)


class StepObserver:
    """Collects estimated-vs-actual candidate rows per executed plan step.

    One observer instruments one :meth:`ClausePlan.execute` call.
    :meth:`begin` prices every step of the chosen order with the same
    estimator the ordering used (the delta step is priced at the delta's
    actual size); :meth:`count` then tallies, per step, how many probes ran
    and how many candidate rows they produced. Counting happens *before*
    exclusion filtering, so ``rows`` measures the same quantity the
    estimate predicted — the size of the probed candidate set.
    """

    __slots__ = ("steps",)

    def __init__(self) -> None:
        self.steps: list[dict] = []

    def begin(
        self,
        plan: ClausePlan,
        model: "Model",
        order: tuple[int, ...],
        estimator: str,
        delta_position: Optional[int] = None,
        delta_size: Optional[int] = None,
    ) -> list[dict]:
        self.steps = []
        bound_slots: set[int] = set()
        for position in order:
            literal = plan.literals[position]
            if position == delta_position:
                estimated = float(delta_size or 0)
            else:
                estimated = float(
                    plan._candidate_estimate(
                        model, literal, bound_slots, estimator
                    )
                )
            self.steps.append(
                {
                    "position": position,
                    "relation": literal.relation,
                    "estimated": estimated,
                    "probes": 0,
                    "rows": 0,
                }
            )
            bound_slots |= literal.slots
        return self.steps

    def count(self, index: int, candidates: Iterable[tuple]) -> Iterable[tuple]:
        """Tally one probe of executed step *index*; returns the stream."""
        entry = self.steps[index]
        entry["probes"] += 1
        try:
            entry["rows"] += len(candidates)
            return candidates
        except TypeError:
            return self._counting(entry, candidates)

    @staticmethod
    def _counting(entry: dict, candidates: Iterable[tuple]) -> Iterator[tuple]:
        for row in candidates:
            entry["rows"] += 1
            yield row


class Planner:
    """A per-clause cache of compiled plans with bounded LRU eviction.

    ``reorder=False`` pins the written left-to-right join order (the
    pre-planner behaviour) — the baseline of experiment E16 and an escape
    hatch for debugging plan choices. ``estimator``/``composite`` select
    the cost model and probe path (see :data:`ESTIMATORS`); their defaults
    are the statistics-driven ones, and experiment E17 measures them
    against the old guesses.

    Engines :meth:`pin` their rule plans: pinned entries are exempt from
    eviction, so a flood of ad-hoc query probes can never wipe the hot rule
    plans (a full cache used to be *cleared*, which did exactly that).
    """

    MAX_PLANS = 4096  # ad-hoc query probes churn; cap the cache

    __slots__ = (
        "reorder", "estimator", "composite", "delta_choice",
        "materialize_deltas", "cache_hits", "cache_misses", "_plans",
        "_pinned",
    )

    def __init__(
        self,
        reorder: bool = True,
        estimator: str = "stats",
        composite: bool = True,
        delta_choice: bool = True,
        materialize_deltas: bool = True,
    ) -> None:
        if estimator not in ESTIMATORS:
            raise ValueError(
                f"unknown estimator {estimator!r}; use one of {ESTIMATORS}"
            )
        self.reorder = reorder
        self.estimator = estimator
        self.composite = composite
        # cost-based delta-position ordering/skipping in the semi-naive
        # loop; False fires every position in enumeration order (the PR 3
        # behaviour, the E17c ablation baseline)
        self.delta_choice = delta_choice
        # restricted candidate sets resolve through bucket set-subtraction
        # (Relation.probe_excluding); False keeps the per-candidate
        # membership filter (the E18 ablation baseline)
        self.materialize_deltas = materialize_deltas
        # Always-on plain-int cache accounting (a += 1 per lookup): the
        # per-update stats deltas and the metrics registry both read these.
        self.cache_hits = 0
        self.cache_misses = 0
        self._plans: dict["Clause", ClausePlan] = {}  # insertion = LRU order
        self._pinned: set["Clause"] = set()

    def plan_for(self, clause: "Clause") -> ClausePlan:
        plan = self._plans.get(clause)
        if plan is not None:
            self.cache_hits += 1
            if clause not in self._pinned:
                # refresh recency; pinned entries never move (or leave)
                del self._plans[clause]
                self._plans[clause] = plan
            return plan
        plan = ClausePlan(clause)
        # Bodiless clauses (facts) have no join to plan; compiling one
        # is trivial and caching them would let a large fact base
        # churn the cache.
        if clause.body:
            self.cache_misses += 1
            if len(self._plans) >= self.MAX_PLANS:
                self._evict_one()
            self._plans[clause] = plan
        return plan

    def _evict_one(self) -> None:
        """Drop the least-recently-used unpinned plan, if any."""
        for clause in self._plans:
            if clause not in self._pinned:
                del self._plans[clause]
                return
        # Everything is pinned: grow past MAX_PLANS rather than evict a
        # hot engine rule plan — engines pin one entry per program rule,
        # so this stays bounded by the program size.

    def pin(self, clause: "Clause") -> ClausePlan:
        """Compile (if needed) and exempt *clause*'s plan from eviction."""
        plan = self.plan_for(clause)
        if clause in self._plans:
            self._pinned.add(clause)
        return plan

    def sync_pins(self, clauses: Iterable["Clause"]) -> None:
        """Pin exactly *clauses*; stale pins rejoin the LRU pool.

        Engines call this whenever their program is replaced wholesale
        (rebuild, snapshot restore, transaction rollback): without the
        sync, every formerly pinned rule of the old program would stay
        exempt from eviction forever and the cache would leak one plan
        per replaced rule.
        """
        keep = set(clauses)
        self._pinned &= keep
        for clause in keep:
            self.pin(clause)

    def unpin(self, clause: "Clause") -> None:
        self._pinned.discard(clause)

    def invalidate(self, clause: "Clause") -> None:
        """Drop the cached plan of *clause* (rule insertion/deletion)."""
        self._plans.pop(clause, None)
        self._pinned.discard(clause)

    def clear(self) -> None:
        self._plans.clear()
        self._pinned.clear()

    def __len__(self) -> int:
        return len(self._plans)

    def pinned_count(self) -> int:
        return len(self._pinned)

    def explain(self, clause: "Clause", model: "Model") -> str:
        """Render *clause*'s join plan with estimated vs. observed rows.

        Estimates are priced fresh against the current statistics (same
        greedy order the next execution would use); observed figures come
        from the plan's accumulated :attr:`ClausePlan.step_history`, which
        only fills while telemetry is enabled.
        """
        plan = self.plan_for(clause)
        lines = [f"plan for: {clause}"]
        if not plan.literals:
            lines.append("  (no positive body — nothing to join)")
            return "\n".join(lines)
        order = plan.order_for(model, None, self.reorder, self.estimator)
        bound_slots: set[int] = set()
        for rank, position in enumerate(order, start=1):
            literal = plan.literals[position]
            estimated = plan._candidate_estimate(
                model, literal, bound_slots, self.estimator
            )
            history = plan.step_history.get(position)
            if history and history["probes"]:
                observed = (
                    f"observed={history['rows'] / history['probes']:.1f} "
                    f"rows/probe ({history['probes']} probes, "
                    f"{history['executions']} executions)"
                )
            else:
                observed = "observed=n/a (no recorded executions)"
            lines.append(
                f"  {rank}. {clause.positive_body[position]}  "
                f"estimated={estimated:.1f}  {observed}"
            )
            bound_slots |= literal.slots
        lines.extend(self._static_warnings(clause))
        return "\n".join(lines)

    @staticmethod
    def _static_warnings(clause: "Clause") -> list[str]:
        """Planner-relevant analyzer findings for *clause*.

        A cross-product body (DL010) or a singleton variable (DL007) is
        visible in the plan shape but easy to misread as a statistics
        problem; surfacing the lint next to the estimates says "the clause
        itself is the hazard". Imported lazily — the analysis package sits
        above the datalog substrate.
        """
        from ..analysis import check_clause

        return [
            f"  warning {finding.code}: {finding.message}"
            for finding in check_clause(clause)
            if finding.code in ("DL007", "DL010")
        ]


DEFAULT_PLANNER = Planner()
"""Module-level cache used when no engine-owned planner is passed."""
