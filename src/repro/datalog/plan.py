"""Join planning: clauses compiled into selectivity-ordered join plans.

The saturation loops spend almost all their time enumerating the ground
instances of rule bodies. This module compiles each clause once into a
:class:`ClausePlan` — per-literal column maps, integer variable slots, and
argument templates for the head and the negative hypotheses — and executes
it with a substitution *array* instead of per-row dict copies. At execution
time the positive literals are greedily reordered by estimated selectivity
(current relation cardinality, discounted per bound column), so a rule like
``q(Y) :- big(X, Y), probe(X)`` starts from ``probe`` and index-probes
``big`` instead of scanning it (experiment E16).

Three invariants keep the planner a drop-in replacement for the naive
left-to-right enumerator in :mod:`.evaluation`:

* the delta literal of the [RLK] mechanism is always placed first, so the
  increment keeps driving the whole join;
* exclusion sets (the triangular old/new split) stay keyed by *original*
  body position, whatever the executed order;
* the positive body facts of every match are reported in original body
  order, so derivations are identical objects whichever order ran.

Unbound slots hold :data:`~.unify.UNBOUND`, never ``None`` — ``None`` is a
legal constant and must join like any other value.

Plans depend only on the clause structure; the cardinality statistics are
read per execution, so a cached plan never goes stale. A :class:`Planner`
caches plans per clause (facts are compiled but not cached — they have no
join): engines own one each, invalidated on rule insertion/deletion so
deleted rules do not pin memory, and the module keeps a bounded default
instance for ad-hoc callers (queries, constraint checks).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Optional

from .atoms import Atom
from .terms import Variable
from .unify import UNBOUND

if TYPE_CHECKING:  # imported lazily to avoid a cycle with clauses.py
    from .clauses import Clause
    from .model import Model

# An argument template: (True, slot) reads the substitution array, while
# (False, value) is a constant (or a variable foreign to the positive body,
# left in place exactly as substitute_args would leave it).
ArgSpec = tuple[tuple[bool, object], ...]


class LiteralPlan:
    """Order-independent description of one positive body literal."""

    __slots__ = ("position", "relation", "const_cols", "var_cols", "slots")

    def __init__(
        self,
        position: int,
        relation: str,
        const_cols: tuple[tuple[int, object], ...],
        var_cols: tuple[tuple[int, int], ...],
    ):
        self.position = position
        self.relation = relation
        self.const_cols = const_cols  # (column, constant) pairs
        self.var_cols = var_cols  # (column, slot) pairs, in column order
        self.slots = frozenset(slot for _column, slot in var_cols)


class _Step:
    """One literal of an executable order, split against what is bound.

    ``bound_cols`` were bound by earlier steps (pushed into the index
    probe); ``free_cols`` bind their slot from the row (first occurrence of
    the variable in this step); ``check_cols`` are repeated occurrences of a
    slot first bound *within this same step* and are verified per row.
    """

    __slots__ = (
        "position", "relation", "select_consts", "bound_cols", "free_cols",
        "check_cols",
    )

    def __init__(self, literal: LiteralPlan, bound_slots: set[int]):
        self.position = literal.position
        self.relation = literal.relation
        self.select_consts = dict(literal.const_cols)
        bound: list[tuple[int, int]] = []
        free: list[tuple[int, int]] = []
        check: list[tuple[int, int]] = []
        fresh: set[int] = set()
        for column, slot in literal.var_cols:
            if slot in bound_slots:
                bound.append((column, slot))
            elif slot in fresh:
                check.append((column, slot))
            else:
                fresh.add(slot)
                free.append((column, slot))
        self.bound_cols = tuple(bound)
        self.free_cols = tuple(free)
        self.check_cols = tuple(check)
        bound_slots |= fresh


class ClausePlan:
    """A compiled clause: slots, literal maps, head/negative templates."""

    __slots__ = (
        "clause", "slot_of", "num_slots", "literals", "head_spec",
        "negatives", "_orders",
    )

    def __init__(self, clause: "Clause"):
        self.clause = clause
        slot_of: dict[Variable, int] = {}
        literals = []
        for position, literal in enumerate(clause.positive_body):
            const_cols = []
            var_cols = []
            for column, term in enumerate(literal.args):
                if isinstance(term, Variable):
                    slot = slot_of.setdefault(term, len(slot_of))
                    var_cols.append((column, slot))
                else:
                    const_cols.append((column, term))
            literals.append(
                LiteralPlan(
                    position, literal.relation,
                    tuple(const_cols), tuple(var_cols),
                )
            )
        self.slot_of = slot_of
        self.num_slots = len(slot_of)
        self.literals = tuple(literals)
        self.head_spec = self._spec(clause.head.args)
        self.negatives = tuple(
            (literal.relation, self._spec(literal.args))
            for literal in clause.negative_body
        )
        # executed orders, keyed by the order tuple — shapes recur because
        # relative cardinalities rarely flip between rounds
        self._orders: dict[tuple[int, ...], tuple[_Step, ...]] = {}

    def _spec(self, args: tuple) -> ArgSpec:
        # Variables outside the positive body (unsafe clauses never reach
        # evaluation, but ad-hoc probes may) stay in place, mirroring
        # substitute_args on an unbound variable.
        return tuple(
            (True, self.slot_of[term])
            if isinstance(term, Variable) and term in self.slot_of
            else (False, term)
            for term in args
        )

    def build(self, spec: ArgSpec, subst: list) -> tuple:
        """Instantiate an argument template from the substitution array."""
        return tuple(
            subst[value] if is_slot else value for is_slot, value in spec
        )

    def subst_dict(self, subst: list) -> dict[Variable, object]:
        """The array as a plain substitution dict (external callers)."""
        return {
            variable: subst[slot]
            for variable, slot in self.slot_of.items()
            if subst[slot] is not UNBOUND
        }

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------

    def order_for(
        self,
        model: "Model",
        delta_position: Optional[int] = None,
        reorder: bool = True,
    ) -> tuple[int, ...]:
        """Greedy selectivity order over the positive literals.

        At each step the literal with the smallest estimated candidate
        count is taken: current cardinality, discounted tenfold per column
        bound by a constant or an already-bound variable. The delta literal,
        when present, is pinned first; ties break towards the original
        position, so equally-estimated plans keep the written order.
        """
        count = len(self.literals)
        if delta_position is None:
            order: list[int] = []
            remaining = list(range(count))
        else:
            order = [delta_position]
            remaining = [i for i in range(count) if i != delta_position]
        if not reorder or count <= 1:
            return tuple(order + remaining)
        bound_slots: set[int] = set()
        for position in order:
            bound_slots |= self.literals[position].slots
        while remaining:
            best = remaining[0]
            best_cost: Optional[float] = None
            for position in remaining:
                literal = self.literals[position]
                bound = len(literal.const_cols) + sum(
                    1
                    for _column, slot in literal.var_cols
                    if slot in bound_slots
                )
                cost = model.count_of(literal.relation) * (0.1 ** bound)
                if best_cost is None or cost < best_cost:
                    best, best_cost = position, cost
            order.append(best)
            remaining.remove(best)
            bound_slots |= self.literals[best].slots
        return tuple(order)

    def steps_for(self, order: tuple[int, ...]) -> tuple[_Step, ...]:
        steps = self._orders.get(order)
        if steps is None:
            bound_slots: set[int] = set()
            steps = tuple(
                _Step(self.literals[position], bound_slots)
                for position in order
            )
            self._orders[order] = steps
        return steps

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        model: "Model",
        delta_position: Optional[int] = None,
        delta_rows: Optional[Iterable[tuple]] = None,
        exclude: Optional[Mapping[int, set[tuple]]] = None,
        reorder: bool = True,
    ) -> Iterator[tuple[list, list]]:
        """Yield (substitution array, facts by original position).

        Both yielded lists are live scratch buffers reused across matches —
        consume them before advancing the iterator. When *delta_position*
        is given, that literal enumerates *delta_rows* (lazily indexed on
        its constant columns) instead of its relation. *exclude* removes
        rows per original body position.
        """
        if delta_position is None:
            delta_rows = None
        order = self.order_for(model, delta_position, reorder)
        steps = self.steps_for(order)
        subst = [UNBOUND] * self.num_slots
        facts: list = [None] * len(self.literals)
        if not steps:
            yield subst, facts
            return
        exclusions = tuple(
            (exclude or {}).get(step.position) for step in steps
        )
        delta_index: Optional[dict[tuple, list[tuple]]] = None
        delta_index_cols: tuple[int, ...] = ()

        def delta_candidates(bound: Mapping[int, object]) -> Iterable[tuple]:
            nonlocal delta_index, delta_index_cols
            if not bound:
                return delta_rows
            if delta_index is None:
                delta_index_cols = tuple(sorted(bound))
                delta_index = {}
                for row in delta_rows:
                    key = tuple(row[c] for c in delta_index_cols)
                    delta_index.setdefault(key, []).append(row)
            probe = tuple(bound[c] for c in delta_index_cols)
            return delta_index.get(probe, ())

        last = len(steps) - 1

        def recurse(index: int) -> Iterator[tuple[list, list]]:
            step = steps[index]
            if step.bound_cols:
                bound = dict(step.select_consts)
                for column, slot in step.bound_cols:
                    bound[column] = subst[slot]
            else:
                bound = step.select_consts
            if index == 0 and delta_rows is not None:
                candidates: Iterable[tuple] = delta_candidates(bound)
            else:
                candidates = model.relation(step.relation).select(bound)
            excluded = exclusions[index]
            free_cols = step.free_cols
            check_cols = step.check_cols
            relation = step.relation
            position = step.position
            for row in candidates:
                if excluded is not None and row in excluded:
                    continue
                for column, slot in free_cols:
                    subst[slot] = row[column]
                if check_cols and any(
                    subst[slot] != row[column] for column, slot in check_cols
                ):
                    continue
                facts[position] = Atom(relation, row)
                if index == last:
                    yield subst, facts
                else:
                    yield from recurse(index + 1)

        yield from recurse(0)


class Planner:
    """A per-clause cache of compiled plans.

    ``reorder=False`` pins the written left-to-right join order (the
    pre-planner behaviour) — the baseline of experiment E16 and an escape
    hatch for debugging plan choices.
    """

    MAX_PLANS = 4096  # ad-hoc query probes churn; cap the cache

    __slots__ = ("reorder", "_plans")

    def __init__(self, reorder: bool = True):
        self.reorder = reorder
        self._plans: dict["Clause", ClausePlan] = {}

    def plan_for(self, clause: "Clause") -> ClausePlan:
        plan = self._plans.get(clause)
        if plan is None:
            plan = ClausePlan(clause)
            # Bodiless clauses (facts) have no join to plan; compiling one
            # is trivial and caching them would let a large fact base
            # evict the hot rule plans.
            if clause.positive_body:
                if len(self._plans) >= self.MAX_PLANS:
                    self._plans.clear()
                self._plans[clause] = plan
        return plan

    def invalidate(self, clause: "Clause") -> None:
        """Drop the cached plan of *clause* (rule insertion/deletion)."""
        self._plans.pop(clause, None)

    def clear(self) -> None:
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)


DEFAULT_PLANNER = Planner()
"""Module-level cache used when no engine-owned planner is passed."""
