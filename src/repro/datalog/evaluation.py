"""Saturation: naive and delta-driven (semi-naive) fixpoints.

``SAT(P, M)`` — the closure of a set of facts M under the rules of one
stratum P — is order-independent because relations negated in hypotheses are
never concluded inside the stratum, so the stratum is a monotone production
system (section 5.2 of the paper, citing Cousot). The module implements the
closure two ways:

* :func:`naive_saturate` — repeat "fire every rule on everything" until no
  change; the reference implementation used to cross-check the other.
* :func:`semi_naive_saturate` — the *delta-driven mechanism* of Rohmer et
  al. [RLK]: after an initial round, a rule is *helpful* (re-fired) only
  when one of its positive hypotheses gained tuples, and that hypothesis is
  joined against the increment only.

Both report every successful rule instantiation to an optional *derivation
listener*, which is how the maintenance engines construct supports. A
derivation may be reported more than once (naive re-fires on every round;
semi-naive can hit one instantiation through two delta positions), so
listeners must be idempotent — every support construction in the paper is a
set union, which is.

Both paths enumerate rule bodies through compiled, selectivity-ordered
join plans (:mod:`.plan`); passing an engine-owned
:class:`~repro.datalog.plan.Planner` reuses the compiled clauses across
saturations, and ``Planner(reorder=False)`` pins the written left-to-right
join order (experiment E16 measures the difference).

The standard model M(P) = Mn (section 2) is built by
:func:`compute_model`, which saturates stratum by stratum.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, NamedTuple, Optional

from .atoms import Atom
from .clauses import Clause, Program
from .model import Model
from .plan import DEFAULT_PLANNER, Planner
from .stratify import Stratification, stratify
from .terms import Variable


class Derivation(NamedTuple):
    """One successful ground instance of a rule.

    ``positive_facts`` are the ground body facts the instance consumed,
    ``negative_atoms`` the ground atoms whose absence it relied upon.
    """

    head: Atom
    clause: Clause
    positive_facts: tuple[Atom, ...]
    negative_atoms: tuple[Atom, ...]


DerivationListener = Callable[[Derivation, bool], None]
"""Called as ``listener(derivation, is_new)``; *is_new* says whether the
head was absent from the model before this instantiation."""


def _iter_matches(
    clause: Clause,
    model: Model,
    delta_position: int | None = None,
    delta_rows: Iterable[tuple] | None = None,
    exclude: Mapping[int, set[tuple]] | None = None,
    planner: Planner | None = None,
) -> Iterator[tuple[dict[Variable, object], tuple[Atom, ...]]]:
    """Yield (substitution, positive body facts) for *clause* over *model*.

    The clause is compiled (and cached) by the *planner* into a
    selectivity-ordered join plan — see :mod:`.plan`. Whatever order runs,
    the facts come back in original body position order.

    When *delta_position* is given, that positive literal matches only
    *delta_rows* (the increment) instead of the full relation, and it is
    pinned to the front of the join so the increment drives the whole
    enumeration — per-round cost proportional to the delta, not to the
    other relations. This is what makes the [RLK] mechanism actually win
    (E9). The delta is additionally indexed on first probe in case bound
    columns remain (constants).

    *exclude* (keyed by original body position) removes rows from other
    literals' candidates — the triangular old/new split that fires an
    instantiation whose body facts arrived in the same round exactly once.
    """
    if planner is None:
        planner = DEFAULT_PLANNER
    plan = planner.plan_for(clause)
    rows = tuple(delta_rows) if delta_rows is not None else None
    for subst, facts in plan.execute(
        model, delta_position, rows, exclude, planner.reorder
    ):
        yield plan.subst_dict(subst), tuple(facts)


def iter_derivations(
    clause: Clause,
    model: Model,
    delta_position: int | None = None,
    delta_rows: Iterable[tuple] | None = None,
    exclude: Mapping[int, set[tuple]] | None = None,
    planner: Planner | None = None,
) -> Iterator[Derivation]:
    """Yield the currently firing ground instances of *clause*.

    An instance fires when its positive body is contained in the model and
    none of its negative atoms is. The free variables of a rule are bound by
    the positive body (safety), so the negative atoms and head are ground —
    both are built straight from the plan's substitution array.
    """
    if planner is None:
        planner = DEFAULT_PLANNER
    plan = planner.plan_for(clause)
    rows = tuple(delta_rows) if delta_rows is not None else None
    negatives = plan.negatives
    head_relation = clause.head.relation
    head_spec = plan.head_spec
    for subst, facts in plan.execute(
        model, delta_position, rows, exclude, planner.reorder
    ):
        neg_atoms = []
        blocked = False
        for relation, spec in negatives:
            ground = plan.build(spec, subst)
            if model.contains(relation, ground):
                blocked = True
                break
            neg_atoms.append(Atom(relation, ground))
        if blocked:
            continue
        head = Atom(head_relation, plan.build(head_spec, subst))
        yield Derivation(head, clause, tuple(facts), tuple(neg_atoms))


def naive_saturate(
    rules: Iterable[Clause],
    model: Model,
    listener: Optional[DerivationListener] = None,
    *,
    planner: Optional[Planner] = None,
) -> set[Atom]:
    """Close *model* under *rules* by brute-force iteration.

    Returns the facts added. Simple and obviously correct; used as the
    reference point for the delta-driven evaluator (experiment E9).
    """
    rules = tuple(rules)
    added: set[Atom] = set()
    changed = True
    while changed:
        changed = False
        for clause in rules:
            for derivation in iter_derivations(clause, model, planner=planner):
                is_new = derivation.head not in model
                if listener is not None:
                    listener(derivation, is_new)
                if is_new:
                    model.add(derivation.head)
                    added.add(derivation.head)
                    changed = True
    return added


def semi_naive_saturate(
    rules: Iterable[Clause],
    model: Model,
    listener: Optional[DerivationListener] = None,
    *,
    initial_full: bool = True,
    delta: Optional[Mapping[str, set[tuple]]] = None,
    full_fire: Iterable[Clause] = (),
    planner: Optional[Planner] = None,
) -> set[Atom]:
    """Close *model* under *rules* with the delta-driven mechanism.

    With ``initial_full=True`` (from-scratch saturation of a stratum) every
    rule fires fully once, after which only helpful rules re-fire against
    the increments. With ``initial_full=False`` the caller provides the
    external increments: *delta* maps relations (from lower strata or a
    fact insertion — already added to the model) to their new rows, and
    *full_fire* lists rules that must fire fully regardless (e.g. rules
    whose negated hypothesis lost tuples, or freshly inserted rules).

    Every successful instantiation is reported at least once across the
    saturation: an instance fires in the round its last positive body fact
    entered the increment, so supports built from the listener are complete.
    """
    rules = tuple(rules)
    full_fire = set(full_fire)
    added: set[Atom] = set()
    next_delta: dict[str, set[tuple]] = {}

    def emit(derivation: Derivation) -> None:
        is_new = derivation.head not in model
        if listener is not None:
            listener(derivation, is_new)
        if is_new:
            model.add(derivation.head)
            added.add(derivation.head)
            next_delta.setdefault(derivation.head.relation, set()).add(
                derivation.head.args
            )

    if initial_full:
        # Facts first, silently from the delta's point of view: the full
        # rule pass below sees them all, so queueing them as increments
        # would only make the first delta round repeat the full joins.
        for clause in rules:
            if not clause.body:
                for derivation in iter_derivations(
                    clause, model, planner=planner
                ):
                    emit(derivation)
        next_delta.clear()
        for clause in rules:
            if clause.body:
                for derivation in iter_derivations(
                    clause, model, planner=planner
                ):
                    emit(derivation)
    else:
        external: Mapping[str, set[tuple]] = delta or {}
        for clause in rules:
            if clause in full_fire:
                for derivation in iter_derivations(
                    clause, model, planner=planner
                ):
                    emit(derivation)
                continue
            for position, literal in enumerate(clause.positive_body):
                rows = external.get(literal.relation)
                if rows:
                    for derivation in iter_derivations(
                        clause, model, position, rows, planner=planner
                    ):
                        emit(derivation)

    while next_delta:
        current = next_delta
        next_delta = {}
        for clause in rules:
            body = clause.positive_body
            delta_positions = [
                position
                for position, literal in enumerate(body)
                if current.get(literal.relation)
            ]
            for k, position in enumerate(delta_positions):
                # Triangular split: later delta positions are restricted to
                # their pre-round content, so an instantiation whose body
                # facts all arrived this round fires exactly once (at its
                # last delta position).
                restrict = {
                    later: current[body[later].relation]
                    for later in delta_positions[k + 1 :]
                }
                for derivation in iter_derivations(
                    clause,
                    model,
                    position,
                    current[body[position].relation],
                    restrict or None,
                    planner=planner,
                ):
                    emit(derivation)
    return added


def saturate(
    rules: Iterable[Clause],
    model: Model,
    listener: Optional[DerivationListener] = None,
    method: str = "seminaive",
    *,
    planner: Optional[Planner] = None,
) -> set[Atom]:
    """From-scratch saturation of one stratum with the chosen method."""
    if method == "seminaive":
        return semi_naive_saturate(rules, model, listener, planner=planner)
    if method == "naive":
        return naive_saturate(rules, model, listener, planner=planner)
    raise ValueError(f"unknown saturation method {method!r}")


def compute_model(
    program: Program,
    *,
    stratification: Optional[Stratification] = None,
    method: str = "seminaive",
    listener: Optional[DerivationListener] = None,
    granularity: str = "level",
    planner: Optional[Planner] = None,
) -> Model:
    """Compute the standard model M(P) by iterated saturation.

    ``M1 = SAT(P1, ∅), M2 = SAT(P2, M1), ..., Mn = SAT(Pn, Mn-1)``
    (section 2 of the paper). The asserted facts are bodiless clauses of
    their relation's stratum, so they enter the model during that stratum's
    round 0.
    """
    if stratification is None:
        stratification = stratify(program, granularity=granularity)
    model = Model()
    for stratum in stratification:
        saturate(stratum.clauses, model, listener, method, planner=planner)
    return model
