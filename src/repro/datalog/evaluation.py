"""Saturation: naive and delta-driven (semi-naive) fixpoints.

``SAT(P, M)`` — the closure of a set of facts M under the rules of one
stratum P — is order-independent because relations negated in hypotheses are
never concluded inside the stratum, so the stratum is a monotone production
system (section 5.2 of the paper, citing Cousot). The module implements the
closure two ways:

* :func:`naive_saturate` — repeat "fire every rule on everything" until no
  change; the reference implementation used to cross-check the other.
* :func:`semi_naive_saturate` — the *delta-driven mechanism* of Rohmer et
  al. [RLK]: after an initial round, a rule is *helpful* (re-fired) only
  when one of its positive hypotheses gained tuples, and that hypothesis is
  joined against the increment only.

Both report every successful rule instantiation to an optional *derivation
listener*, which is how the maintenance engines construct supports. A
derivation may be reported more than once (naive re-fires on every round;
semi-naive can hit one instantiation through two delta positions), so
listeners must be idempotent — every support construction in the paper is a
set union, which is.

Both paths enumerate rule bodies through compiled, selectivity-ordered
join plans (:mod:`.plan`); passing an engine-owned
:class:`~repro.datalog.plan.Planner` reuses the compiled clauses across
saturations, and ``Planner(reorder=False)`` pins the written left-to-right
join order (experiment E16 measures the difference).

The standard model M(P) = Mn (section 2) is built by
:func:`compute_model`, which saturates stratum by stratum.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, NamedTuple, Optional

from ..obs import OBS
from .atoms import Atom
from .clauses import Clause, Program
from .model import Model
from .plan import DEFAULT_PLANNER, ClausePlan, Planner, StepObserver
from .stratify import Stratification, stratify
from .terms import Variable


class Derivation(NamedTuple):
    """One successful ground instance of a rule.

    ``positive_facts`` are the ground body facts the instance consumed,
    ``negative_atoms`` the ground atoms whose absence it relied upon.
    """

    head: Atom
    clause: Clause
    positive_facts: tuple[Atom, ...]
    negative_atoms: tuple[Atom, ...]


DerivationListener = Callable[[Derivation, bool, "ClausePlan"], None]
"""Called as ``listener(derivation, is_new, plan)``; *is_new* says whether
the head was absent from the model before this instantiation, and *plan* is
the compiled :class:`~repro.datalog.plan.ClausePlan` of the derivation's
clause — engines hang per-clause support templates off it
(:meth:`~repro.datalog.plan.ClausePlan.support_template`), so a listener
builds the clause-level part of a support once, not per derivation."""


def _iter_matches(
    clause: Clause,
    model: Model,
    delta_position: int | None = None,
    delta_rows: Iterable[tuple] | None = None,
    exclude: Mapping[int, set[tuple]] | None = None,
    planner: Planner | None = None,
) -> Iterator[tuple[dict[Variable, object], tuple[Atom, ...]]]:
    """Yield (substitution, positive body facts) for *clause* over *model*.

    The clause is compiled (and cached) by the *planner* into a
    selectivity-ordered join plan — see :mod:`.plan`. Whatever order runs,
    the facts come back in original body position order.

    When *delta_position* is given, that positive literal matches only
    *delta_rows* (the increment) instead of the full relation, and it is
    pinned to the front of the join so the increment drives the whole
    enumeration — per-round cost proportional to the delta, not to the
    other relations. This is what makes the [RLK] mechanism actually win
    (E9). The delta is additionally indexed on first probe in case bound
    columns remain (constants).

    *exclude* (keyed by original body position) removes rows from other
    literals' candidates — the triangular old/new split that fires an
    instantiation whose body facts arrived in the same round exactly once.
    """
    if planner is None:
        planner = DEFAULT_PLANNER
    plan = planner.plan_for(clause)
    rows = tuple(delta_rows) if delta_rows is not None else None
    for subst, facts in plan.execute(
        model, delta_position, rows, exclude, planner.reorder,
        planner.estimator, planner.composite, planner.materialize_deltas,
    ):
        yield plan.subst_dict(subst), tuple(facts)


def iter_derivations(
    clause: Clause,
    model: Model,
    delta_position: int | None = None,
    delta_rows: Iterable[tuple] | None = None,
    exclude: Mapping[int, set[tuple]] | None = None,
    planner: Planner | None = None,
) -> Iterator[Derivation]:
    """Yield the currently firing ground instances of *clause*.

    An instance fires when its positive body is contained in the model and
    none of its negative atoms is. The free variables of a rule are bound by
    the positive body (safety), so the negative atoms and head are ground —
    both are built straight from the plan's substitution array.
    """
    if planner is None:
        planner = DEFAULT_PLANNER
    return _plan_derivations(
        planner.plan_for(clause), model, delta_position, delta_rows,
        exclude, planner,
    )


def _plan_derivations(
    plan: ClausePlan,
    model: Model,
    delta_position: int | None,
    delta_rows: Iterable[tuple] | None,
    exclude: Mapping[int, set[tuple]] | None,
    planner: Planner,
) -> Iterator[Derivation]:
    """:func:`iter_derivations` over an already-compiled plan.

    The saturation loops fetch each clause's plan once (they hand it to
    the derivation listener) and iterate through this, so a bodiless
    clause — whose plan the cache deliberately never holds — is not
    recompiled a second time inside the loop body.
    """
    clause = plan.clause
    rows = tuple(delta_rows) if delta_rows is not None else None
    negatives = plan.negatives
    head_relation = clause.head.relation
    head_spec = plan.head_spec
    observer = StepObserver() if OBS.enabled else None
    matches = plan.execute(
        model, delta_position, rows, exclude, planner.reorder,
        planner.estimator, planner.composite, planner.materialize_deltas,
        observer,
    )
    try:
        for subst, facts in matches:
            neg_atoms = []
            blocked = False
            for relation, spec in negatives:
                ground = plan.build(spec, subst)
                if model.contains(relation, ground):
                    blocked = True
                    break
                neg_atoms.append(Atom(relation, ground))
            if blocked:
                continue
            head = Atom(head_relation, plan.build(head_spec, subst))
            yield Derivation(head, clause, tuple(facts), tuple(neg_atoms))
    finally:
        if observer is not None and observer.steps:
            plan.record_execution(observer.steps)
            span = OBS.tracer.current
            if span is not None:
                span.event(
                    "plan",
                    clause=str(clause),
                    steps=[dict(entry) for entry in observer.steps],
                )


def naive_saturate(
    rules: Iterable[Clause],
    model: Model,
    listener: Optional[DerivationListener] = None,
    *,
    planner: Optional[Planner] = None,
) -> set[Atom]:
    """Close *model* under *rules* by brute-force iteration.

    Returns the facts added. Simple and obviously correct; used as the
    reference point for the delta-driven evaluator (experiment E9).
    """
    if planner is None:
        planner = DEFAULT_PLANNER
    rules = tuple(rules)
    added: set[Atom] = set()
    changed = True
    while changed:
        changed = False
        for clause in rules:
            plan = planner.plan_for(clause)
            for derivation in _plan_derivations(
                plan, model, None, None, None, planner
            ):
                is_new = derivation.head not in model
                if listener is not None:
                    listener(derivation, is_new, plan)
                if is_new:
                    model.add(derivation.head)
                    added.add(derivation.head)
                    changed = True
    return added


def semi_naive_saturate(
    rules: Iterable[Clause],
    model: Model,
    listener: Optional[DerivationListener] = None,
    *,
    initial_full: bool = True,
    delta: Optional[Mapping[str, set[tuple]]] = None,
    full_fire: Iterable[Clause] = (),
    planner: Optional[Planner] = None,
) -> set[Atom]:
    """Close *model* under *rules* with the delta-driven mechanism.

    With ``initial_full=True`` (from-scratch saturation of a stratum) every
    rule fires fully once, after which only helpful rules re-fire against
    the increments. With ``initial_full=False`` the caller provides the
    external increments: *delta* maps relations (from lower strata or a
    fact insertion — already added to the model) to their new rows, and
    *full_fire* lists rules that must fire fully regardless (e.g. rules
    whose negated hypothesis lost tuples, or freshly inserted rules).

    Every successful instantiation is reported at least once across the
    saturation: an instance fires in the round its last positive body fact
    entered the increment, so supports built from the listener are complete.
    """
    if planner is None:
        planner = DEFAULT_PLANNER
    rules = tuple(rules)
    full_fire = set(full_fire)
    added: set[Atom] = set()
    next_delta: dict[str, set[tuple]] = {}

    def emit(derivation: Derivation, plan: ClausePlan) -> None:
        is_new = derivation.head not in model
        if listener is not None:
            listener(derivation, is_new, plan)
        if is_new:
            model.add(derivation.head)
            added.add(derivation.head)
            next_delta.setdefault(derivation.head.relation, set()).add(
                derivation.head.args
            )

    if initial_full:
        # Facts first, silently from the delta's point of view: the full
        # rule pass below sees them all, so queueing them as increments
        # would only make the first delta round repeat the full joins.
        for clause in rules:
            if not clause.body:
                plan = planner.plan_for(clause)
                for derivation in _plan_derivations(
                    plan, model, None, None, None, planner
                ):
                    emit(derivation, plan)
        next_delta.clear()
        for clause in rules:
            if clause.body:
                plan = planner.plan_for(clause)
                for derivation in _plan_derivations(
                    plan, model, None, None, None, planner
                ):
                    emit(derivation, plan)
    else:
        external: Mapping[str, set[tuple]] = delta or {}
        for clause in rules:
            if clause in full_fire:
                plan = planner.plan_for(clause)
                for derivation in _plan_derivations(
                    plan, model, None, None, None, planner
                ):
                    emit(derivation, plan)
                continue
            if not clause.body:
                # An asserted fact outside full_fire cannot react to a
                # delta; skipping keeps the pass O(rules), not O(clauses).
                continue
            plan = planner.plan_for(clause)
            for position, literal in enumerate(clause.positive_body):
                rows = external.get(literal.relation)
                if rows:
                    for derivation in _plan_derivations(
                        plan, model, position, rows, None, planner
                    ):
                        emit(derivation, plan)

    round_number = 0
    while next_delta:
        current = next_delta
        next_delta = {}
        round_number += 1
        with OBS.span("round") as round_span:
            if round_span:
                round_span.set("round", round_number)
                round_span.set(
                    "delta",
                    {rel: len(rows) for rel, rows in current.items()},
                )
            for clause in rules:
                body = clause.positive_body
                if not body:
                    continue
                delta_positions = [
                    position
                    for position, literal in enumerate(body)
                    if current.get(literal.relation)
                ]
                if not delta_positions:
                    continue
                plan = planner.plan_for(clause)
                delta_positions, first_live = _choose_delta_positions(
                    plan, model, clause, delta_positions, current, planner
                )
                for k, position in enumerate(delta_positions):
                    # Triangular split: later delta positions are
                    # restricted to their pre-round content, so an
                    # instantiation whose body facts all arrived this
                    # round fires exactly once (at its last delta position
                    # in the chosen order).
                    if k < first_live:
                        # Dominated: a later position's relation is
                        # entirely inside the increment, so its restricted
                        # candidate set is empty and this firing cannot
                        # match (see _choose_delta_positions).
                        continue
                    restrict = {
                        later: current[body[later].relation]
                        for later in delta_positions[k + 1 :]
                    }
                    for derivation in _plan_derivations(
                        plan,
                        model,
                        position,
                        current[body[position].relation],
                        restrict or None,
                        planner,
                    ):
                        emit(derivation, plan)
            if round_span:
                round_span.set(
                    "emitted",
                    sum(len(rows) for rows in next_delta.values()),
                )
    return added


def _choose_delta_positions(
    plan: ClausePlan,
    model: Model,
    clause: Clause,
    positions: list[int],
    current: Mapping[str, set[tuple]],
    planner: "Planner",
) -> tuple[list[int], int]:
    """Cost-based ordering of a helpful rule's delta positions.

    The triangular split is valid under *any* permutation of the delta
    positions (each instantiation still fires exactly once, at its last
    delta position in the chosen order), so the order is free to choose by
    cost. Two levers:

    * positions whose relation is *entirely covered* by the increment
      (every tuple arrived this round) are moved to the front. A firing is
      provably empty whenever a **later** position is covered — its
      restricted candidate set (relation minus increment) has nothing left
      — so with the covered positions up front, every firing before the
      last covered one is dominated and skipped. The returned index is the
      first live firing.
    * the remaining positions are ordered by the plan's estimated firing
      cost (:meth:`~repro.datalog.plan.ClausePlan.estimate_firing`), so
      the costliest drivers fire last, where the exclusion sets of the
      triangular split have already thinned the most candidates.

    With ``reorder=False`` or ``delta_choice=False`` the enumeration
    order is kept and nothing is skipped — the pre-statistics behaviour,
    and the baseline the differential harness compares against.
    """
    if (
        not planner.reorder
        or not planner.delta_choice
        or len(positions) <= 1
    ):
        return positions, 0
    body = clause.positive_body
    covered = [
        position
        for position in positions
        # increments are already in the model, so equal sizes mean the
        # whole relation arrived this round
        if len(current[body[position].relation])
        >= model.count_of(body[position].relation)
    ]
    if len(covered) <= 1 and len(positions) <= 2:
        # nothing to skip and at most one free choice: keep written order
        ordered = positions
    else:
        rest = [p for p in positions if p not in covered]
        rest.sort(
            key=lambda position: plan.estimate_firing(
                model,
                position,
                len(current[body[position].relation]),
                planner.estimator,
            )
        )
        ordered = covered + rest
    first_live = max(len(covered) - 1, 0)
    return ordered, first_live


def saturate(
    rules: Iterable[Clause],
    model: Model,
    listener: Optional[DerivationListener] = None,
    method: str = "seminaive",
    *,
    planner: Optional[Planner] = None,
) -> set[Atom]:
    """From-scratch saturation of one stratum with the chosen method."""
    if method == "seminaive":
        return semi_naive_saturate(rules, model, listener, planner=planner)
    if method == "naive":
        return naive_saturate(rules, model, listener, planner=planner)
    raise ValueError(f"unknown saturation method {method!r}")


def compute_model(
    program: Program,
    *,
    stratification: Optional[Stratification] = None,
    method: str = "seminaive",
    listener: Optional[DerivationListener] = None,
    granularity: str = "level",
    planner: Optional[Planner] = None,
) -> Model:
    """Compute the standard model M(P) by iterated saturation.

    ``M1 = SAT(P1, ∅), M2 = SAT(P2, M1), ..., Mn = SAT(Pn, Mn-1)``
    (section 2 of the paper). The asserted facts are bodiless clauses of
    their relation's stratum, so they enter the model during that stratum's
    round 0.
    """
    if stratification is None:
        stratification = stratify(program, granularity=granularity)
    model = Model()
    for stratum in stratification:
        saturate(stratum.clauses, model, listener, method, planner=planner)
    return model
