"""Exception hierarchy for the stratified Datalog substrate.

Every error raised by :mod:`repro` derives from :class:`DatalogError`, so
callers can catch one type to handle any library failure.

Since the :mod:`repro.analysis` subsystem exists, the static well-formedness
errors are *diagnostic-carrying*: they know their stable diagnostic code
(``DL001`` for safety, ``DL002`` for stratification) and, when the offending
clause came from parsed source, the 1-based line/column it starts at. The
analyzer reports the same conditions as structured
:class:`~repro.analysis.Diagnostic` records without raising; the exceptions
remain the hard enforcement path on update admission.
"""

from __future__ import annotations


class DatalogError(Exception):
    """Base class for all errors raised by the library.

    ``code`` is the stable diagnostic code of the condition (``DL001``,
    ``DL002``, ...) when the error corresponds to one of the static
    analyzer's checks, else ``None``. ``line``/``column`` are 1-based source
    positions, 0 when the subject did not come from parsed text.
    """

    code: str | None = None

    def __init__(self, message: str, *, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class ParseError(DatalogError):
    """The textual program could not be parsed.

    Carries the position of the offending token so callers can point at the
    source.
    """

    code = "DL000"

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(message, line=line, column=column)


class SafetyError(DatalogError):
    """A clause violates the range-restriction (safety) condition.

    Every variable occurring in the head or in a negative body literal must
    also occur in a positive body literal; otherwise the clause does not have
    a finite active-domain meaning.
    """

    code = "DL001"


class StratificationError(DatalogError):
    """The program is not stratified.

    Raised when the dependency graph contains a cycle through a negative
    arc, i.e. there is recursion "through" negation, or when a rule update
    would make the database unstratified (the paper requires update
    admission to check this, section 4).

    ``witness`` is the offending cycle as a tuple of
    :class:`~repro.datalog.dependency.Arc` objects (the first one negative)
    when the raiser could compute one, else ``()``.
    """

    code = "DL002"

    def __init__(
        self,
        message: str,
        *,
        witness: tuple = (),
        line: int = 0,
        column: int = 0,
    ) -> None:
        self.witness = tuple(witness)
        super().__init__(message, line=line, column=column)


class UpdateError(DatalogError):
    """An update is not admissible.

    Examples: deleting a fact that was never asserted (the paper only allows
    deletions "for the relations defined in the extensional part"), or
    deleting a rule that is not part of the program.
    """
