"""Exception hierarchy for the stratified Datalog substrate.

Every error raised by :mod:`repro` derives from :class:`DatalogError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class DatalogError(Exception):
    """Base class for all errors raised by the library."""


class ParseError(DatalogError):
    """The textual program could not be parsed.

    Carries the position of the offending token so callers can point at the
    source.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class SafetyError(DatalogError):
    """A clause violates the range-restriction (safety) condition.

    Every variable occurring in the head or in a negative body literal must
    also occur in a positive body literal; otherwise the clause does not have
    a finite active-domain meaning.
    """


class StratificationError(DatalogError):
    """The program is not stratified.

    Raised when the dependency graph contains a cycle through a negative
    arc, i.e. there is recursion "through" negation, or when a rule update
    would make the database unstratified (the paper requires update
    admission to check this, section 4).
    """


class UpdateError(DatalogError):
    """An update is not admissible.

    Examples: deleting a fact that was never asserted (the paper only allows
    deletions "for the relations defined in the extensional part"), or
    deleting a rule that is not part of the program.
    """
