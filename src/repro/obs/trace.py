"""Span-based revision tracing with JSON and Chrome trace-event export.

A maintenance update is a tree of timed phases: the root span covers the
whole ``insert_fact`` / ``delete_fact`` / ``apply_batch`` call, with
nested spans for the removal and addition phases, the per-stratum work,
and the semi-naive rounds (each carrying its delta sizes). Plan-step
records (estimated vs. actual matched rows per join step) attach to the
innermost open span as *events*.

The tracer keeps a bounded deque of completed root spans.  Export comes
in two shapes:

* :meth:`Span.to_dict` / :meth:`Span.from_dict` — a nested JSON tree that
  round-trips exactly (the archival form, and what the CLI ``trace``
  verb prints);
* :meth:`Tracer.chrome_events` — the flat Chrome trace-event format
  (``chrome://tracing`` / Perfetto ``X`` complete events, microsecond
  timestamps), for eyeballing where a revision burned its time.

Spans are context managers handed out by :meth:`Tracer.span`. When
tracing is disabled the runtime returns the shared falsy
:data:`NULL_SPAN` instead, so instrumentation sites write::

    with OBS.span("phase:removal") as span:
        ...
        if span:
            span.set("evicted", len(evicted))

and pay one attribute lookup plus a no-op context manager when disabled.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from types import TracebackType
from typing import Callable, Optional


class Span:
    """One timed, attributed node of a trace tree."""

    __slots__ = ("name", "start", "duration", "attrs", "events", "children",
                 "_tracer")

    def __init__(
        self,
        name: str,
        start: float,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.start = start
        self.duration: Optional[float] = None
        self.attrs: dict = {}
        self.events: list[dict] = []
        self.children: list[Span] = []
        self._tracer = tracer

    def set(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def event(self, name: str, **attrs: object) -> None:
        self.events.append({"name": name, **attrs})

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._close(self)
        return False

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready nested tree; round-trips via :meth:`from_dict`."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "events": [dict(event) for event in self.events],
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(data["name"], data["start"])
        span.duration = data.get("duration")
        span.attrs = dict(data.get("attrs") or {})
        span.events = [dict(event) for event in data.get("events") or ()]
        span.children = [
            cls.from_dict(child) for child in data.get("children") or ()
        ]
        return span

    def pretty(self, indent: int = 0) -> str:
        """An indented one-line-per-span rendering for terminals."""
        pad = "  " * indent
        duration = (
            f"{self.duration * 1000:.3f}ms"
            if self.duration is not None
            else "open"
        )
        attrs = "".join(
            f" {key}={value}" for key, value in sorted(self.attrs.items())
        )
        lines = [f"{pad}{self.name} [{duration}]{attrs}"]
        for event in self.events:
            name = event.get("name", "event")
            rest = {k: v for k, v in event.items() if k != "name"}
            lines.append(f"{pad}  * {name} {rest}" if rest else f"{pad}  * {name}")
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {len(self.children)} children)"


class _NullSpan:
    """Falsy, reentrant, stateless stand-in for a disabled tracer."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False

    def set(self, key: str, value: object) -> None:
        pass

    def event(self, name: str, **attrs: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """A stack-shaped span builder with a bounded completed-trace history.

    The open-span stack is **thread-local**: each worker thread of the
    concurrent service builds its own span tree (a span opened on one
    thread never becomes the child of another thread's span), while the
    completed-trace deque is shared — ``deque.append`` is atomic, so
    roots from every thread land in one history, interleaved by
    completion time.
    """

    def __init__(
        self,
        max_traces: int = 64,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._clock = clock
        self._local = threading.local()
        self.traces: deque[Span] = deque(maxlen=max_traces)

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str) -> Span:
        """Open a child of the innermost open span (or a new root)."""
        span = Span(name, self._clock(), self)
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        return span

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None outside any traced region."""
        stack = self._stack
        return stack[-1] if stack else None

    @property
    def last(self) -> Optional[Span]:
        """The most recently completed root span."""
        return self.traces[-1] if self.traces else None

    def _close(self, span: Span) -> None:
        span.duration = self._clock() - span.start
        # Exceptions may unwind several spans through one __exit__ chain;
        # pop (and close) everything above the span being exited.
        stack = self._stack
        while stack:
            top = stack.pop()
            if top is span:
                break
            if top.duration is None:
                top.duration = self._clock() - top.start
        if not stack:
            self.traces.append(span)

    def reset(self) -> None:
        # Only the calling thread's open stack can be dropped safely;
        # other threads' stacks die with their threads.
        self._stack.clear()
        self.traces.clear()

    # ------------------------------------------------------------------
    # Chrome trace-event export
    # ------------------------------------------------------------------

    def chrome_events(self) -> list[dict]:
        """All completed traces as Chrome trace-event ``X`` records.

        Timestamps are microseconds relative to the earliest recorded
        span, which is what ``chrome://tracing`` and Perfetto expect of a
        self-contained file: ``json.dump({"traceEvents": events}, fh)``.
        """
        events: list[dict] = []
        if not self.traces:
            return events
        origin = min(span.start for span in self.traces)

        def emit(span: Span) -> None:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start - origin) * 1e6,
                    "dur": (span.duration or 0.0) * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        **span.attrs,
                        **(
                            {"events": span.events} if span.events else {}
                        ),
                    },
                }
            )
            for child in span.children:
                emit(child)

        for root in self.traces:
            emit(root)
        return events
