"""Process-wide metrics: counters, gauges and histograms with exposition.

The instruments are deliberately tiny — a counter is one attribute add —
because they sit on maintenance paths: journal appends, snapshot writes,
index builds, update accounting. Two usage patterns keep the *disabled*
cost at one attribute lookup:

* rare events (an index build, a reclamation sweep, a snapshot) guard the
  whole block with ``if OBS.enabled:`` and fetch instruments through the
  registry inside the guard;
* a caller that cannot afford even the registry lookup per event caches
  the instrument handle once; when telemetry is off the handle is one of
  the shared null instruments below, whose methods are no-ops.

Instruments and the registry are thread-safe: the concurrent service's
worker pool increments counters and observes histograms from many threads
at once, so every update takes a per-instrument lock and create-or-get
takes a registry lock. The disabled path is untouched — ``OBS.metrics``
is the lock-free :class:`NullRegistry` then, and the ``if OBS.enabled:``
guard is still one attribute lookup (the E19 overhead guard enforces it).

:meth:`MetricsRegistry.exposition` renders the whole registry in the
Prometheus text format (``# TYPE`` / ``# HELP`` comments, ``_bucket`` /
``_sum`` / ``_count`` series per histogram), so a future service front-end
(ROADMAP item 1) can expose ``/metrics`` by returning the string verbatim.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Optional, TypeVar, Union, cast

# Latency-oriented default buckets (seconds): journal fsyncs sit around
# 1e-4..1e-2, full updates around 1e-4..1, snapshot writes up to ~10.
DEFAULT_BUCKETS = (
    0.00001, 0.0001, 0.001, 0.01, 0.1, 1.0, 10.0,
)

Labels = tuple[tuple[str, str], ...]


def _labelize(labels: dict) -> Labels:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _render_labels(labels: Labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "labels", "value", "_lock")

    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (sizes, cursors, cache fill)."""

    __slots__ = ("name", "labels", "value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """A cumulative-bucket histogram over float observations."""

    __slots__ = (
        "name", "labels", "buckets", "counts", "sum", "count", "_lock"
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1

    def bucket_counts(self) -> dict[float, int]:
        """Cumulative count per upper bound (Prometheus ``le`` semantics)."""
        with self._lock:
            return dict(zip(self.buckets, self.counts))


class _NullInstrument:
    """Shared no-op stand-in for any instrument kind.

    Falsy, stateless and method-complete, so a cached handle obtained
    while telemetry was disabled costs nothing when used.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()

_Instrument = Union[Counter, Gauge, Histogram]
_I = TypeVar("_I", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Create-or-get instruments by name (+ optional labels).

    A name is bound to one instrument kind; asking for the same name with
    a different kind raises, mirroring the Prometheus data model. Distinct
    label sets under one name are distinct time series sharing the name's
    kind and help text. Create-or-get is serialized by a registry lock so
    concurrent first lookups of one series return the same instrument.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, Labels], _Instrument] = {}
        self._kinds: dict[str, str] = {}
        self._helps: dict[str, str] = {}
        self._lock = threading.Lock()

    def _get(
        self,
        cls: type[_I],
        name: str,
        help: str,
        labels: dict,
        **kwargs: Any,
    ) -> _I:
        with self._lock:
            kind = self._kinds.get(name)
            if kind is None:
                self._kinds[name] = cls.kind
                if help:
                    self._helps[name] = help
            elif kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} is a {kind}, not a {cls.kind}"
                )
            key = (name, _labelize(labels))
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._instruments[key] = instrument
            return cast(_I, instrument)

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> Histogram:
        kwargs: dict[str, Iterable[float]] = (
            {} if buckets is None else {"buckets": buckets}
        )
        return self._get(Histogram, name, help, labels, **kwargs)

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()
            self._kinds.clear()
            self._helps.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> dict:
        """A JSON-ready dump: name → list of {labels, value(s)} series."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        out: dict[str, list] = {}
        for (name, labels), instrument in instruments:
            series: dict = {"labels": dict(labels)}
            if isinstance(instrument, Histogram):
                series["sum"] = instrument.sum
                series["count"] = instrument.count
                series["buckets"] = {
                    str(bound): count
                    for bound, count in instrument.bucket_counts().items()
                }
            else:
                series["value"] = instrument.value
            out.setdefault(name, []).append(series)
        return out

    def exposition(self) -> str:
        """The registry in the Prometheus text exposition format."""
        with self._lock:
            snapshot = sorted(self._instruments.items())
            helps = dict(self._helps)
            kinds = dict(self._kinds)
        lines: list[str] = []
        by_name: dict[str, list] = {}
        for (name, _labels), instrument in snapshot:
            by_name.setdefault(name, []).append(instrument)
        for name, instruments in by_name.items():
            help_text = helps.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kinds[name]}")
            for instrument in instruments:
                rendered = _render_labels(instrument.labels)
                if isinstance(instrument, Histogram):
                    cumulative = 0
                    for bound, count in zip(
                        instrument.buckets, instrument.counts
                    ):
                        cumulative = count
                        le = _render_labels(
                            instrument.labels + (("le", repr(bound)),)
                        )
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    le = _render_labels(
                        instrument.labels + (("le", "+Inf"),)
                    )
                    lines.append(f"{name}_bucket{le} {instrument.count}")
                    lines.append(f"{name}_sum{rendered} {instrument.sum}")
                    lines.append(
                        f"{name}_count{rendered} {instrument.count}"
                    )
                else:
                    lines.append(f"{name}{rendered} {instrument.value}")
        return "\n".join(lines) + ("\n" if lines else "")


class NullRegistry:
    """Registry twin whose instruments are all the shared no-op.

    :data:`~repro.obs.runtime.OBS` swaps this in while telemetry is
    disabled, so code holding ``OBS.metrics`` pays one attribute lookup
    plus empty method calls — no dict traffic, no allocation.
    """

    __slots__ = ()

    def counter(
        self, name: str, help: str = "", **labels: object
    ) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(
        self, name: str, help: str = "", **labels: object
    ) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> _NullInstrument:
        return NULL_INSTRUMENT

    def reset(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def as_dict(self) -> dict:
        return {}

    def exposition(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()
