"""Observability: metrics registry, revision tracing, exposition.

See :mod:`repro.obs.runtime` for the process-wide :data:`OBS` switch,
:mod:`repro.obs.metrics` for instruments and the Prometheus text format,
and :mod:`repro.obs.trace` for span trees and Chrome trace export.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    NullRegistry,
)
from .runtime import OBS, Observability, telemetry
from .trace import NULL_SPAN, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullRegistry",
    "OBS",
    "Observability",
    "Span",
    "Tracer",
    "telemetry",
]
