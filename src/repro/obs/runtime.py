"""The process-wide observability switchboard.

Everything in ``repro`` that wants telemetry goes through the module
singleton :data:`OBS`.  The design goal is that *disabled* is the default
and costs almost nothing: ``OBS.enabled`` is a plain attribute,
``OBS.span`` returns the shared falsy :data:`~repro.obs.trace.NULL_SPAN`,
and ``OBS.metrics`` is the :data:`~repro.obs.metrics.NULL_REGISTRY` whose
instruments are all no-ops.  Hot loops never consult OBS per row — the
instrumentation points sit at per-update / per-phase / per-round /
per-plan-execution granularity.

This module imports only the two sibling modules and the stdlib, so any
layer (store, datalog, core, cli) can import it without cycles.
"""

from __future__ import annotations

import contextlib

from typing import Iterator, Optional, Union

from .metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from .trace import NULL_SPAN, Span, Tracer, _NullSpan


class Observability:
    """Holds the metrics registry and tracer behind one enable switch."""

    def __init__(self) -> None:
        self.enabled = False
        self.metrics: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY
        self.tracer = Tracer()
        # kept across disable so counters survive
        self._registry: Optional[MetricsRegistry] = None

    def enable(self) -> None:
        if self._registry is None:
            self._registry = MetricsRegistry()
        self.metrics = self._registry
        self.enabled = True

    def disable(self) -> None:
        """Stop collecting; recorded metrics and traces stay readable."""
        self.enabled = False
        self.metrics = NULL_REGISTRY

    def reset(self) -> None:
        """Drop all recorded metrics and traces (enable state unchanged)."""
        if self._registry is not None:
            self._registry.reset()
        self.tracer.reset()

    def span(self, name: str) -> Union[Span, _NullSpan]:
        """A live span when enabled, the shared no-op span otherwise."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name)

    # ------------------------------------------------------------------
    # Read-side conveniences (work whether or not collection is on)
    # ------------------------------------------------------------------

    @property
    def registry(self) -> Union[MetricsRegistry, NullRegistry]:
        """The real registry, if one was ever enabled (else the null one)."""
        return self._registry if self._registry is not None else NULL_REGISTRY

    def exposition(self) -> str:
        return self.registry.exposition()

    def metrics_dict(self) -> dict:
        return self.registry.as_dict()


OBS = Observability()


@contextlib.contextmanager
def telemetry(reset: bool = True) -> Iterator[Observability]:
    """Enable collection for a block (mainly tests and benchmarks)::

        with telemetry() as obs:
            engine.insert_fact(fact)
            trace = obs.tracer.last
    """
    if reset:
        OBS.reset()
    was_enabled = OBS.enabled
    OBS.enable()
    try:
        yield OBS
    finally:
        if not was_enabled:
            OBS.disable()
