"""Engine-generic state deltas: extract, conflict-check, merge, apply.

A worker executes one transaction against a restored checkpoint and comes
back with a :class:`StateDelta` — the *net* difference between its final
state and the checkpoint it started from:

* **model delta** — facts added / removed, folded from the transaction's
  :class:`~repro.core.metrics.UpdateResult` stream (O(changed), never a
  model scan);
* **support delta** — per *leaf table* (a copy-on-write
  :class:`~repro.core.arena.SupportTable` or a plain ``{fact: value}``
  dict), the slots rewritten or removed. Arena tables descend from the
  checkpoint's tables via ``copy()``, so their privatized-slot sets give
  the delta in O(slots written) — see :meth:`SupportTable.delta_from`.

Merging deltas from one commuting group is optimistic: the scheduler
certifies the *pattern cones* disjoint, which makes model deltas provably
non-conflicting, but history-dependent support sweeps (the cascade
engines rewrite same-relation neighbours) can still touch one slot from
two workers. :func:`merge_deltas` detects any overlapping slot with
unequal values and reports the collision; the executor then re-runs that
group serially instead of merging. Equal values merge silently — the
common case for redundant sweeps.

Applying a merged delta to the authoritative engine mirrors the
transactions' assertions into its database, bulk-applies the model delta,
and round-trips the support state through the engine's own
``_support_state()`` / ``_load_support_state()`` pair — every table copy
in that round trip is O(1) copy-on-write.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from ..core.arena import ArenaSosSupports, ArenaSupportState, SupportTable
from ..core.base import MaintenanceEngine
from ..core.metrics import UpdateResult
from ..datalog.atoms import Atom

#: A path naming one leaf table inside a support state dict.
LeafPath = Tuple[str, ...]

#: Per-leaf slot changes; ``None`` marks a removed slot.
LeafDelta = Dict[object, Optional[object]]


class MergeConflict(Exception):
    """Two workers' deltas disagree on one slot — the group must serialize."""


class StateDelta:
    """The net state change of one transaction against its checkpoint."""

    __slots__ = ("name", "added", "removed", "supports")

    def __init__(
        self,
        name: str,
        added: frozenset,
        removed: frozenset,
        supports: Dict[LeafPath, LeafDelta],
    ) -> None:
        self.name = name
        self.added = added
        self.removed = removed
        self.supports = supports

    def __repr__(self) -> str:
        slots = sum(len(leaf) for leaf in self.supports.values())
        return (
            f"StateDelta({self.name}: +{len(self.added)} -{len(self.removed)}"
            f" facts, {slots} support slots)"
        )


def fold_results(
    results: Iterable[UpdateResult], base_model
) -> tuple[set, set]:
    """Net (added, removed) facts of a sequential result stream.

    Within one result ``removed & added`` are migrated facts — removed
    and re-derived by the same update, so present afterwards. Across
    results the *last* verdict per fact wins. The survivors are filtered
    against the checkpoint's model, because the deletion algorithms of
    some engines report every re-derived fact as ``added`` even when it
    never left the model; without the filter that over-report would both
    pollute the delta and mask a later genuine removal of the same fact.
    """
    present: dict = {}
    for result in results:
        for fact in result.added:
            present[fact] = True
        for fact in result.removed - result.added:
            present[fact] = False
    added = {
        fact
        for fact, held in present.items()
        if held and fact not in base_model
    }
    removed = {
        fact
        for fact, held in present.items()
        if not held and fact in base_model
    }
    return added, removed


# ----------------------------------------------------------------------
# Support state flattening
# ----------------------------------------------------------------------


def support_leaves(state: dict) -> Dict[LeafPath, object]:
    """Flatten a support state into ``{path: leaf}``.

    A leaf is either a :class:`SupportTable` (arena engines) or a plain
    ``{fact: value}`` dict (record-mode and pair-support engines). The
    paths are stable across `_support_state()` calls of one engine, so a
    delta computed against a checkpoint's leaves applies to a later
    state's leaves by path.
    """
    leaves: Dict[LeafPath, object] = {}
    for key, value in state.items():
        if isinstance(value, ArenaSosSupports):
            leaves[(key, "pos")] = value.pos_table
            leaves[(key, "neg")] = value.neg_table
        elif isinstance(value, ArenaSupportState):
            leaves[(key, "table")] = value.table
        else:
            leaves[(key,)] = value
    return leaves


def arenas_of(state: dict) -> Iterator:
    """The arena objects referenced by a support state (deduplicated)."""
    seen: set[int] = set()
    for value in state.values():
        if isinstance(value, ArenaSupportState):
            if id(value.arena) not in seen:
                seen.add(id(value.arena))
                yield value.arena


def _dict_delta(live: dict, base: dict) -> LeafDelta:
    delta: LeafDelta = {}
    for key in base.keys() - live.keys():
        delta[key] = None
    for key, value in live.items():
        if base.get(key) != value:
            delta[key] = value
    return delta


def extract_delta(
    name: str,
    engine: MaintenanceEngine,
    base_model,
    base_supports: dict,
    results: Sequence[UpdateResult],
) -> StateDelta:
    """The transaction's :class:`StateDelta` against its checkpoint.

    Must run *before* the engine's state is copied or restored again:
    the arena fast path reads the live tables' privatized-slot sets,
    which a ``copy()`` resets.

    The net model change is folded against the checkpoint's model (O(1)
    membership per changed fact — see :func:`fold_results`), which is
    what makes two commuting transactions' deltas disjoint.
    """
    added, removed = fold_results(results, base_model)
    live_leaves = support_leaves(engine._live_support_state())
    base_leaves = support_leaves(base_supports)
    supports: Dict[LeafPath, LeafDelta] = {}
    for path, live_leaf in live_leaves.items():
        base_leaf = base_leaves.get(path)
        if isinstance(live_leaf, SupportTable):
            base_table = (
                base_leaf
                if isinstance(base_leaf, SupportTable)
                else SupportTable()
            )
            leaf_delta = live_leaf.delta_from(base_table)
        else:
            leaf_delta = _dict_delta(live_leaf, base_leaf or {})
        if leaf_delta:
            supports[path] = leaf_delta
    return StateDelta(
        name, frozenset(added), frozenset(removed), supports
    )


# ----------------------------------------------------------------------
# Merge + apply
# ----------------------------------------------------------------------


def merge_deltas(
    deltas: Sequence[StateDelta],
) -> tuple[set, set, Dict[LeafPath, LeafDelta]]:
    """Union the group's deltas; raise :class:`MergeConflict` on collision.

    Model facts collide when one transaction adds what another removes
    (the certificates make this impossible, so it is treated as a
    certificate bug and surfaced loudly via the serial fallback). Support
    slots collide when two deltas rewrite one slot to *different* values;
    equal rewrites merge.
    """
    added: set = set()
    removed: set = set()
    supports: Dict[LeafPath, LeafDelta] = {}
    for delta in deltas:
        if (delta.added & removed) or (delta.removed & added):
            raise MergeConflict(
                f"model delta of {delta.name!r} collides with the group"
            )
        added |= delta.added
        removed |= delta.removed
        for path, leaf_delta in delta.supports.items():
            target = supports.setdefault(path, {})
            for slot, value in leaf_delta.items():
                if slot in target and target[slot] != value:
                    raise MergeConflict(
                        f"support slot {slot!r} at {'/'.join(path)} "
                        f"rewritten divergently by {delta.name!r}"
                    )
                target[slot] = value
    return added, removed, supports


def apply_merged(
    engine: MaintenanceEngine,
    updates: Sequence[Tuple[str, Atom]],
    added: set,
    removed: set,
    supports: Dict[LeafPath, LeafDelta],
) -> None:
    """Install a merged group delta into the authoritative engine.

    *updates* are every merged transaction's fact updates in submission
    order — they replay against the database's asserted program (the
    workers only mutated their own copies). The support round trip
    (``_support_state`` → mutate copies → ``_load_support_state``) costs
    O(slots changed) thanks to the copy-on-write tables.
    """
    for operation, subject in updates:
        if operation == "insert_fact":
            engine.db.assert_fact(subject)
        elif operation == "delete_fact":
            engine.db.retract_fact(subject)
        else:  # pragma: no cover - rule ops never reach the merge path
            raise ValueError(f"cannot merge {operation!r}")
    if removed:
        engine.model.discard_many(removed)
    if added:
        engine.model.add_many(added)
    if supports:
        state = engine._support_state()
        leaves = support_leaves(state)
        for path, leaf_delta in supports.items():
            leaf = leaves[path]
            if isinstance(leaf, SupportTable):
                for slot, value in leaf_delta.items():
                    if value is None:
                        leaf.pop(slot)  # type: ignore[arg-type]
                    else:
                        leaf.replace(slot, set(value))  # type: ignore[arg-type]
            else:
                for key, value in leaf_delta.items():
                    if value is None:
                        leaf.pop(key, None)  # type: ignore[union-attr]
                    else:
                        leaf[key] = value  # type: ignore[index]
        engine._load_support_state(state)
