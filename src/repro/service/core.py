"""The revision service: scheduled-parallel admission over a durable store.

:class:`RevisionService` is the single-writer front door to one
:class:`~repro.store.Store`. A submitted batch goes through the
:class:`~.executor.ParallelExecutor` (commutation scheduling, worker
threads, delta merge) and the accepted transactions are made durable with
**one** journal group commit — one fsync, one redo-tail check — instead of
one per transaction. That, plus scheduling, is where the throughput over
per-transaction serial admission comes from (benchmark E22).

Readers never block the writer: :meth:`RevisionService.read_view` pins an
``engine.checkpoint()`` — kilobytes of copy-on-write references — tagged
with the store revision it reflects. A view stays valid and immutable
however many batches commit after it; dropping it is garbage collection,
not coordination.

The service serializes writers with an internal lock, so many sessions
(threads, or the :mod:`~repro.service.server` front-end's connections)
may share one instance.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Tuple

from ..core.base import _as_fact
from ..core.registry import create_engine
from ..obs import OBS
from ..store.store import Store
from .executor import ExecutionReport, ParallelExecutor, TransactionOutcome


class BatchResult:
    """One admitted batch: execution report + journal positions."""

    __slots__ = ("report", "seqs", "revision")

    def __init__(
        self, report: ExecutionReport, seqs: List[int], revision: int
    ) -> None:
        self.report = report
        self.seqs = seqs
        self.revision = revision

    @property
    def outcomes(self) -> List[TransactionOutcome]:
        return self.report.outcomes

    @property
    def committed(self) -> int:
        return len(self.seqs)

    def __repr__(self) -> str:
        return (
            f"BatchResult({self.committed}/{len(self.report.outcomes)} "
            f"committed, revision={self.revision})"
        )


class ReadView:
    """An immutable model snapshot pinned at one store revision."""

    __slots__ = ("epoch", "_checkpoint", "_released")

    def __init__(self, epoch: int, checkpoint: dict) -> None:
        self.epoch = epoch
        self._checkpoint = checkpoint
        self._released = False

    @property
    def model(self):
        return self._checkpoint["model"]

    def holds(self, fact) -> bool:
        """Membership of *fact* in the pinned model."""
        return _as_fact(fact) in self._checkpoint["model"]

    def rows(self, relation: str) -> Tuple[tuple, ...]:
        """The pinned rows of *relation*, sorted."""
        for name, _arity, rows in self._checkpoint["model"].relation_data():
            if name == relation:
                return tuple(rows)
        return ()

    def release(self) -> None:
        if not self._released:
            self._released = True
            if OBS.enabled:
                OBS.metrics.gauge(
                    "repro_service_read_views",
                    "Read views currently pinning a checkpoint epoch",
                ).dec()

    def __enter__(self) -> "ReadView":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        return f"ReadView(epoch={self.epoch})"


class RevisionService:
    """Concurrent admission, group-commit durability, pinned readers."""

    def __init__(self, store: Store, max_workers: int = 4) -> None:
        self.store = store
        self._lock = threading.RLock()
        self._closed = False

        def factory():
            return create_engine(
                store.engine_name, "", build=False, **store.engine_kwargs
            )

        self.executor = ParallelExecutor(
            store.engine, factory, max_workers=max_workers
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def submit_batch(
        self,
        batch: Iterable[Tuple[str, Iterable[Tuple[str, object]]]],
    ) -> BatchResult:
        """Execute *batch* and group-commit the accepted transactions.

        The final engine state and journal are identical to admitting the
        accepted transactions one by one in submission order; rejected
        transactions (inadmissible updates) leave no trace.
        """
        with self._lock:
            self._check_open()
            with OBS.span("service:batch") as span:
                # store.travel()/undo() swap the engine object; re-point.
                self.executor.engine = self.store.engine
                report = self.executor.execute(batch)
                accepted = report.accepted()
                seqs = self.store.commit_batch(
                    [updates for _, updates in accepted]
                )
                if span:
                    span.set("committed", len(seqs))
                if OBS.enabled and seqs:
                    OBS.metrics.histogram(
                        "repro_service_batch_size",
                        "Committed transactions per admitted batch",
                        buckets=(1, 2, 4, 8, 16, 32, 64, 128),
                    ).observe(len(seqs))
            return BatchResult(report, seqs, self.store.revision)

    def submit(self, name: str, updates) -> TransactionOutcome:
        """Admit a single transaction (a batch of one)."""
        return self.submit_batch([(name, updates)]).outcomes[0]

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def read_view(self) -> ReadView:
        """Pin the current revision; the writer proceeds unblocked."""
        with self._lock:
            self._check_open()
            view = ReadView(self.store.revision, self.store.engine.checkpoint())
        if OBS.enabled:
            OBS.metrics.gauge(
                "repro_service_read_views",
                "Read views currently pinning a checkpoint epoch",
            ).inc()
        return view

    def holds(self, fact) -> bool:
        """Membership in the *current* model (one consistent read)."""
        with self._lock:
            self._check_open()
            return _as_fact(fact) in self.store.model

    def query(self, fact) -> bool:  # protocol-friendly alias
        return self.holds(fact)

    # ------------------------------------------------------------------
    # History passthrough (serialized with the writer)
    # ------------------------------------------------------------------

    def undo(self, n: int = 1) -> int:
        with self._lock:
            self._check_open()
            revision = self.store.undo(n)
            self.executor.engine = self.store.engine
            return revision

    def redo(self, n: int = 1) -> int:
        with self._lock:
            self._check_open()
            revision = self.store.redo(n)
            self.executor.engine = self.store.engine
            return revision

    def log(self) -> List[str]:
        with self._lock:
            self._check_open()
            return self.store.log()

    @property
    def revision(self) -> int:
        return self.store.revision

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self.executor.close()
                self.store.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")

    def __enter__(self) -> "RevisionService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"RevisionService({self.store!r})"


__all__ = ["BatchResult", "ReadView", "RevisionService"]
