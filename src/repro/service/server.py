"""The ``asyncio`` front-end: many sessions, one maintained store.

Protocol: newline-delimited JSON over TCP. Every request is one object
per line with an ``op`` field (and an optional ``id``, echoed back);
every response is one object with ``ok`` plus op-specific fields.

Write path — *micro-batching*. A ``commit`` request does not run the
transaction inline: it lands on the submission queue and the single
writer task drains whatever is queued (bounded by ``max_batch``, padded
by ``batch_window`` seconds of gathering), admitting the whole batch
through :meth:`RevisionService.submit_batch` in a worker thread. The more
sessions submit concurrently, the larger the commuting groups and the
more transactions share one journal fsync — throughput *rises* with
session count on disjoint-key traffic (benchmark E22).

Read path — sessions either query the live model (serialized with the
writer, one consistent read) or ``pin`` a checkpoint epoch and ``read``
against it however long they like while writers revise; ``release``
drops the pin. Pins are per-connection and released on disconnect.

Ops::

    {"op": "ping"}                          -> {"ok": true, "revision": N}
    {"op": "commit", "updates": ["+d(a,1)", "-d(a,2)"]}
                                            -> {"ok": true, "committed": true,
                                                "seq": N, "mode": "parallel"}
    {"op": "query", "fact": "posted(a,1)"}  -> {"ok": true, "holds": true}
    {"op": "pin"}                           -> {"ok": true, "view": "v1",
                                                "epoch": N}
    {"op": "read", "view": "v1", "fact": F} -> {"ok": true, "holds": ...}
    {"op": "rows", "relation": "posted", ["view": "v1"]}
                                            -> {"ok": true, "rows": [...]}
    {"op": "release", "view": "v1"}         -> {"ok": true}
    {"op": "log"} / {"op": "undo", "n": 1} / {"op": "redo", "n": 1}
    {"op": "metrics"}                       -> Prometheus text exposition
    {"op": "shutdown"}                      -> {"ok": true} then the server
                                               drains and exits

An update is either a signed fact string (``"+deposit(a, 5)"``,
``"-deposit(a, 5)"``; no sign means insert) or an explicit
``{"op": "insert_rule", "subject": "p(X) :- q(X)."}`` object.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from ..datalog.parser import parse_fact
from ..obs import OBS
from .core import ReadView, RevisionService


def parse_update(spec) -> Tuple[str, object]:
    """One protocol update spec -> (operation, subject)."""
    if isinstance(spec, str):
        text = spec.strip()
        operation = "insert_fact"
        if text.startswith("+"):
            text = text[1:]
        elif text.startswith("-"):
            operation = "delete_fact"
            text = text[1:]
        return operation, parse_fact(text.strip().rstrip(". "))
    if isinstance(spec, dict):
        return spec["op"], spec["subject"]
    raise ValueError(f"unparsable update spec {spec!r}")


class _PendingCommit:
    __slots__ = ("name", "updates", "future")

    def __init__(self, name, updates, future):
        self.name = name
        self.updates = updates
        self.future = future


class RevisionServer:
    """One service behind a newline-JSON TCP listener."""

    def __init__(
        self,
        service: RevisionService,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window: float = 0.002,
        max_batch: int = 64,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.batch_window = batch_window
        self.max_batch = max_batch
        self._server: Optional[asyncio.base_events.Server] = None
        self._queue: asyncio.Queue = asyncio.Queue()
        self._writer_task: Optional[asyncio.Task] = None
        self._stopped = asyncio.Event()
        self._txn_counter = 0
        self._view_counter = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._writer_task = asyncio.ensure_future(self._writer_loop())

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._writer_task is not None:
            await self._queue.put(None)  # sentinel: drain then exit
            await self._writer_task
            self._writer_task = None
        self._stopped.set()

    # ------------------------------------------------------------------
    # The single-writer micro-batching loop
    # ------------------------------------------------------------------

    async def _writer_loop(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            item = await self._queue.get()
            if item is None:
                return
            pending = [item]
            self._drain_into(pending)
            if self.batch_window > 0 and len(pending) < self.max_batch:
                # One short gathering pause: lets concurrent sessions'
                # commits pile onto this batch instead of the next fsync.
                await asyncio.sleep(self.batch_window)
                self._drain_into(pending)
            batch = [(p.name, p.updates) for p in pending]
            try:
                result = await loop.run_in_executor(
                    None, self.service.submit_batch, batch
                )
            except Exception as error:  # noqa: BLE001
                for p in pending:
                    if not p.future.done():
                        p.future.set_result(
                            {"committed": False, "error": str(error)}
                        )
                continue
            seq_of = dict(
                zip(
                    (o.name for o in result.outcomes if o.committed),
                    result.seqs,
                )
            )
            for p, outcome in zip(pending, result.outcomes):
                payload = {
                    "committed": outcome.committed,
                    "mode": outcome.mode,
                    "revision": result.revision,
                }
                if outcome.committed:
                    payload["seq"] = seq_of[outcome.name]
                else:
                    payload["error"] = outcome.error
                if not p.future.done():
                    p.future.set_result(payload)

    def _drain_into(self, pending) -> None:
        while len(pending) < self.max_batch:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is None:
                # re-queue the stop sentinel for the outer loop
                self._queue.put_nowait(None)
                return
            pending.append(item)

    # ------------------------------------------------------------------
    # Per-connection handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        views: dict[str, ReadView] = {}
        if OBS.enabled:
            OBS.metrics.gauge(
                "repro_service_sessions",
                "Connected protocol sessions",
            ).inc()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                request: dict = {}
                try:
                    request = json.loads(line)
                    response = await self._dispatch(request, views)
                except Exception as error:  # noqa: BLE001
                    response = {"ok": False, "error": str(error)}
                    if isinstance(request, dict) and "id" in request:
                        response["id"] = request["id"]
                writer.write(
                    json.dumps(response, sort_keys=True).encode() + b"\n"
                )
                await writer.drain()
                if response.get("stopping"):
                    break
        finally:
            for view in views.values():
                view.release()
            if OBS.enabled:
                OBS.metrics.gauge(
                    "repro_service_sessions",
                    "Connected protocol sessions",
                ).dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: dict, views: dict) -> dict:
        op = request.get("op")
        response: dict = {"ok": True}
        if "id" in request:
            response["id"] = request["id"]
        loop = asyncio.get_event_loop()
        service = self.service
        if op == "ping":
            response["revision"] = service.revision
        elif op == "commit":
            updates = [parse_update(spec) for spec in request["updates"]]
            self._txn_counter += 1
            name = f"t{self._txn_counter}"
            future: asyncio.Future = loop.create_future()
            await self._queue.put(_PendingCommit(name, updates, future))
            outcome = await future
            response["name"] = name
            response.update(outcome)
            response["ok"] = True
        elif op == "query":
            response["holds"] = await loop.run_in_executor(
                None, service.holds, request["fact"]
            )
            response["revision"] = service.revision
        elif op == "pin":
            view = await loop.run_in_executor(None, service.read_view)
            self._view_counter += 1
            token = f"v{self._view_counter}"
            views[token] = view
            response["view"] = token
            response["epoch"] = view.epoch
        elif op == "read":
            view = views[request["view"]]
            response["holds"] = view.holds(request["fact"])
            response["epoch"] = view.epoch
        elif op == "rows":
            token = request.get("view")
            if token is not None:
                rows = views[token].rows(request["relation"])
            else:
                with await loop.run_in_executor(
                    None, service.read_view
                ) as view:
                    rows = view.rows(request["relation"])
            response["rows"] = [list(row) for row in rows]
        elif op == "release":
            view = views.pop(request["view"], None)
            if view is not None:
                view.release()
        elif op == "log":
            response["lines"] = await loop.run_in_executor(None, service.log)
        elif op == "undo":
            response["revision"] = await loop.run_in_executor(
                None, service.undo, int(request.get("n", 1))
            )
        elif op == "redo":
            response["revision"] = await loop.run_in_executor(
                None, service.redo, int(request.get("n", 1))
            )
        elif op == "metrics":
            response["exposition"] = OBS.metrics.exposition()
        elif op == "shutdown":
            response["stopping"] = True
            asyncio.ensure_future(self.stop())
        else:
            response = {"ok": False, "error": f"unknown op {op!r}"}
            if "id" in request:
                response["id"] = request["id"]
        return response


class ServiceClient:
    """A minimal pipelining client for tests, benchmarks and the smoke."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._counter = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, op: str, **fields) -> dict:
        self._counter += 1
        payload = {"op": op, "id": self._counter, **fields}
        self._writer.write(
            json.dumps(payload, sort_keys=True).encode() + b"\n"
        )
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def commit(self, updates) -> dict:
        return await self.request("commit", updates=list(updates))

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve(
    service: RevisionService,
    host: str = "127.0.0.1",
    port: int = 0,
    batch_window: float = 0.002,
    max_batch: int = 64,
    ready=None,
) -> None:
    """Run a :class:`RevisionServer` until a ``shutdown`` op arrives.

    *ready*, when given, is called with the started server (the actual
    port is on ``server.port``) — the hook the CLI uses to print the
    address and the smoke test uses to connect.
    """
    server = RevisionServer(
        service,
        host=host,
        port=port,
        batch_window=batch_window,
        max_batch=max_batch,
    )
    await server.start()
    if ready is not None:
        ready(server)
    await server.wait_stopped()
