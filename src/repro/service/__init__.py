"""The concurrent revision service (ROADMAP item 1).

Layers, bottom up:

* :mod:`repro.service.merge` — engine-generic *state deltas*: what one
  transaction changed relative to a checkpoint (model facts + support
  slots), extracted in O(changed) from the copy-on-write arena tables,
  with cross-transaction conflict detection on overlapping slots.
* :mod:`repro.service.executor` — :class:`ParallelExecutor`: runs a
  transaction batch through the commutation scheduler
  (:meth:`repro.analysis.schedule.ConflictGraph.commuting_batches`),
  executes each commuting group's transactions in worker threads against
  per-worker ``engine.checkpoint()`` snapshots, merges the deltas
  deterministically, and falls back to serial execution for conflicting
  arcs (DL011), rule updates, and any group whose deltas collide.
* :mod:`repro.service.core` — :class:`RevisionService`: the executor
  wrapped around a durable :class:`~repro.store.Store` with journal
  group commit (one fsync per admitted batch) and epoch-pinned
  :class:`ReadView` snapshots for readers.
* :mod:`repro.service.server` — the ``asyncio`` newline-JSON front-end
  (``repro serve``): many sessions submit transactions, a micro-batching
  writer admits them through one service, readers pin checkpoint epochs.
"""

from .core import BatchResult, ReadView, RevisionService
from .executor import ExecutionReport, ParallelExecutor, TransactionOutcome
from .merge import StateDelta, extract_delta, merge_deltas

__all__ = [
    "BatchResult",
    "ExecutionReport",
    "ParallelExecutor",
    "ReadView",
    "RevisionService",
    "StateDelta",
    "TransactionOutcome",
    "extract_delta",
    "merge_deltas",
]
