"""Commutation-scheduled parallel execution of transaction batches.

:class:`ParallelExecutor` owns one *authoritative* engine plus a pool of
worker engines of the same construction. A batch runs in four steps:

1. **Schedule** — build the batch's
   :class:`~repro.analysis.schedule.ConflictGraph` (the update-cone
   analyzer is cached while the program's *rules* are unchanged — facts
   never transmit deltas, so fact churn keeps the cache valid) and
   partition it with ``commuting_batches(preserve_order=True)``: group
   execution order realizes the submission-order serial history.
2. **Execute** — for each group of two or more, take one authoritative
   ``checkpoint()``, restore every worker from it (restores are
   serialized in the coordinator — ``Model.copy`` toggles shared
   copy-on-write flags), then run the group's transactions in pool
   threads. Workers share the arena's append-only intern tables
   (``share_across_threads()`` arms the intern locks) and the
   checkpoint's copy-on-write containers, privatizing only what they
   write.
3. **Merge** — each worker returns a :class:`~.merge.StateDelta`;
   :func:`~.merge.merge_deltas` unions them, and the result lands on the
   authoritative engine in one O(changed) application.
4. **Fall back** — rule updates (they rewrite statics), groups whose
   deltas collide (history-dependent support sweeps), and any worker
   exception re-run serially against the authoritative engine with
   per-transaction checkpoint rollback — identical semantics, no
   parallelism. Conflicting arcs (DL011) and negation-sensitive hazards
   (DL013) never share a group in the first place: serialization
   *between* groups is their fallback.

The executor leaves the authoritative engine in exactly the state the
submission-order serial replay of the accepted transactions produces —
the property the threaded fuzzer mode replays on every engine.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from ..analysis.schedule import CommutationOracle
from ..analysis.update_cones import UpdateConeAnalyzer
from ..core.base import MaintenanceEngine, _as_fact, _as_rule
from ..core.metrics import UpdateResult
from ..datalog.atoms import Atom
from ..datalog.clauses import Clause
from ..obs import OBS
from .merge import (
    MergeConflict,
    StateDelta,
    apply_merged,
    arenas_of,
    extract_delta,
    merge_deltas,
)

#: One normalized update: (operation, Atom | Clause).
Update = Tuple[str, Union[Atom, Clause]]

_FACT_OPS = ("insert_fact", "delete_fact")


class TransactionOutcome:
    """What happened to one submitted transaction."""

    __slots__ = ("name", "updates", "committed", "error", "mode", "results")

    def __init__(
        self,
        name: str,
        updates: Tuple[Update, ...],
        committed: bool,
        error: Optional[str],
        mode: str,
        results: Tuple[UpdateResult, ...],
    ) -> None:
        self.name = name
        self.updates = updates
        self.committed = committed
        self.error = error
        self.mode = mode
        self.results = results

    def __repr__(self) -> str:
        status = "committed" if self.committed else f"rejected ({self.error})"
        return f"TransactionOutcome({self.name}: {status}, {self.mode})"


class ExecutionReport:
    """The executor's account of one batch."""

    __slots__ = (
        "outcomes", "groups", "parallel_groups", "serial_fallbacks",
    )

    def __init__(
        self,
        outcomes: List[TransactionOutcome],
        groups: Tuple[Tuple[str, ...], ...],
        parallel_groups: int,
        serial_fallbacks: int,
    ) -> None:
        self.outcomes = outcomes
        self.groups = groups
        self.parallel_groups = parallel_groups
        self.serial_fallbacks = serial_fallbacks

    def accepted(self) -> List[Tuple[str, Tuple[Update, ...]]]:
        """(name, updates) of committed transactions, submission order."""
        return [
            (outcome.name, outcome.updates)
            for outcome in self.outcomes
            if outcome.committed
        ]

    def __repr__(self) -> str:
        committed = sum(1 for o in self.outcomes if o.committed)
        return (
            f"ExecutionReport({committed}/{len(self.outcomes)} committed, "
            f"{len(self.groups)} groups, {self.parallel_groups} parallel)"
        )


def _normalize(
    batch: Iterable[Tuple[str, Iterable[Tuple[str, object]]]],
) -> List[Tuple[str, Tuple[Update, ...]]]:
    normalized: List[Tuple[str, Tuple[Update, ...]]] = []
    seen: set[str] = set()
    for name, updates in batch:
        if name in seen:
            raise ValueError(f"duplicate transaction name {name!r}")
        seen.add(name)
        converted: List[Update] = []
        for operation, subject in updates:
            if operation in _FACT_OPS:
                converted.append((operation, _as_fact(subject)))
            elif operation in ("insert_rule", "delete_rule"):
                converted.append((operation, _as_rule(subject)))
            else:
                raise ValueError(f"unknown operation {operation!r}")
        normalized.append((name, tuple(converted)))
    return normalized


class ParallelExecutor:
    """Scheduled-parallel batch execution over one authoritative engine."""

    def __init__(
        self,
        engine: MaintenanceEngine,
        worker_factory: Callable[[], MaintenanceEngine],
        max_workers: int = 4,
    ) -> None:
        self.engine = engine
        self.max_workers = max(1, max_workers)
        self._worker_factory = worker_factory
        self._workers: List[MaintenanceEngine] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._analyzer: Optional[UpdateConeAnalyzer] = None
        self._analyzer_rules: Optional[Tuple[Clause, ...]] = None
        self._oracle: Optional[CommutationOracle] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Infrastructure
    # ------------------------------------------------------------------

    def _ensure_pool(self, needed: int) -> ThreadPoolExecutor:
        while len(self._workers) < min(needed, self.max_workers):
            self._workers.append(self._worker_factory())
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-exec",
            )
        return self._pool

    def analyzer(self) -> UpdateConeAnalyzer:
        """The update-cone analyzer, cached while the rule set holds.

        Asserted facts are bodiless clauses: they add nothing to the
        dependency structure the cones close over, so the cache stays
        valid across fact-only batches — the hot service traffic.
        """
        rules = tuple(
            clause for clause in self.engine.db.program.clauses if clause.body
        )
        if rules != self._analyzer_rules:
            self._analyzer = UpdateConeAnalyzer(rules)
            self._analyzer_rules = rules
            self._oracle = CommutationOracle(self._analyzer)
        assert self._analyzer is not None
        return self._analyzer

    def oracle(self) -> CommutationOracle:
        """The pair-cached scheduling oracle over :meth:`analyzer`."""
        self.analyzer()
        assert self._oracle is not None
        return self._oracle

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        batch: Iterable[Tuple[str, Iterable[Tuple[str, object]]]],
    ) -> ExecutionReport:
        """Run *batch*; the engine ends in the serial-replay state.

        One executor runs one batch at a time (guarded); concurrency
        lives *inside* the batch.
        """
        with self._lock:
            return self._execute(_normalize(batch))

    def _execute(
        self, batch: List[Tuple[str, Tuple[Update, ...]]]
    ) -> ExecutionReport:
        txn_map = dict(batch)
        order = [name for name, _ in batch]
        outcomes: dict[str, TransactionOutcome] = {}
        has_rule_ops = any(
            operation not in _FACT_OPS
            for _, updates in batch
            for operation, _ in updates
        )
        serial_only = (
            has_rule_ops or len(batch) < 2 or self.max_workers < 2
        )
        parallel_groups = 0
        serial_fallbacks = 0
        with OBS.span("service:execute") as span:
            if serial_only:
                groups: Tuple[Tuple[str, ...], ...] = (tuple(order),)
                self._run_serial(order, txn_map, outcomes, "serial")
            else:
                groups = self.oracle().commuting_groups(
                    batch, preserve_order=True
                )
                for group in groups:
                    if len(group) < 2:
                        self._run_serial(group, txn_map, outcomes, "serial")
                        continue
                    if self._run_parallel(group, txn_map, outcomes):
                        parallel_groups += 1
                    else:
                        serial_fallbacks += 1
            if span:
                span.set("transactions", len(batch))
                span.set("groups", len(groups))
                span.set("parallel_groups", parallel_groups)
                span.set("serial_fallbacks", serial_fallbacks)
        if OBS.enabled:
            metrics = OBS.metrics
            metrics.counter(
                "repro_service_batches_total",
                "Transaction batches executed by the parallel executor",
            ).inc()
            for outcome in outcomes.values():
                metrics.counter(
                    "repro_service_txns_total",
                    "Transactions executed, by path and fate",
                    mode=outcome.mode,
                    committed=str(outcome.committed).lower(),
                ).inc()
            if serial_fallbacks:
                metrics.counter(
                    "repro_service_serial_fallbacks_total",
                    "Commuting groups re-run serially after a collision",
                ).inc(serial_fallbacks)
        return ExecutionReport(
            [outcomes[name] for name in order],
            groups,
            parallel_groups,
            serial_fallbacks,
        )

    def _run_serial(
        self,
        group: Sequence[str],
        txn_map: dict,
        outcomes: dict,
        mode: str,
    ) -> None:
        """Apply the group's transactions in order, each atomically."""
        engine = self.engine
        for name in group:
            updates = txn_map[name]
            saved = engine.checkpoint()
            try:
                results = tuple(
                    engine.apply(operation, subject)
                    for operation, subject in updates
                )
            except Exception as error:
                engine.restore(saved)
                outcomes[name] = TransactionOutcome(
                    name, updates, False, str(error), mode, ()
                )
            else:
                outcomes[name] = TransactionOutcome(
                    name, updates, True, None, mode, results
                )

    def _run_parallel(
        self, group: Tuple[str, ...], txn_map: dict, outcomes: dict
    ) -> bool:
        """Execute one commuting group in worker threads; merge or punt.

        Returns True when the group merged in parallel; False when it
        fell back to serial (worker failure or delta collision). Either
        way the authoritative engine ends in the group's serial state.
        """
        engine = self.engine
        base = engine.checkpoint()
        for arena in arenas_of(base["supports"]):
            arena.share_across_threads()
        pool = self._ensure_pool(len(group))
        deltas: List[StateDelta] = []
        results_by_name: dict[str, Tuple[UpdateResult, ...]] = {}
        failure: Optional[BaseException] = None
        names = list(group)
        with OBS.span("service:group") as span:
            # Each worker takes a *share* of the group — the transactions
            # commute, so a worker may apply its share sequentially and
            # come back with one combined delta: one restore and one
            # delta extraction per worker instead of per transaction.
            shares = [
                names[offset :: len(self._workers)]
                for offset in range(min(len(self._workers), len(names)))
            ]
            assignments = []
            for worker, share in zip(self._workers, shares):
                # Restores stay on the coordinator thread: Model.copy
                # flips shared copy-on-write flags on both sides.
                # Workers never serialize their program, so they take
                # the order-insensitive incremental catch-up path.
                worker.restore(base, exact_program=False)
                assignments.append((worker, share))
            futures = [
                pool.submit(
                    self._run_worker_share, worker, share, txn_map, base
                )
                for worker, share in assignments
            ]
            for future in futures:
                try:
                    delta, share_results = future.result()
                except Exception as error:  # noqa: BLE001
                    failure = error
                else:
                    deltas.append(delta)
                    results_by_name.update(share_results)
            merged = None
            if failure is None:
                try:
                    merged = merge_deltas(deltas)
                except MergeConflict as conflict:
                    failure = conflict
            if span:
                span.set("size", len(group))
                span.set("merged", failure is None)
            if failure is not None or merged is None:
                # The authoritative engine never saw the workers' writes;
                # replay the group serially from its unchanged state.
                self._run_serial(names, txn_map, outcomes, "serial-fallback")
                return False
            added, removed, supports = merged
            updates_in_order = [
                update for name in names for update in txn_map[name]
            ]
            apply_merged(engine, updates_in_order, added, removed, supports)
            for name in names:
                outcomes[name] = TransactionOutcome(
                    name,
                    txn_map[name],
                    True,
                    None,
                    "parallel",
                    results_by_name[name],
                )
        return True

    @staticmethod
    def _run_worker_share(
        worker: MaintenanceEngine,
        share: Sequence[str],
        txn_map: dict,
        base: dict,
    ) -> Tuple[StateDelta, dict]:
        """One worker's share of a commuting group (pool thread).

        The share's transactions commute pairwise with the whole group,
        so applying them sequentially on one engine and extracting a
        single combined delta is equivalent to per-transaction deltas —
        :meth:`SupportTable.delta_from` nets against the shared base
        either way. Any failure aborts the share; the executor then
        re-runs the whole group serially (per-transaction atomicity is
        re-established there).
        """
        results_by_name: dict[str, Tuple[UpdateResult, ...]] = {}
        combined: List[UpdateResult] = []
        for name in share:
            results = tuple(
                worker.apply(operation, subject)
                for operation, subject in txn_map[name]
            )
            results_by_name[name] = results
            combined.extend(results)
        delta = extract_delta(
            "+".join(share), worker, base["model"], base["supports"], combined
        )
        return delta, results_by_name
