"""End-to-end smoke for ``repro serve``: real process, real sockets.

    PYTHONPATH=src python -m repro.service.smoke

Spawns the server as a subprocess on an ephemeral port over a fresh
temporary store, drives several concurrent client sessions — disjoint-key
commits, live queries, an epoch-pinned read view that must *not* observe
later commits — then sends ``shutdown`` and requires a clean exit. Exits
0 on success, 1 with a diagnostic on any failure; CI runs this as the
service smoke step.
"""

from __future__ import annotations

import asyncio
import subprocess
import sys
import tempfile
from pathlib import Path

from .server import ServiceClient

PROGRAM = """\
account(acct0). account(acct1). account(acct2). account(acct3).
posted(A, X) :- deposit(A, X), account(A), not voided(A, X).
active(A) :- account(A), posted(A, X).
idle(A) :- account(A), not active(A).
"""

SESSIONS = 4
COMMITS_PER_SESSION = 6


async def _session(host: str, port: int, index: int) -> int:
    """One client session: commit a disjoint-key stream, verify reads."""
    client = await ServiceClient.connect(host, port)
    committed = 0
    try:
        account = f"acct{index}"
        for step in range(COMMITS_PER_SESSION):
            response = await client.commit([f"+deposit({account}, {step})"])
            if not response.get("committed"):
                raise AssertionError(
                    f"session {index} commit {step} rejected: {response}"
                )
            committed += 1
        probe = await client.request("query", fact=f"posted({account}, 0)")
        if probe.get("holds") is not True:
            raise AssertionError(f"session {index} lost its own write: {probe}")
        response = await client.commit([f"-deposit({account}, 0)"])
        if not response.get("committed"):
            raise AssertionError(f"session {index} delete rejected: {response}")
        committed += 1
        probe = await client.request("query", fact=f"posted({account}, 0)")
        if probe.get("holds") is not False:
            raise AssertionError(
                f"session {index} delete not visible: {probe}"
            )
    finally:
        await client.close()
    return committed


async def _drive(host: str, port: int) -> None:
    control = await ServiceClient.connect(host, port)
    pong = await control.request("ping")
    assert pong["ok"], pong

    # Pin an epoch before any traffic: the view must stay empty of
    # posted/2 rows no matter how much the writers commit after it.
    pin = await control.request("pin")
    assert pin["ok"] and pin["epoch"] == 0, pin

    totals = await asyncio.gather(
        *(_session(host, port, i) for i in range(SESSIONS))
    )
    expected = SESSIONS * (COMMITS_PER_SESSION + 1)
    assert sum(totals) == expected, (totals, expected)

    stale = await control.request(
        "rows", relation="posted", view=pin["view"]
    )
    assert stale["ok"] and stale["rows"] == [], stale
    live = await control.request("rows", relation="posted")
    live_rows = {tuple(row) for row in live["rows"]}
    want = {
        (f"acct{i}", step)
        for i in range(SESSIONS)
        for step in range(1, COMMITS_PER_SESSION)
    }
    assert live_rows == want, (sorted(live_rows - want), sorted(want - live_rows))
    await control.request("release", view=pin["view"])

    log = await control.request("log")
    assert log["ok"] and len(log["lines"]) >= expected, log

    undo = await control.request("undo", n=1)
    redo = await control.request("redo", n=1)
    assert redo["revision"] == undo["revision"] + 1, (undo, redo)

    down = await control.request("shutdown")
    assert down["ok"], down
    await control.close()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        program = Path(tmp) / "bank.dl"
        program.write_text(PROGRAM, encoding="utf-8")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--store",
                str(Path(tmp) / "store"),
                "--program",
                str(program),
                "--engine",
                "factlevel",
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline().strip()
            if not banner.startswith("serving on "):
                process.kill()
                rest = process.stdout.read()
                print(f"smoke: bad banner {banner!r}\n{rest}", file=sys.stderr)
                return 1
            host, _, port = banner.removeprefix("serving on ").rpartition(":")
            asyncio.run(_drive(host, int(port)))
            code = process.wait(timeout=30)
            if code != 0:
                print(f"smoke: server exited {code}", file=sys.stderr)
                return 1
        except Exception as error:  # noqa: BLE001
            process.kill()
            print(f"smoke: FAILED: {error!r}", file=sys.stderr)
            return 1
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
    print(
        f"smoke: OK — {SESSIONS} sessions, "
        f"{SESSIONS * (COMMITS_PER_SESSION + 1)} commits, clean shutdown"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
