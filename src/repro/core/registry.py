"""Engine registry: uniform construction for tests and the bench harness."""

from __future__ import annotations

from typing import Callable

from .base import MaintenanceEngine
from .cascade_engine import CascadeEngine
from .dynamic_engine import DynamicEngine
from .factlevel_engine import FactLevelEngine
from .recompute import RecomputeEngine
from .setofsets_engine import SetOfSetsEngine
from .static_engine import StaticEngine

_FACTORIES: dict[str, Callable[..., MaintenanceEngine]] = {
    "recompute": RecomputeEngine,
    "static": StaticEngine,
    "dynamic": DynamicEngine,
    "dynamic-unsigned": lambda program, **kw: DynamicEngine(
        program, signed_statics=False, **kw
    ),
    "setofsets": SetOfSetsEngine,
    "setofsets-paired": lambda program, **kw: SetOfSetsEngine(
        program, mode="paired", **kw
    ),
    "cascade": CascadeEngine,
    "cascade-paper": lambda program, **kw: CascadeEngine(
        program, order="paper", **kw
    ),
    "factlevel": FactLevelEngine,
}

ENGINE_NAMES: tuple[str, ...] = tuple(_FACTORIES)

SOUND_ENGINE_NAMES: tuple[str, ...] = (
    "recompute",
    "static",
    "dynamic",
    "setofsets-paired",
    "cascade",
    "cascade-paper",
    "factlevel",
)
"""Engines that agree with the oracle across arbitrary update sequences.

``setofsets`` (paper mode) is only guaranteed for a single update on a
freshly built model and ``dynamic-unsigned`` is the deliberately incorrect
variant of Example 2 — see DESIGN.md.
"""

PAPER_SOLUTION_NAMES: tuple[str, ...] = (
    "static",
    "dynamic",
    "setofsets",
    "cascade",
    "factlevel",
)
"""One name per solution the paper presents, in presentation order."""


def create_engine(name: str, program, **kwargs) -> MaintenanceEngine:
    """Instantiate the engine registered under *name*."""
    factory = _FACTORIES.get(name)
    if factory is None:
        known = ", ".join(sorted(_FACTORIES))
        raise ValueError(f"unknown engine {name!r}; known engines: {known}")
    return factory(program, **kwargs)
