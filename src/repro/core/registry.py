"""Engine registry: uniform construction for tests and the bench harness."""

from __future__ import annotations

from typing import Callable

from .base import MaintenanceEngine
from .cascade_engine import CascadeEngine
from .dynamic_engine import DynamicEngine
from .factlevel_engine import FactLevelEngine
from .recompute import RecomputeEngine
from .setofsets_engine import SetOfSetsEngine
from .static_engine import StaticEngine

_FACTORIES: dict[str, Callable[..., MaintenanceEngine]] = {
    "recompute": RecomputeEngine,
    "static": StaticEngine,
    "dynamic": DynamicEngine,
    "dynamic-unsigned": lambda program, **kw: DynamicEngine(
        program, signed_statics=False, **kw
    ),
    "setofsets": SetOfSetsEngine,
    "setofsets-paired": lambda program, **kw: SetOfSetsEngine(
        program, mode="paired", **kw
    ),
    "cascade": CascadeEngine,
    "cascade-paper": lambda program, **kw: CascadeEngine(
        program, order="paper", **kw
    ),
    "factlevel": FactLevelEngine,
}

ENGINE_NAMES: tuple[str, ...] = tuple(_FACTORIES)

SOUND_ENGINE_NAMES: tuple[str, ...] = (
    "recompute",
    "static",
    "dynamic",
    "setofsets-paired",
    "cascade",
    "cascade-paper",
    "factlevel",
)
"""Engines that agree with the oracle across arbitrary update sequences.

``setofsets`` (paper mode) is only guaranteed for a single update on a
freshly built model and ``dynamic-unsigned`` is the deliberately incorrect
variant of Example 2 — see DESIGN.md.
"""

PAPER_SOLUTION_NAMES: tuple[str, ...] = (
    "static",
    "dynamic",
    "setofsets",
    "cascade",
    "factlevel",
)
"""One name per solution the paper presents, in presentation order."""


def create_engine(name: str, program, **kwargs) -> MaintenanceEngine:
    """Instantiate the engine registered under *name*."""
    factory = _FACTORIES.get(name)
    if factory is None:
        known = ", ".join(sorted(_FACTORIES))
        raise ValueError(f"unknown engine {name!r}; known engines: {known}")
    return factory(program, **kwargs)


def engine_from_state(name: str, state: dict, **kwargs) -> MaintenanceEngine:
    """Reconstruct the engine registered under *name* from a state snapshot.

    The engine is built with ``build=False`` — no from-scratch saturation —
    and then adopts the snapshot's program, model and supports via
    :meth:`~repro.core.base.MaintenanceEngine.load_state`. This is the fast
    path :mod:`repro.store` uses when reopening a persisted database.
    """
    from ..datalog.clauses import Program

    options = {
        "method": state.get("method", "seminaive"),
        "granularity": state.get("granularity", "level"),
    }
    options.update(kwargs)
    engine = create_engine(
        name, Program(state["program"]), build=False, **options
    )
    engine.load_state(state)
    return engine
