"""Explanation of beliefs: the "why" operation of a belief revision system.

A supported model carries, for every fact, "an explanation for it in the
form of an instance of a clause of P whose body is true in M and whose
conclusion is A" (section 2). This module materialises those explanations
as proof trees:

* :func:`explain` — a non-circular proof tree for a fact of the model
  (positive subgoals recursively explained, negative subgoals shown as
  "absent" leaves), built by re-deriving against the maintained model in
  stratum order — it therefore works with *any* engine;
* :func:`explain_absence` — why an atom is *not* in the model: for every
  rule that could conclude it, the first failing body literal of each
  candidate instantiation (or the bare fact that no rule matches).

The trees render as indented text via :meth:`Explanation.pretty`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..datalog.atoms import Atom
from ..datalog.clauses import Clause
from ..datalog.database import StratifiedDatabase
from ..datalog.evaluation import iter_derivations
from ..datalog.model import Model
from ..datalog.parser import parse_fact
from ..datalog.unify import substitute_args
from .base import MaintenanceEngine


@dataclass
class Explanation:
    """A proof tree node: the fact, its clause, and explained subgoals."""

    fact: Atom
    clause: Optional[Clause]  # None marks an asserted fact
    positive: list["Explanation"] = field(default_factory=list)
    negative: list[Atom] = field(default_factory=list)

    @property
    def is_assertion(self) -> bool:
        return self.clause is None

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.is_assertion:
            lines = [f"{pad}{self.fact}  [asserted]"]
        else:
            lines = [f"{pad}{self.fact}  [by: {self.clause}]"]
        for child in self.positive:
            lines.append(child.pretty(indent + 1))
        for atom in self.negative:
            lines.append(f"{'  ' * (indent + 1)}not {atom}  [absent]")
        return "\n".join(lines)

    def depth(self) -> int:
        if not self.positive:
            return 1
        return 1 + max(child.depth() for child in self.positive)

    def facts_used(self) -> set[Atom]:
        used = {self.fact}
        for child in self.positive:
            used |= child.facts_used()
        return used


class ExplanationError(LookupError):
    """The fact cannot be explained (it is not in the model)."""


def _resolve(engine_or_parts, fact):
    if isinstance(engine_or_parts, MaintenanceEngine):
        db, model = engine_or_parts.db, engine_or_parts.model
    else:
        db, model = engine_or_parts
    if isinstance(fact, str):
        fact = parse_fact(fact)
    return db, model, fact


def explain(
    source: Union[MaintenanceEngine, tuple[StratifiedDatabase, Model]],
    fact: Union[Atom, str],
    _explaining: Optional[set[Atom]] = None,
) -> Explanation:
    """A non-circular proof tree for *fact* against the maintained model.

    Well-foundedness: subgoals are explained recursively and a subgoal may
    not reuse a fact currently being explained higher up (the chain bottoms
    out at assertions and lower-stratum facts). Raises
    :class:`ExplanationError` when the fact is not in the model.
    """
    db, model, fact = _resolve(source, fact)
    if fact not in model:
        raise ExplanationError(f"{fact} is not in the model")
    explaining = _explaining if _explaining is not None else set()
    if db.is_asserted(fact):
        return Explanation(fact, None)
    explaining = explaining | {fact}
    definitions = db.program.definitions().get(fact.relation, ())
    for clause in definitions:
        if not clause.body:
            continue
        for derivation in iter_derivations(clause, model):
            if derivation.head != fact:
                continue
            if any(body in explaining for body in derivation.positive_facts):
                continue  # would be circular; try another instance
            children = []
            ok = True
            for body in derivation.positive_facts:
                try:
                    children.append(explain((db, model), body, explaining))
                except ExplanationError:
                    ok = False
                    break
            if ok:
                return Explanation(
                    fact, clause, children, list(derivation.negative_atoms)
                )
    raise ExplanationError(
        f"{fact} is in the model but no well-founded deduction was found "
        "(model and program out of sync?)"
    )


@dataclass
class AbsenceReason:
    """Why one candidate rule fails to derive the atom."""

    clause: Clause
    blocker: Optional[str]  # description of the first failing literal

    def pretty(self) -> str:
        if self.blocker is None:
            return f"rule {self.clause} has no matching instance"
        return f"rule {self.clause} blocked: {self.blocker}"


def explain_absence(
    source: Union[MaintenanceEngine, tuple[StratifiedDatabase, Model]],
    atom: Union[Atom, str],
) -> list[AbsenceReason]:
    """Why *atom* is OUT: one reason per rule that could conclude it.

    For each defining rule, either no instantiation matches the atom at
    all, or every candidate instantiation fails — the first failing
    literal of one witness instantiation is reported.
    """
    db, model, atom = _resolve(source, atom)
    if atom in model:
        raise ValueError(f"{atom} is in the model; use explain()")
    reasons: list[AbsenceReason] = []
    definitions = db.program.definitions().get(atom.relation, ())
    for clause in definitions:
        if not clause.body:
            continue
        reason = _why_rule_fails(clause, atom, model)
        reasons.append(AbsenceReason(clause, reason))
    return reasons


def _why_rule_fails(clause: Clause, atom: Atom, model: Model) -> Optional[str]:
    """The first failing literal of a head-unified instantiation, if any."""
    from ..datalog.unify import match_atom

    head_subst = match_atom(clause.head, atom)
    if head_subst is None:
        return None
    # Walk the body left to right with the head bindings, reporting the
    # first literal that cannot be satisfied.
    def walk(index, subst):
        if index == len(clause.body):
            return "all literals satisfied (atom should be present!)"
        lit = clause.body[index]
        if lit.positive:
            candidates = []
            store = model.relation(lit.relation)
            bound = {}
            ok_any = False
            for row in store:
                trial = dict(subst)
                from ..datalog.unify import match_tuple

                if len(row) == len(lit.args) and match_tuple(
                    lit.args, row, trial
                ):
                    ok_any = True
                    result = walk(index + 1, trial)
                    if result is None:
                        return None
            if not ok_any:
                ground = substitute_args(lit.args, subst)
                return f"no match for {Atom(lit.relation, ground)}"
            return f"every match for {lit} fails later in the body"
        ground = substitute_args(lit.args, subst)
        if model.contains(lit.relation, ground):
            return f"{Atom(lit.relation, ground)} is present (negated)"
        return walk(index + 1, subst)

    return walk(0, head_subst)
