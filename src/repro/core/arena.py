"""The live columnar support arena: int-slot runtime support storage.

The v2 snapshot codec proved that support state compresses ~4x once atoms,
rules and set elements are *interned* and records become arrays of slots —
but only on disk. This module makes that encoding the canonical in-memory
form: an :class:`Arena` holds append-only intern tables (atoms, rules,
signed entries, support-set elements, and one columnar record table per
support kind), and the engines keep nothing but a :class:`SupportTable`
mapping atom slots to sets of record slots. The hot maintenance loops —
record kills, well-foundedness fixpoints, REMOVEPOS/REMOVENEG sweeps —
then run entirely over small ints and frozensets of ints.

Three properties carry the design:

* **Append-only interning.** A slot, once assigned, never changes meaning,
  so arenas may be shared freely between an engine, its checkpoints, and
  any engine restored from its state: concurrent append is id-stable and
  decode caches are idempotent. Garbage (records no table references any
  more) accumulates; the serializer renumbers reachable slots canonically
  at encode time, so on-disk bytes are independent of arena history.

* **Copy-on-write tables.** ``SupportTable.copy()`` is O(1): the slot map
  is shared until either side writes, and each per-fact record set is
  privatized lazily on first mutation. Together with the copy-on-write
  :meth:`~repro.datalog.relations.Relation.copy`, this is what makes
  ``MaintenanceEngine.checkpoint()`` / transaction rollback cheap — the
  epoch-pinned snapshots the concurrent-service roadmap item needs.

* **Lazy decode.** Public surfaces (``records_of``, ``support_of``,
  ``explain``, serialization to the v1 codec) decode slots back to the
  :mod:`repro.core.supports` record objects on demand, through per-slot
  caches, so diagnostics and file formats are unchanged.

Every arena-capable engine keeps the record-backed path behind
``arena=False`` (the differential-testing baseline, mirroring the
``materialize_deltas``/``delta_choice`` ablation idiom).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.clauses import Clause
from ..datalog.dependency import StaticDependencies
from .supports import (
    FactRecord,
    PairedRecord,
    RuleRecord,
    SetOfSetsSupport,
    Signed,
    expand_neg_element,
    expand_pos_element,
)

#: Slot of the assertion record in every record table (and of the empty
#: element in the element table): interned at arena construction, so the
#: trivial support is always slot 0.
ASSERTION = 0
EMPTY_ELEMENT = 0
NO_RULE = 0  # rules[0] is None: the "rule" of an assertion record


class Arena:
    """Append-only intern tables plus columnar record storage.

    Records are stored as parallel lists of int slots / frozensets of int
    slots — the int-slot array layout — and every interned object gets a
    reverse map so repeated interning is one dict probe. Decode caches are
    per-slot lists filled lazily.
    """

    __slots__ = (
        "atoms",
        "_atom_ids",
        "rules",
        "_rule_ids",
        "entries",
        "_entry_ids",
        "element_members",
        "_element_ids",
        "_element_decoded",
        "fact_rule",
        "fact_pos",
        "fact_neg",
        "_fact_ids",
        "_fact_decoded",
        "rule_record_rule",
        "rule_record_pos",
        "rule_record_neg",
        "_rule_record_ids",
        "_rule_record_decoded",
        "paired_pos",
        "paired_neg",
        "_paired_ids",
        "_paired_decoded",
        "_expand_owner",
        "_expand_pos",
        "_expand_neg",
        "_lock",
    )

    def __init__(self) -> None:
        # -- atom intern table ------------------------------------------
        self.atoms: List[Atom] = []
        self._atom_ids: Dict[Atom, int] = {}
        # -- rule intern table (slot 0 = None: assertions) --------------
        self.rules: List[Optional[Clause]] = [None]
        self._rule_ids: Dict[Clause, int] = {}
        # -- signed-entry and element tables (sets-of-sets supports) ----
        self.entries: List["str | Signed"] = []
        self._entry_ids: Dict["str | Signed", int] = {}
        self.element_members: List[frozenset[int]] = [frozenset()]
        self._element_ids: Dict[frozenset[int], int] = {frozenset(): 0}
        self._element_decoded: List[Optional[frozenset["str | Signed"]]] = [
            frozenset()
        ]
        # -- fact records: (rule slot, pos atom slots, neg atom slots) --
        self.fact_rule: List[int] = [NO_RULE]
        self.fact_pos: List[frozenset[int]] = [frozenset()]
        self.fact_neg: List[frozenset[int]] = [frozenset()]
        self._fact_ids: Dict[
            Tuple[int, frozenset[int], frozenset[int]], int
        ] = {(NO_RULE, frozenset(), frozenset()): ASSERTION}
        self._fact_decoded: List[Optional[FactRecord]] = [
            FactRecord.assertion()
        ]
        # -- rule records: (rule slot, body relation-name sets) ---------
        self.rule_record_rule: List[int] = [NO_RULE]
        self.rule_record_pos: List[frozenset[str]] = [frozenset()]
        self.rule_record_neg: List[frozenset[str]] = [frozenset()]
        self._rule_record_ids: Dict[int, int] = {NO_RULE: ASSERTION}
        self._rule_record_decoded: List[Optional[RuleRecord]] = [
            RuleRecord.assertion()
        ]
        # -- paired records: (pos element slot, neg element slot) -------
        self.paired_pos: List[int] = [EMPTY_ELEMENT]
        self.paired_neg: List[int] = [EMPTY_ELEMENT]
        self._paired_ids: Dict[Tuple[int, int], int] = {
            (EMPTY_ELEMENT, EMPTY_ELEMENT): ASSERTION
        }
        self._paired_decoded: List[Optional[PairedRecord]] = [
            PairedRecord.trivial()
        ]
        # -- per-element static-expansion caches (see expand_pos) -------
        self._expand_owner: Optional[object] = None
        self._expand_pos: Dict[int, frozenset[str]] = {}
        self._expand_neg: Dict[int, frozenset[str]] = {}
        # -- opt-in intern lock (see share_across_threads) --------------
        self._lock: Optional[threading.RLock] = None

    # ------------------------------------------------------------------
    # Concurrent interning (opt-in)
    # ------------------------------------------------------------------
    #
    # Append-only interning is what lets checkpoints share an arena, but
    # the miss path of every intern method is check-then-append: two
    # threads interning the same new object could race and mint two slots
    # for it, breaking the one-slot-per-object invariant the tables and
    # the canonical encoder rely on. The parallel executor therefore calls
    # share_across_threads() on the arena it fans out over; interning then
    # double-checks under the lock on the miss path only. Unshared arenas
    # pay exactly one extra attribute load per miss and nothing per hit,
    # preserving the single-threaded intern cost (E20 guard).

    def share_across_threads(self) -> None:
        """Make interning safe under concurrent threads (idempotent)."""
        if self._lock is None:
            self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Atoms
    # ------------------------------------------------------------------

    def intern_atom(self, atom: Atom) -> int:
        slot = self._atom_ids.get(atom)
        if slot is None:
            lock = self._lock
            if lock is not None:
                with lock:
                    return self._intern_atom_miss(atom)
            return self._intern_atom_miss(atom)
        return slot

    def _intern_atom_miss(self, atom: Atom) -> int:
        slot = self._atom_ids.get(atom)
        if slot is None:
            slot = len(self.atoms)
            self.atoms.append(atom)
            self._atom_ids[atom] = slot
        return slot

    def atom_id(self, atom: Atom) -> Optional[int]:
        """The slot of *atom*, or None when it was never interned."""
        return self._atom_ids.get(atom)

    def atom_of(self, slot: int) -> Atom:
        return self.atoms[slot]

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def intern_rule(self, rule: Optional[Clause]) -> int:
        if rule is None:
            return NO_RULE
        slot = self._rule_ids.get(rule)
        if slot is None:
            lock = self._lock
            if lock is not None:
                with lock:
                    return self._intern_rule_miss(rule)
            return self._intern_rule_miss(rule)
        return slot

    def _intern_rule_miss(self, rule: Clause) -> int:
        slot = self._rule_ids.get(rule)
        if slot is None:
            slot = len(self.rules)
            self.rules.append(rule)
            self._rule_ids[rule] = slot
        return slot

    def rule_id(self, rule: Optional[Clause]) -> Optional[int]:
        """The slot of *rule*, or None when it was never interned."""
        if rule is None:
            return NO_RULE
        return self._rule_ids.get(rule)

    def rule_of(self, slot: int) -> Optional[Clause]:
        return self.rules[slot]

    # ------------------------------------------------------------------
    # Entries and elements (sets-of-sets supports)
    # ------------------------------------------------------------------

    def intern_entry(self, entry: "str | Signed") -> int:
        slot = self._entry_ids.get(entry)
        if slot is None:
            lock = self._lock
            if lock is not None:
                with lock:
                    return self._intern_entry_miss(entry)
            return self._intern_entry_miss(entry)
        return slot

    def _intern_entry_miss(self, entry: "str | Signed") -> int:
        slot = self._entry_ids.get(entry)
        if slot is None:
            slot = len(self.entries)
            self.entries.append(entry)
            self._entry_ids[entry] = slot
        return slot

    def intern_element(self, members: frozenset[int]) -> int:
        slot = self._element_ids.get(members)
        if slot is None:
            lock = self._lock
            if lock is not None:
                with lock:
                    return self._intern_element_miss(members)
            return self._intern_element_miss(members)
        return slot

    def _intern_element_miss(self, members: frozenset[int]) -> int:
        slot = self._element_ids.get(members)
        if slot is None:
            slot = len(self.element_members)
            self.element_members.append(members)
            self._element_ids[members] = slot
            self._element_decoded.append(None)
        return slot

    def intern_element_entries(
        self, entries: Iterable["str | Signed"]
    ) -> int:
        return self.intern_element(
            frozenset(self.intern_entry(entry) for entry in entries)
        )

    def union_elements(self, slots: Iterable[int]) -> int:
        """The slot of the union of the given elements (``⊕`` in id space)."""
        members = frozenset().union(
            *(self.element_members[slot] for slot in slots)
        )
        return self.intern_element(members)

    def decode_element(self, slot: int) -> frozenset["str | Signed"]:
        cached = self._element_decoded[slot]
        if cached is None:
            entries = self.entries
            cached = frozenset(
                entries[member] for member in self.element_members[slot]
            )
            self._element_decoded[slot] = cached
        return cached

    def prune_element_ids(self, slots: Set[int]) -> Set[int]:
        """⊆-minimal elements among *slots* — :func:`prune_to_minimal` in
        id space, with the same entry-bucket candidate generation."""
        members = self.element_members
        if len(slots) <= 1:
            return set(slots)
        if EMPTY_ELEMENT in slots:
            return {EMPTY_ELEMENT}
        ordered = sorted(slots, key=lambda slot: len(members[slot]))
        kept: List[int] = []
        by_entry: Dict[int, List[int]] = {}
        for slot in ordered:
            element = members[slot]
            dominated = False
            seen: Set[int] = set()
            for entry in element:
                for index in by_entry.get(entry, ()):
                    if index in seen:
                        continue
                    seen.add(index)
                    if members[kept[index]] <= element:
                        dominated = True
                        break
                if dominated:
                    break
            if dominated:
                continue
            index = len(kept)
            kept.append(slot)
            for entry in element:
                by_entry.setdefault(entry, []).append(index)
        return set(kept)

    # ------------------------------------------------------------------
    # Static-dependency expansion of elements, cached per slot
    # ------------------------------------------------------------------
    #
    # The record-backed removal sweep re-expands every element through the
    # static closures on every pass; interned elements make the expansion
    # cachable per (element slot, statics object). The caches are owned by
    # the statics object they were computed against — a rule update
    # replaces the StratifiedDatabase's statics, which drops them.

    def _expansions(
        self, statics: StaticDependencies
    ) -> Tuple[Dict[int, frozenset[str]], Dict[int, frozenset[str]]]:
        if self._expand_owner is not statics:
            self._expand_owner = statics
            self._expand_pos = {}
            self._expand_neg = {}
        return self._expand_pos, self._expand_neg

    def expand_pos(
        self, slot: int, statics: StaticDependencies
    ) -> frozenset[str]:
        cache, _ = self._expansions(statics)
        cached = cache.get(slot)
        if cached is None:
            cached = frozenset(
                expand_pos_element(self.decode_element(slot), statics)
            )
            cache[slot] = cached
        return cached

    def expand_neg(
        self, slot: int, statics: StaticDependencies
    ) -> frozenset[str]:
        _, cache = self._expansions(statics)
        cached = cache.get(slot)
        if cached is None:
            cached = frozenset(
                expand_neg_element(self.decode_element(slot), statics)
            )
            cache[slot] = cached
        return cached

    # ------------------------------------------------------------------
    # Fact records (section 5.2 — the fact-level engine)
    # ------------------------------------------------------------------

    def intern_fact_record(
        self,
        rule_slot: int,
        pos: frozenset[int],
        neg: frozenset[int],
    ) -> int:
        key = (rule_slot, pos, neg)
        slot = self._fact_ids.get(key)
        if slot is None:
            lock = self._lock
            if lock is not None:
                with lock:
                    return self._intern_fact_record_miss(key)
            return self._intern_fact_record_miss(key)
        return slot

    def _intern_fact_record_miss(
        self, key: Tuple[int, frozenset[int], frozenset[int]]
    ) -> int:
        slot = self._fact_ids.get(key)
        if slot is None:
            slot = len(self.fact_rule)
            self.fact_rule.append(key[0])
            self.fact_pos.append(key[1])
            self.fact_neg.append(key[2])
            self._fact_ids[key] = slot
            self._fact_decoded.append(None)
        return slot

    def decode_fact_record(self, slot: int) -> FactRecord:
        cached = self._fact_decoded[slot]
        if cached is None:
            atoms = self.atoms
            cached = FactRecord(
                self.rules[self.fact_rule[slot]],
                frozenset(atoms[member] for member in self.fact_pos[slot]),
                frozenset(atoms[member] for member in self.fact_neg[slot]),
            )
            self._fact_decoded[slot] = cached
        return cached

    def fact_record_size(self, slot: int) -> int:
        return 1 + len(self.fact_pos[slot]) + len(self.fact_neg[slot])

    # ------------------------------------------------------------------
    # Rule records (section 5.1 — the cascade engine)
    # ------------------------------------------------------------------

    def intern_rule_record(self, rule: Optional[Clause]) -> int:
        rule_slot = self.intern_rule(rule)
        slot = self._rule_record_ids.get(rule_slot)
        if slot is None:
            assert rule is not None  # NO_RULE is pre-interned
            lock = self._lock
            if lock is not None:
                with lock:
                    return self._intern_rule_record_miss(rule, rule_slot)
            return self._intern_rule_record_miss(rule, rule_slot)
        return slot

    def _intern_rule_record_miss(self, rule: Clause, rule_slot: int) -> int:
        slot = self._rule_record_ids.get(rule_slot)
        if slot is None:
            slot = len(self.rule_record_rule)
            self.rule_record_rule.append(rule_slot)
            self.rule_record_pos.append(
                frozenset(lit.relation for lit in rule.positive_body)
            )
            self.rule_record_neg.append(
                frozenset(lit.relation for lit in rule.negative_body)
            )
            self._rule_record_ids[rule_slot] = slot
            self._rule_record_decoded.append(None)
        return slot

    def rule_record_id(self, rule: Optional[Clause]) -> Optional[int]:
        """The record slot of *rule*, or None when it never fired."""
        rule_slot = self.rule_id(rule)
        if rule_slot is None:
            return None
        return self._rule_record_ids.get(rule_slot)

    def decode_rule_record(self, slot: int) -> RuleRecord:
        cached = self._rule_record_decoded[slot]
        if cached is None:
            cached = RuleRecord(
                self.rules[self.rule_record_rule[slot]],
                self.rule_record_pos[slot],
                self.rule_record_neg[slot],
            )
            self._rule_record_decoded[slot] = cached
        return cached

    # ------------------------------------------------------------------
    # Paired records (section 4.3, linked mode)
    # ------------------------------------------------------------------

    def intern_paired_record(self, pos_slot: int, neg_slot: int) -> int:
        key = (pos_slot, neg_slot)
        slot = self._paired_ids.get(key)
        if slot is None:
            lock = self._lock
            if lock is not None:
                with lock:
                    return self._intern_paired_record_miss(key)
            return self._intern_paired_record_miss(key)
        return slot

    def _intern_paired_record_miss(self, key: Tuple[int, int]) -> int:
        slot = self._paired_ids.get(key)
        if slot is None:
            slot = len(self.paired_pos)
            self.paired_pos.append(key[0])
            self.paired_neg.append(key[1])
            self._paired_ids[key] = slot
            self._paired_decoded.append(None)
        return slot

    def decode_paired_record(self, slot: int) -> PairedRecord:
        cached = self._paired_decoded[slot]
        if cached is None:
            cached = PairedRecord(
                self.decode_element(self.paired_pos[slot]),
                self.decode_element(self.paired_neg[slot]),
            )
            self._paired_decoded[slot] = cached
        return cached

    def paired_record_size(self, slot: int) -> int:
        return (
            len(self.element_members[self.paired_pos[slot]])
            + len(self.element_members[self.paired_neg[slot]])
            + 1
        )

    def prune_paired_ids(self, slots: Set[int]) -> Set[int]:
        """Keep the paired records no *other* record dominates
        (``other.pos ⊆ pos and other.neg ⊆ neg``) — the id-space mirror of
        ``SetOfSetsEngine._prune_records`` with entry-bucket candidates."""
        if len(slots) <= 1:
            return set(slots)
        if ASSERTION in slots:  # the trivial pair dominates everything
            return {ASSERTION}
        members = self.element_members
        pos_of, neg_of = self.paired_pos, self.paired_neg
        ordered = sorted(
            slots,
            key=lambda slot: len(members[pos_of[slot]])
            + len(members[neg_of[slot]]),
        )
        kept: List[int] = []
        by_entry: Dict[Tuple[str, int], List[int]] = {}
        for slot in ordered:
            pos = members[pos_of[slot]]
            neg = members[neg_of[slot]]
            dominated = False
            seen: Set[int] = set()
            for side, element in (("p", pos), ("n", neg)):
                for entry in element:
                    for index in by_entry.get((side, entry), ()):
                        if index in seen:
                            continue
                        seen.add(index)
                        other = kept[index]
                        if (
                            members[pos_of[other]] <= pos
                            and members[neg_of[other]] <= neg
                        ):
                            dominated = True
                            break
                    if dominated:
                        break
                if dominated:
                    break
            if dominated:
                continue
            index = len(kept)
            kept.append(slot)
            for entry in pos:
                by_entry.setdefault(("p", entry), []).append(index)
            for entry in neg:
                by_entry.setdefault(("n", entry), []).append(index)
        return set(kept)


# ----------------------------------------------------------------------
# Copy-on-write support tables
# ----------------------------------------------------------------------


class SupportTable:
    """A ``{atom slot: set of record slots}`` map with O(1) copies.

    ``copy()`` shares the slot map between both sides; the first write on
    either side privatizes the map (one dict copy), and each per-fact
    record set is privatized lazily on its first mutation after a copy
    (``_owned`` tracks which value sets this table may mutate in place —
    ``None`` means all of them). Readers must treat the sets returned by
    :meth:`get` / :meth:`items` as immutable and go through the mutators.
    """

    __slots__ = ("_map", "_shared_map", "_owned")

    def __init__(self, _map: Optional[Dict[int, Set[int]]] = None) -> None:
        self._map: Dict[int, Set[int]] = {} if _map is None else _map
        self._shared_map: bool = _map is not None
        self._owned: Optional[Set[int]] = None if _map is None else set()

    def copy(self) -> "SupportTable":
        """O(1) copy-on-write duplicate; both sides go lazy-private."""
        self._shared_map = True
        self._owned = set()
        return SupportTable(self._map)

    def _own_map(self) -> Dict[int, Set[int]]:
        if self._shared_map:
            self._map = dict(self._map)
            self._shared_map = False
        return self._map

    def _writable(self, slot: int) -> Set[int]:
        current = self._own_map().get(slot)
        owned = self._owned
        if current is None:
            current = self._map[slot] = set()
            if owned is not None:
                owned.add(slot)
        elif owned is not None and slot not in owned:
            current = self._map[slot] = set(current)
            owned.add(slot)
        return current

    def add(self, slot: int, record: int) -> None:
        self._writable(slot).add(record)

    def replace(self, slot: int, records: Set[int]) -> None:
        """Install *records* (a fresh set the caller relinquishes)."""
        self._own_map()[slot] = records
        if self._owned is not None:
            self._owned.add(slot)

    def discard(self, slot: int, record: int) -> None:
        current = self._map.get(slot)
        if current is not None and record in current:
            self._writable(slot).discard(record)

    def discard_many(self, slot: int, records: Set[int]) -> None:
        if records:
            self._writable(slot).difference_update(records)

    def pop(self, slot: int) -> None:
        if slot in self._map:
            self._own_map().pop(slot, None)
            if self._owned is not None:
                self._owned.discard(slot)

    def get(self, slot: int) -> Optional[Set[int]]:
        """The record set of *slot* (read-only view), or None."""
        return self._map.get(slot)

    def delta_from(
        self, base: "SupportTable"
    ) -> Dict[int, Optional[Set[int]]]:
        """Per-slot changes of this table relative to *base*.

        Returns ``{slot: records}`` for slots added or rewritten and
        ``{slot: None}`` for slots removed. When this table descends from
        ``base.copy()`` and *base* was not mutated since (the parallel
        executor's worker tables), only the privatized slots are scanned —
        O(slots actually written) — and unchanged-but-privatized slots
        (written back to their base value) are filtered out by one
        equality test each. A table without copy lineage falls back to a
        full key scan, which is exact but O(table).
        """
        delta: Dict[int, Optional[Set[int]]] = {}
        base_map = base._map
        mine = self._map
        for slot in base_map.keys() - mine.keys():
            delta[slot] = None
        owned = self._owned
        candidates: Iterable[int] = (
            owned if owned is not None else mine.keys()
        )
        for slot in candidates:
            records = mine.get(slot)
            if records is None:
                continue  # privatized, then popped: caught above
            if base_map.get(slot) != records:
                delta[slot] = set(records)
        return delta

    def __contains__(self, slot: int) -> bool:
        return slot in self._map

    def __len__(self) -> int:
        return len(self._map)

    def keys(self) -> Iterable[int]:
        return self._map.keys()

    def items(self) -> Iterable[Tuple[int, Set[int]]]:
        return self._map.items()

    def values(self) -> Iterable[Set[int]]:
        return self._map.values()


# ----------------------------------------------------------------------
# Engine support states: the arena-backed counterpart of the record dicts
# ----------------------------------------------------------------------
#
# ``_support_state()`` of an arena-backed engine returns one of these
# instead of a dict of record sets. They are cheap (the table copy is
# copy-on-write; the arena is shared — append-only, so existing slots stay
# valid), self-contained for ``load_state`` (an engine adopts the arena
# and copies the table), and they expand lazily to the classic record
# mapping for the v1 codec, ``dumps`` determinism, and equality tests.


class ArenaSupportState:
    """Base of the four arena-backed support-state forms."""

    kind = "abstract"

    __slots__ = ("arena",)

    def __init__(self, arena: Arena) -> None:
        self.arena = arena

    def to_record_state(self) -> object:
        """The classic record-backed form (dict keyed by atoms)."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ArenaSupportState):
            return self.to_record_state() == other.to_record_state()
        if isinstance(other, dict):
            return bool(self.to_record_state() == other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self._table_sizes())} facts)"

    def _table_sizes(self) -> Dict[int, int]:
        raise NotImplementedError


class ArenaFactRecords(ArenaSupportState):
    """Fact-level records: ``{atom slot: {fact-record slots}}``."""

    kind = "fact"

    __slots__ = ("table",)

    def __init__(self, arena: Arena, table: SupportTable) -> None:
        super().__init__(arena)
        self.table = table

    def _table_sizes(self) -> Dict[int, int]:
        return {slot: len(records) for slot, records in self.table.items()}

    def to_record_state(self) -> Dict[Atom, Set[FactRecord]]:
        arena = self.arena
        decode = arena.decode_fact_record
        return {
            arena.atoms[slot]: {decode(record) for record in records}
            for slot, records in self.table.items()
        }

    @classmethod
    def from_records(
        cls,
        records: Dict[Atom, Set[FactRecord]],
        arena: Optional[Arena] = None,
    ) -> "ArenaFactRecords":
        arena = arena if arena is not None else Arena()
        table = SupportTable()
        intern_atom = arena.intern_atom
        for fact, record_set in records.items():
            table.replace(
                intern_atom(fact),
                {
                    arena.intern_fact_record(
                        arena.intern_rule(record.rule),
                        frozenset(
                            intern_atom(atom)
                            for atom in record.positive_facts
                        ),
                        frozenset(
                            intern_atom(atom)
                            for atom in record.negative_facts
                        ),
                    )
                    for record in record_set
                },
            )
        return cls(arena, table)


class ArenaRuleRecords(ArenaSupportState):
    """Cascade rule-pointer records: ``{atom slot: {rule-record slots}}``."""

    kind = "rule"

    __slots__ = ("table",)

    def __init__(self, arena: Arena, table: SupportTable) -> None:
        super().__init__(arena)
        self.table = table

    def _table_sizes(self) -> Dict[int, int]:
        return {slot: len(records) for slot, records in self.table.items()}

    def to_record_state(self) -> Dict[Atom, Set[RuleRecord]]:
        arena = self.arena
        decode = arena.decode_rule_record
        return {
            arena.atoms[slot]: {decode(record) for record in records}
            for slot, records in self.table.items()
        }

    @classmethod
    def from_records(
        cls,
        records: Dict[Atom, Set[RuleRecord]],
        arena: Optional[Arena] = None,
    ) -> "ArenaRuleRecords":
        arena = arena if arena is not None else Arena()
        table = SupportTable()
        for fact, record_set in records.items():
            table.replace(
                arena.intern_atom(fact),
                {
                    arena.intern_rule_record(record.rule)
                    for record in record_set
                },
            )
        return cls(arena, table)


class ArenaPairedRecords(ArenaSupportState):
    """Linked (Pos, Neg) pairs: ``{atom slot: {paired-record slots}}``."""

    kind = "paired"

    __slots__ = ("table",)

    def __init__(self, arena: Arena, table: SupportTable) -> None:
        super().__init__(arena)
        self.table = table

    def _table_sizes(self) -> Dict[int, int]:
        return {slot: len(records) for slot, records in self.table.items()}

    def to_record_state(self) -> Dict[Atom, Set[PairedRecord]]:
        arena = self.arena
        decode = arena.decode_paired_record
        return {
            arena.atoms[slot]: {decode(record) for record in records}
            for slot, records in self.table.items()
        }

    @classmethod
    def from_records(
        cls,
        records: Dict[Atom, Set[PairedRecord]],
        arena: Optional[Arena] = None,
    ) -> "ArenaPairedRecords":
        arena = arena if arena is not None else Arena()
        table = SupportTable()
        for fact, record_set in records.items():
            table.replace(
                arena.intern_atom(fact),
                {
                    arena.intern_paired_record(
                        arena.intern_element_entries(record.pos),
                        arena.intern_element_entries(record.neg),
                    )
                    for record in record_set
                },
            )
        return cls(arena, table)


class ArenaSosSupports(ArenaSupportState):
    """Independent Pos/Neg sets of sets: two element tables per fact."""

    kind = "sos"

    __slots__ = ("pos_table", "neg_table")

    def __init__(
        self, arena: Arena, pos_table: SupportTable, neg_table: SupportTable
    ) -> None:
        super().__init__(arena)
        self.pos_table = pos_table
        self.neg_table = neg_table

    def _table_sizes(self) -> Dict[int, int]:
        return {
            slot: len(elements) for slot, elements in self.pos_table.items()
        }

    def to_record_state(self) -> Dict[Atom, SetOfSetsSupport]:
        arena = self.arena
        decode = arena.decode_element
        neg_get = self.neg_table.get
        supports: Dict[Atom, SetOfSetsSupport] = {}
        for slot, pos_elements in self.pos_table.items():
            neg_elements = neg_get(slot) or set()
            supports[arena.atoms[slot]] = SetOfSetsSupport(
                {decode(element) for element in pos_elements},
                {decode(element) for element in neg_elements},
            )
        return supports

    @classmethod
    def from_records(
        cls,
        supports: Dict[Atom, SetOfSetsSupport],
        arena: Optional[Arena] = None,
    ) -> "ArenaSosSupports":
        arena = arena if arena is not None else Arena()
        pos_table = SupportTable()
        neg_table = SupportTable()
        for fact, support in supports.items():
            slot = arena.intern_atom(fact)
            pos_table.replace(
                slot,
                {
                    arena.intern_element_entries(element)
                    for element in support.pos
                },
            )
            neg_table.replace(
                slot,
                {
                    arena.intern_element_entries(element)
                    for element in support.neg
                },
            )
        return cls(arena, pos_table, neg_table)


def support_state_kinds() -> Dict[str, type]:
    """The serializer's dispatch table: payload kind tag -> state class."""
    return {
        ArenaFactRecords.kind: ArenaFactRecords,
        ArenaRuleRecords.kind: ArenaRuleRecords,
        ArenaPairedRecords.kind: ArenaPairedRecords,
        ArenaSosSupports.kind: ArenaSosSupports,
    }


# ----------------------------------------------------------------------
# Canonical renumbering (snapshot encode)
# ----------------------------------------------------------------------
#
# Arena slots are path-dependent (interning order) and arenas accumulate
# garbage records, so serializing the raw arrays would violate the store
# contract that equal belief states produce identical bytes. Instead the
# encoder walks exactly the slots reachable from the table, renumbers them
# in a canonical order (atoms by (relation, args repr); rules, entries and
# elements by their canonical encodings), and emits remapped int rows.
# This IS the intern-table reuse the v2 codec was missing: the arena's
# tables are remapped with one pass of dict lookups per reachable slot —
# no per-record object traversal, hashing, or occurrence counting — and
# rebuilding the arena from a record mapping first yields byte-identical
# output (asserted by the unit tests).


def _atom_sort_key(atom: Atom) -> Tuple[str, str]:
    return (atom.relation, repr(atom.args))


def _entry_sort_key(entry: "str | Signed") -> Tuple[str, str, str]:
    if isinstance(entry, Signed):
        return ("g", entry.sign, entry.relation)
    return ("s", entry, "")


class CanonicalParts:
    """The renumbered, garbage-free image of one support state.

    ``atoms``/``rules``/``entries`` hold the reachable objects in canonical
    order; ``elements``/``records``/``table`` hold int rows over those
    positions. The serializer encodes the object lists with its own codec
    and writes the int rows verbatim.
    """

    __slots__ = ("kind", "atoms", "rules", "entries", "elements", "records",
                 "table")

    def __init__(
        self,
        kind: str,
        atoms: List[Atom],
        rules: List[Optional[Clause]],
        entries: List["str | Signed"],
        elements: List[List[int]],
        records: List[List[int]],
        table: List[List[object]],
    ) -> None:
        self.kind = kind
        self.atoms = atoms
        self.rules = rules
        self.entries = entries
        self.elements = elements
        self.records = records
        self.table = table


def _canonical_atoms(
    arena: Arena, slots: Iterable[int]
) -> Tuple[List[Atom], Dict[int, int]]:
    ordered = sorted(slots, key=lambda slot: _atom_sort_key(arena.atoms[slot]))
    return (
        [arena.atoms[slot] for slot in ordered],
        {slot: index for index, slot in enumerate(ordered)},
    )


def _canonical_rules(
    arena: Arena, slots: Iterable[int], rule_key: object
) -> Tuple[List[Optional[Clause]], Dict[int, int]]:
    """Rules in canonical order; slot 0 (None) is always position 0."""
    keyed = sorted(
        (slot for slot in set(slots) if slot != NO_RULE),
        key=lambda slot: rule_key(arena.rules[slot]),  # type: ignore[operator]
    )
    ordered = [NO_RULE] + keyed
    return (
        [arena.rules[slot] for slot in ordered],
        {slot: index for index, slot in enumerate(ordered)},
    )


def _canonical_elements(
    arena: Arena, slots: Iterable[int]
) -> Tuple[List["str | Signed"], List[List[int]], Dict[int, int]]:
    """Entries and element rows for the reachable element slots."""
    reachable = sorted(set(slots))
    entry_slots: Set[int] = set()
    for slot in reachable:
        entry_slots |= arena.element_members[slot]
    entries_ordered = sorted(
        entry_slots, key=lambda slot: _entry_sort_key(arena.entries[slot])
    )
    entry_index = {slot: index for index, slot in enumerate(entries_ordered)}
    rows = sorted(
        (
            slot,
            sorted(entry_index[m] for m in arena.element_members[slot]),
        )
        for slot in reachable
    )
    rows.sort(key=lambda pair: pair[1])
    element_index = {slot: index for index, (slot, _) in enumerate(rows)}
    return (
        [arena.entries[slot] for slot in entries_ordered],
        [row for _, row in rows],
        element_index,
    )


def canonical_parts(
    state: ArenaSupportState, rule_key: object = repr
) -> CanonicalParts:
    """Build the canonical image of *state* (see module docstring).

    *rule_key* orders the reachable rules; it must be deterministic and
    injective on distinct clauses (``repr`` is — atom/term reprs
    distinguish constant types).
    """
    arena = state.arena
    if isinstance(state, ArenaFactRecords):
        record_slots: Set[int] = set()
        for records in state.table.values():
            record_slots |= records
        atom_slots: Set[int] = set(state.table.keys())
        for slot in record_slots:
            atom_slots |= arena.fact_pos[slot]
            atom_slots |= arena.fact_neg[slot]
        atoms, atom_index = _canonical_atoms(arena, atom_slots)
        rules, rule_index = _canonical_rules(
            arena, (arena.fact_rule[slot] for slot in record_slots), rule_key
        )
        record_rows = sorted(
            [
                rule_index[arena.fact_rule[slot]],
                sorted(atom_index[m] for m in arena.fact_pos[slot]),
                sorted(atom_index[m] for m in arena.fact_neg[slot]),
            ]
            for slot in record_slots
        )
        record_index = {
            tuple(map(tuple, ((row[0],), row[1], row[2]))): index
            for index, row in enumerate(record_rows)
        }

        def fact_row_key(slot: int) -> Tuple[Tuple[int, ...], ...]:
            return (
                (rule_index[arena.fact_rule[slot]],),
                tuple(sorted(atom_index[m] for m in arena.fact_pos[slot])),
                tuple(sorted(atom_index[m] for m in arena.fact_neg[slot])),
            )

        table_rows: List[List[object]] = sorted(
            [
                atom_index[slot],
                sorted(record_index[fact_row_key(r)] for r in records),
            ]
            for slot, records in state.table.items()
        )
        return CanonicalParts(
            state.kind, atoms, rules, [], [], record_rows, table_rows
        )
    if isinstance(state, ArenaRuleRecords):
        atoms, atom_index = _canonical_atoms(arena, state.table.keys())
        rule_slots: Set[int] = set()
        for records in state.table.values():
            rule_slots |= {arena.rule_record_rule[slot] for slot in records}
        rules, rule_index = _canonical_rules(arena, rule_slots, rule_key)
        table_rows = sorted(
            [
                atom_index[slot],
                sorted(
                    rule_index[arena.rule_record_rule[r]] for r in records
                ),
            ]
            for slot, records in state.table.items()
        )
        return CanonicalParts(state.kind, atoms, rules, [], [], [], table_rows)
    if isinstance(state, ArenaPairedRecords):
        atoms, atom_index = _canonical_atoms(arena, state.table.keys())
        record_slots = set()
        for records in state.table.values():
            record_slots |= records
        element_slots = {arena.paired_pos[slot] for slot in record_slots}
        element_slots |= {arena.paired_neg[slot] for slot in record_slots}
        entries, element_rows, element_index = _canonical_elements(
            arena, element_slots
        )
        record_rows = sorted(
            [
                element_index[arena.paired_pos[slot]],
                element_index[arena.paired_neg[slot]],
            ]
            for slot in record_slots
        )
        record_index = {
            (row[0], row[1]): index for index, row in enumerate(record_rows)
        }
        table_rows = sorted(
            [
                atom_index[slot],
                sorted(
                    record_index[
                        (
                            element_index[arena.paired_pos[r]],
                            element_index[arena.paired_neg[r]],
                        )
                    ]
                    for r in records
                ),
            ]
            for slot, records in state.table.items()
        )
        return CanonicalParts(
            state.kind, atoms, [], entries, element_rows, record_rows,
            table_rows,
        )
    if isinstance(state, ArenaSosSupports):
        atom_slots = set(state.pos_table.keys()) | set(
            state.neg_table.keys()
        )
        atoms, atom_index = _canonical_atoms(arena, atom_slots)
        element_slots = set()
        for elements in state.pos_table.values():
            element_slots |= elements
        for elements in state.neg_table.values():
            element_slots |= elements
        entries, element_rows, element_index = _canonical_elements(
            arena, element_slots
        )
        table_rows = sorted(
            [
                atom_index[slot],
                sorted(
                    element_index[e]
                    for e in (state.pos_table.get(slot) or ())
                ),
                sorted(
                    element_index[e]
                    for e in (state.neg_table.get(slot) or ())
                ),
            ]
            for slot in atom_slots
        )
        return CanonicalParts(
            state.kind, atoms, [], entries, element_rows, [], table_rows
        )
    raise TypeError(f"unknown arena support state {state!r}")


def from_canonical_parts(
    kind: str,
    atoms: List[Atom],
    rules: List[Optional[Clause]],
    entries: List["str | Signed"],
    elements: List[List[int]],
    records: List[List[int]],
    table: List[List[object]],
) -> ArenaSupportState:
    """Rebuild a support state from its canonical image (snapshot decode).

    A fresh arena is populated in payload order — position *k* of each
    payload list interns to slot *k* (slot 0 pre-interned values line up
    because the canonical order puts them first), so the int rows map
    one-to-one and no object-graph decode pass runs.
    """
    arena = Arena()
    atom_slots = [arena.intern_atom(atom) for atom in atoms]
    if kind == ArenaFactRecords.kind:
        rule_slots = [arena.intern_rule(rule) for rule in rules]
        record_slots = [
            arena.intern_fact_record(
                rule_slots[row[0]],  # type: ignore[index]
                frozenset(atom_slots[m] for m in row[1]),  # type: ignore[union-attr]
                frozenset(atom_slots[m] for m in row[2]),  # type: ignore[union-attr]
            )
            for row in records
        ]
        table_store = SupportTable()
        for row in table:
            table_store.replace(
                atom_slots[row[0]],  # type: ignore[index]
                {record_slots[r] for r in row[1]},  # type: ignore[union-attr]
            )
        return ArenaFactRecords(arena, table_store)
    if kind == ArenaRuleRecords.kind:
        record_of_rule = [
            arena.intern_rule_record(rule) for rule in rules
        ]
        table_store = SupportTable()
        for row in table:
            table_store.replace(
                atom_slots[row[0]],  # type: ignore[index]
                {record_of_rule[r] for r in row[1]},  # type: ignore[union-attr]
            )
        return ArenaRuleRecords(arena, table_store)
    entry_slots = [arena.intern_entry(entry) for entry in entries]
    element_slots = [
        arena.intern_element(frozenset(entry_slots[m] for m in row))
        for row in elements
    ]
    if kind == ArenaPairedRecords.kind:
        record_slots = [
            arena.intern_paired_record(
                element_slots[row[0]], element_slots[row[1]]
            )
            for row in records
        ]
        table_store = SupportTable()
        for row in table:
            table_store.replace(
                atom_slots[row[0]],  # type: ignore[index]
                {record_slots[r] for r in row[1]},  # type: ignore[union-attr]
            )
        return ArenaPairedRecords(arena, table_store)
    if kind == ArenaSosSupports.kind:
        pos_table = SupportTable()
        neg_table = SupportTable()
        for row in table:
            slot = atom_slots[row[0]]  # type: ignore[index]
            pos_table.replace(
                slot, {element_slots[e] for e in row[1]}  # type: ignore[union-attr]
            )
            neg_table.replace(
                slot, {element_slots[e] for e in row[2]}  # type: ignore[union-attr]
            )
        return ArenaSosSupports(arena, pos_table, neg_table)
    raise ValueError(f"unknown arena support-state kind {kind!r}")
