"""Section 4.2 — the dynamic solution with one (Pos, Neg) pair per fact.

The supports are computed *during* saturation, so they record the
dependencies actually used rather than all potential ones (which is what
saves Example 1's ``accepted(l+1)`` from migrating: an asserted fact has the
trivial support and never fails a removal test).

Negative hypotheses are the subtle part. Recording the negated relations
plainly is **incorrect** (the paper's Example 2: the chain ``p1 :- not p0``,
``p2 :- not p1``, ``p3 :- not p2`` loses the crucial dependency of ``p3`` on
``p0``). The fix keeps *signed* entries (``-r`` in Pos, ``+r`` in Neg) which
the removal phase expands through the static closures into the paper's
``Pos'``/``Neg'`` (Lemma 2). Both variants are implemented —
``signed_statics=False`` reproduces the incorrect one for experiment E3.

Only one support is kept per fact; when another deduction yields a pairwise
smaller pair it replaces the old one (Example 3 / CONGRESS; disable with
``keep_smaller=False`` for the E4 ablation). Keeping just one support is
also why Example 4 (MEET) still migrates — fixed by the sets-of-sets
solution of section 4.3.
"""

from __future__ import annotations

from ..datalog.atoms import Atom
from ..datalog.clauses import Clause
from ..datalog.evaluation import Derivation
from ..obs import OBS
from .base import MaintenanceEngine
from .supports import (
    PairSupport,
    expand_neg_element,
    expand_pos_element,
    pair_support_of_derivation,
    plain_relations,
)


class DynamicEngine(MaintenanceEngine):
    """The dynamic solution of section 4.2."""

    name = "dynamic"

    def __init__(
        self,
        program,
        *,
        signed_statics: bool = True,
        keep_smaller: bool = True,
        **kwargs,
    ):
        self.signed_statics = signed_statics
        self.keep_smaller = keep_smaller
        self._supports: dict[Atom, PairSupport] = {}
        super().__init__(program, **kwargs)

    # ------------------------------------------------------------------
    # Support construction
    # ------------------------------------------------------------------

    def _reset_supports(self) -> None:
        self._supports.clear()

    def _build_listener(self):
        def listener(derivation: Derivation, is_new: bool, plan) -> None:
            self._derivations_fired += 1
            self._note_deduction(derivation, plan)

        return listener

    def _base_pair(self, clause) -> PairSupport:
        """The clause-level contribution to a deduction's (Pos, Neg) pair.

        Depends only on the rule's body relations, so it is built once per
        clause and attached to the plan as a support template; per
        derivation only the body facts' supports are unioned in.
        """
        return pair_support_of_derivation(
            (),
            (lit.relation for lit in clause.positive_body),
            (lit.relation for lit in clause.negative_body),
        )

    def _base_plain(self, clause) -> PairSupport:
        # The paper's first, incorrect attempt: negated relations are
        # recorded plainly and dependencies through them are lost.
        return PairSupport(
            frozenset(lit.relation for lit in clause.positive_body),
            frozenset(lit.relation for lit in clause.negative_body),
        )

    def _note_deduction(self, derivation: Derivation, plan) -> None:
        base: PairSupport = plan.support_template(
            "pair_signed" if self.signed_statics else "pair_plain",
            self._base_pair if self.signed_statics else self._base_plain,
        )
        pos: set = set(base.pos)
        neg: set = set(base.neg)
        for fact in derivation.positive_facts:
            body = self._supports[fact]
            pos |= body.pos
            neg |= body.neg
        support = PairSupport(frozenset(pos), frozenset(neg))
        existing = self._supports.get(derivation.head)
        if existing is None:
            self._supports[derivation.head] = support
        elif self.keep_smaller and support.pairwise_smaller(existing):
            self._supports[derivation.head] = support

    def _register_assertion(self, fact: Atom) -> None:
        trivial = PairSupport.trivial()
        existing = self._supports.get(fact)
        if existing is None or (
            self.keep_smaller and trivial.pairwise_smaller(existing)
        ):
            self._supports[fact] = trivial

    def support_of(self, fact: Atom) -> PairSupport:
        """The current support of *fact* (KeyError when absent)."""
        return self._supports[fact]

    def support_entry_count(self) -> int:
        return sum(support.size() for support in self._supports.values())

    def _support_state(self) -> dict:
        # PairSupport is immutable; copying the dict is a deep copy.
        return {"supports": dict(self._supports)}

    def _live_support_state(self) -> dict:
        # The live dict itself; values are immutable PairSupports.
        return {"supports": self._supports}

    def _load_support_state(self, state: dict) -> None:
        self._supports = dict(state["supports"])

    # ------------------------------------------------------------------
    # Removal phases
    # ------------------------------------------------------------------

    def _expanded_neg(self, support: PairSupport) -> set[str]:
        if self.signed_statics:
            return expand_neg_element(support.neg, self.db.statics)
        return plain_relations(support.neg)

    def _expanded_pos(self, support: PairSupport) -> set[str]:
        if self.signed_statics:
            return expand_pos_element(support.pos, self.db.statics)
        return plain_relations(support.pos)

    def _evict(self, fact: Atom) -> None:
        self.model.discard(fact)
        self._supports.pop(fact, None)

    def _remove_by_neg(self, relation: str) -> set[Atom]:
        """Evict facts whose Neg' contains *relation* (insertion case)."""
        with OBS.span("phase:removal") as span:
            doomed = [
                fact
                for fact, support in self._supports.items()
                if relation in self._expanded_neg(support)
            ]
            for fact in doomed:
                self._evict(fact)
            if span:
                span.set("evicted", len(doomed))
        return set(doomed)

    def _remove_by_pos(self, relation: str) -> set[Atom]:
        """Evict facts whose Pos' contains *relation* (deletion case)."""
        with OBS.span("phase:removal") as span:
            doomed = [
                fact
                for fact, support in self._supports.items()
                if relation in self._expanded_pos(support)
            ]
            for fact in doomed:
                self._evict(fact)
            if span:
                span.set("evicted", len(doomed))
        return set(doomed)

    # ------------------------------------------------------------------
    # Update procedures
    # ------------------------------------------------------------------

    def _apply_insert_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        removed = self._remove_by_neg(fact.relation)
        self.model.add(fact)
        self._supports[fact] = PairSupport.trivial()
        added = self._resaturate_from(
            self.db.stratum_of(fact.relation), self._build_listener()
        )
        return removed, added | {fact}

    def _apply_delete_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        removed = self._remove_by_pos(fact.relation)
        if fact in self.model:
            self._evict(fact)
            removed.add(fact)
        added = self._resaturate_from(
            self.db.stratum_of(fact.relation), self._build_listener()
        )
        return removed, added

    def _apply_insert_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        head = rule.head.relation
        removed = self._remove_by_neg(head)
        added = self._resaturate_from(
            self.db.stratum_of(head), self._build_listener()
        )
        return removed, added

    def _apply_delete_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        head = rule.head.relation
        removed = self._remove_by_pos(head)
        # Facts of the head relation may have been produced by the deleted
        # rule; the relation-level support cannot tell which, so every
        # non-asserted fact of the relation is evicted and re-derivation
        # sorts it out (the asserted ones keep their trivial support).
        for fact in list(self.model.facts_of(head)):
            if not self.db.is_asserted(fact):
                self._evict(fact)
                removed.add(fact)
        added = self._resaturate_from(
            self.db.stratum_of(head), self._build_listener()
        )
        return removed, added
