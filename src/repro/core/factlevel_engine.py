"""Section 5.2 discussion — fact-level supports, the no-migration solution.

"One might consider a different form of supports in which not relations but
facts are recorded. [...] In fact, this form of supports combined with an
appropriate type of a saturation procedure keeping all possible 'original'
deductions would lead to a solution with no migration. This solution could
be of interest in the case of Artificial Intelligence applications where
typically few facts and many rules are used. However, this choice should be
rejected in the framework of databases [because it defeats the delta-driven
mechanism and the bookkeeping cost is prohibitive]."

This engine implements that rejected-but-interesting solution so the
trade-off can be measured (experiments E7, E8, E12):

* every ground deduction is kept as a :class:`~repro.core.supports.FactRecord`
  (rule, positive body *facts*, negated ground *atoms*) — a ground
  justification network, exactly a Doyle-style TMS;
* an update kills precisely the records whose negative facts appeared or
  whose positive facts disappeared;
* a fact is evicted only when it has no *well-founded* record left — the
  groundedness check guards against mutually supporting positive cycles
  (``p :- q, q :- p``) surviving the loss of their external support;
* saturation runs before the kills, so a deduction enabled by the same
  update keeps its fact alive through the transition: **nothing is ever
  removed and re-added — migration is structurally zero** (asserted by the
  property tests).
"""

from __future__ import annotations

from typing import Iterable

from ..datalog.atoms import Atom
from ..datalog.clauses import Clause
from ..datalog.evaluation import Derivation, semi_naive_saturate
from ..datalog.stratify import Stratum
from ..obs import OBS
from .arena import ASSERTION, Arena, ArenaFactRecords, SupportTable
from .base import MaintenanceEngine
from .supports import FactRecord


def _make_assertion_record(_clause) -> FactRecord:
    return FactRecord.assertion()


class FactLevelEngine(MaintenanceEngine):
    """Fact-level supports keeping all deductions (section 5.2 discussion).

    This is the engine the support arena pays off most for: its
    bookkeeping is the largest of any solution (one record per ground
    deduction), and with ``arena=True`` (the default) it lives as int
    slots in a shared :class:`~repro.core.arena.Arena` — kills and
    groundedness checks intersect frozensets of ints, checkpoints copy
    one copy-on-write table. ``arena=False`` keeps the per-object
    :class:`~repro.core.supports.FactRecord` path as the differential
    baseline.
    """

    name = "factlevel"

    def __init__(self, program, **kwargs):
        self._records: dict[Atom, set[FactRecord]] = {}
        self._arena = Arena()
        self._table = SupportTable()
        super().__init__(program, **kwargs)

    # ------------------------------------------------------------------
    # Supports
    # ------------------------------------------------------------------

    def _reset_supports(self) -> None:
        self._records.clear()
        self._arena = Arena()
        self._table = SupportTable()

    def _build_listener(self):
        if self.arena:
            arena = self._arena
            table = self._table
            intern_atom = arena.intern_atom

            def listener(derivation: Derivation, is_new: bool, plan) -> None:
                self._derivations_fired += 1
                if not derivation.clause.body:
                    slot = ASSERTION
                else:
                    slot = arena.intern_fact_record(
                        arena.intern_rule(derivation.clause),
                        frozenset(
                            intern_atom(fact)
                            for fact in derivation.positive_facts
                        ),
                        frozenset(
                            intern_atom(atom)
                            for atom in derivation.negative_atoms
                        ),
                    )
                table.add(intern_atom(derivation.head), slot)

            return listener

        def listener(derivation: Derivation, is_new: bool, plan) -> None:
            self._derivations_fired += 1
            if not derivation.clause.body:
                # the assertion record is clause-independent; the plan
                # template just avoids re-allocating it per derivation
                record = plan.support_template(
                    "fact_assertion", _make_assertion_record
                )
            else:
                # fact-level records cite ground body facts, so only the
                # clause pointer is plan-level; the frozensets are
                # inherently per-derivation
                record = FactRecord(
                    derivation.clause,
                    frozenset(derivation.positive_facts),
                    frozenset(derivation.negative_atoms),
                )
            self._records.setdefault(derivation.head, set()).add(record)

        return listener

    def _register_assertion(self, fact: Atom) -> None:
        if self.arena:
            self._table.add(self._arena.intern_atom(fact), ASSERTION)
        else:
            self._records.setdefault(fact, set()).add(FactRecord.assertion())

    def records_of(self, fact: Atom) -> set[FactRecord]:
        if self.arena:
            slot = self._arena.atom_id(fact)
            records = None if slot is None else self._table.get(slot)
            if records is None:
                raise KeyError(fact)
            decode = self._arena.decode_fact_record
            return {decode(record) for record in records}
        return self._records[fact]

    def support_entry_count(self) -> int:
        if self.arena:
            size = self._arena.fact_record_size
            return sum(
                size(record)
                for records in self._table.values()
                for record in records
            )
        return sum(
            record.size()
            for records in self._records.values()
            for record in records
        )

    def _support_state(self) -> dict:
        if self.arena:
            # The arena is shared (append-only: existing slots never
            # change meaning), the table is copy-on-write — taking a
            # support snapshot is O(facts with support), not O(entries).
            return {
                "records": ArenaFactRecords(self._arena, self._table.copy())
            }
        return {
            "records": {
                fact: set(records) for fact, records in self._records.items()
            }
        }

    def _live_support_state(self) -> dict:
        if self.arena:
            # Uncopied live table: preserves _owned for O(changed) diffs.
            return {"records": ArenaFactRecords(self._arena, self._table)}
        return self._support_state()

    def _load_support_state(self, state: dict) -> None:
        records = state["records"]
        if self.arena:
            if not isinstance(records, ArenaFactRecords):
                records = ArenaFactRecords.from_records(records)
            self._arena = records.arena
            self._table = records.table.copy()
            self._records = {}
        else:
            if isinstance(records, ArenaFactRecords):
                records = records.to_record_state()
            self._records = {
                fact: set(entries) for fact, entries in records.items()
            }
            self._arena = Arena()
            self._table = SupportTable()

    # ------------------------------------------------------------------
    # The cascade at fact granularity
    # ------------------------------------------------------------------

    def _evict(self, fact: Atom) -> None:
        self.model.discard(fact)
        if self.arena:
            slot = self._arena.atom_id(fact)
            if slot is not None:
                self._table.pop(slot)
        else:
            self._records.pop(fact, None)

    def _saturate(
        self,
        stratum: Stratum,
        inc_facts: set[Atom],
        dec_relations: set[str],
        extra_full_heads: set[str] = frozenset(),
        seed_rules: Iterable[Clause] = (),
    ) -> set[Atom]:
        seed_rules = set(seed_rules)
        # Asserted facts only ever need a full fire when their head
        # relation must re-derive (extra_full_heads) or they were seeded
        # directly; the hot insert path scans rules only — O(rules), not
        # O(asserted facts).
        candidates = (
            stratum.clauses
            if extra_full_heads or seed_rules
            else stratum.rules
        )
        full_fire = {
            clause
            for clause in candidates
            if clause in seed_rules
            or clause.head.relation in extra_full_heads
            or any(
                lit.relation in dec_relations for lit in clause.negative_body
            )
        }
        delta: dict[str, set[tuple]] = {}
        for fact in inc_facts:
            delta.setdefault(fact.relation, set()).add(fact.args)
        with OBS.span("phase:saturate") as span:
            added = semi_naive_saturate(
                stratum.clauses,
                self.model,
                self._build_listener(),
                initial_full=False,
                delta=delta,
                full_fire=full_fire,
                planner=self.planner,
            )
            if span:
                span.set("added", len(added))
                span.set("full_fire", len(full_fire))
        return added

    @staticmethod
    def _vulnerable_heads(
        stratum: Stratum, inc_facts: set[Atom], dec_facts: set[Atom]
    ) -> set[str]:
        """Head relations whose records could reference a changed fact.

        A fact-level record stores the ground body facts of one rule
        firing, so it can intersect *inc_facts* only through a negative
        body literal of the same relation as an inserted fact, and
        *dec_facts* only through a positive literal of a deleted fact's
        relation. Heads of rules with no such literal cannot lose a
        record — the kill sweep skips them, which on traffic whose
        relations no rule negates reduces the sweep to nothing instead
        of an O(model) scan per update.
        """
        inc_relations = {fact.relation for fact in inc_facts}
        dec_relations = {fact.relation for fact in dec_facts}
        return {
            clause.head.relation
            for clause in stratum.rules
            if any(
                literal.relation in inc_relations
                for literal in clause.negative_body
            )
            or any(
                literal.relation in dec_relations
                for literal in clause.positive_body
            )
        }

    def _kill_records(
        self, stratum: Stratum, inc_facts: set[Atom], dec_facts: set[Atom]
    ) -> bool:
        """Kill exactly the records invalidated by the update. Returns
        whether anything was killed (triggering a groundedness pass)."""
        if self.arena:
            return self._kill_records_arena(stratum, inc_facts, dec_facts)
        heads = self._vulnerable_heads(stratum, inc_facts, dec_facts)
        killed = False
        for relation in stratum.relations & heads:
            for fact in list(self.model.facts_of(relation)):
                records = self._records.get(fact)
                if not records:
                    continue
                dead = {
                    record
                    for record in records
                    if record.negative_facts & inc_facts
                    or record.positive_facts & dec_facts
                }
                if dead:
                    records -= dead
                    killed = True
        return killed

    def _kill_records_arena(
        self, stratum: Stratum, inc_facts: set[Atom], dec_facts: set[Atom]
    ) -> bool:
        """The kill sweep in id space: two int-set intersections per
        record. A changed fact that was never interned cannot appear in
        any record, so un-interned facts drop out up front."""
        arena = self._arena
        atom_id = arena.atom_id
        inc_slots = {
            slot
            for slot in (atom_id(fact) for fact in inc_facts)
            if slot is not None
        }
        dec_slots = {
            slot
            for slot in (atom_id(fact) for fact in dec_facts)
            if slot is not None
        }
        if not inc_slots and not dec_slots:
            return False
        heads = self._vulnerable_heads(stratum, inc_facts, dec_facts)
        table = self._table
        fact_pos, fact_neg = arena.fact_pos, arena.fact_neg
        killed = False
        for relation in stratum.relations & heads:
            for fact in list(self.model.facts_of(relation)):
                slot = atom_id(fact)
                records = None if slot is None else table.get(slot)
                if not records:
                    continue
                dead = {
                    record
                    for record in records
                    if fact_neg[record] & inc_slots
                    or fact_pos[record] & dec_slots
                }
                if dead:
                    table.discard_many(slot, dead)
                    killed = True
        return killed

    def _well_founded_evictions(self, stratum: Stratum) -> set[Atom]:
        """Evict the stratum facts with no grounded deduction left.

        A record is grounded when each of its positive body facts either
        lives in a lower stratum *and is still in the model* (a record can
        go stale when its body fact died in the same stratum pass that
        created the dec entry — restratification moves relations between
        strata, so presence must be checked, not assumed) or has itself
        been validated. Iterating to a fixpoint from below rejects mutually
        supporting positive cycles.
        """
        index = stratum.index
        stratum_of = self.db.stratification.stratum_of
        candidates = [
            fact
            for relation in stratum.relations
            for fact in self.model.facts_of(relation)
        ]
        if self.arena:
            evicted = self._well_founded_arena(candidates, index, stratum_of)
        else:
            validated: set[Atom] = set()
            changed = True
            while changed:
                changed = False
                for fact in candidates:
                    if fact in validated:
                        continue
                    for record in self._records.get(fact, ()):
                        grounded = all(
                            body in validated
                            or (
                                stratum_of(body.relation) < index
                                and body in self.model
                            )
                            for body in record.positive_facts
                        )
                        if grounded:
                            validated.add(fact)
                            changed = True
                            break
            evicted = {fact for fact in candidates if fact not in validated}
        for fact in evicted:
            self._evict(fact)
        span = OBS.tracer.current if OBS.enabled else None
        if span is not None:
            span.event("well_founded_check", evicted=len(evicted))
        return evicted

    def _well_founded_arena(
        self, candidates: list[Atom], index: int, stratum_of
    ) -> set[Atom]:
        """The groundedness fixpoint over atom slots.

        The "body fact lives below this stratum and is still in the
        model" predicate is memoised per slot across the whole fixpoint —
        the record graph cites the same lower-stratum facts over and over,
        and in id space the memo is one dict probe.
        """
        arena = self._arena
        atom_id = arena.atom_id
        atoms = arena.atoms
        fact_pos = arena.fact_pos
        table = self._table
        model = self.model
        slot_of = {fact: atom_id(fact) for fact in candidates}
        lower: dict[int, bool] = {}

        def is_lower(slot: int) -> bool:
            cached = lower.get(slot)
            if cached is None:
                atom = atoms[slot]
                cached = lower[slot] = (
                    stratum_of(atom.relation) < index and atom in model
                )
            return cached

        validated: set[int] = set()
        changed = True
        while changed:
            changed = False
            for fact in candidates:
                slot = slot_of[fact]
                if slot is None or slot in validated:
                    continue
                for record in table.get(slot) or ():
                    grounded = all(
                        body in validated or is_lower(body)
                        for body in fact_pos[record]
                    )
                    if grounded:
                        validated.add(slot)
                        changed = True
                        break
        return {
            fact
            for fact in candidates
            if slot_of[fact] is None or slot_of[fact] not in validated
        }

    def _run_cascade(
        self,
        start: int,
        inc_facts: set[Atom],
        dec_facts: set[Atom],
        seed_rules: Iterable[Clause] = (),
        forced_check_start: bool = False,
    ) -> tuple[set[Atom], set[Atom]]:
        removed_all: set[Atom] = set()
        added_all: set[Atom] = set()
        seed_rules = tuple(seed_rules)
        strata = self.db.stratification.strata
        for position, stratum in enumerate(strata[start - 1 :]):
            first = position == 0
            inc_relations = {fact.relation for fact in inc_facts}
            dec_relations = {fact.relation for fact in dec_facts}
            if not first and not self._stratum_depends_on(
                stratum, inc_relations | dec_relations
            ):
                continue
            if first and not (
                seed_rules or forced_check_start or inc_facts or dec_facts
            ):
                continue
            with OBS.span("stratum") as stratum_span:
                if stratum_span:
                    stratum_span.set("index", stratum.index)
                # Saturate FIRST: a deduction enabled by this very update
                # keeps its fact alive through the kills below — this is
                # what makes migration structurally zero.
                added = self._saturate(
                    stratum, inc_facts, dec_relations, seed_rules=seed_rules
                    if first
                    else (),
                )
                added_all |= added
                inc_facts |= added
                with OBS.span("phase:removal") as removal_span:
                    killed = self._kill_records(stratum, inc_facts, dec_facts)
                    evicted: set[Atom] = set()
                    if killed or (first and forced_check_start):
                        evicted = self._well_founded_evictions(stratum)
                        # Facts added earlier in this very update and
                        # evicted now were never part of the maintained
                        # model: churn, not removal (and certainly not
                        # migration).
                        transient = evicted & added_all
                        self._transient += len(transient)
                        added_all -= transient
                        removed_all |= evicted - transient
                        dec_facts |= evicted
                        inc_facts -= evicted
                        if evicted:
                            # Purge records of surviving same-stratum facts
                            # that cite the just-evicted ones, so no stale
                            # record outlives its body fact.
                            self._kill_records(stratum, inc_facts, dec_facts)
                    if removal_span:
                        removal_span.set("evicted", len(evicted))
                if stratum_span:
                    stratum_span.set("added", len(added))
        return removed_all, added_all

    def _stratum_depends_on(self, stratum: Stratum, active: set[str]) -> bool:
        if not active:
            return False
        for clause in stratum.clauses:
            for lit in clause.body:
                if lit.relation in active:
                    return True
        return False

    # ------------------------------------------------------------------
    # Update procedures
    # ------------------------------------------------------------------

    def _apply_insert_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        self.model.add(fact)
        if self.arena:
            self._table.replace(self._arena.intern_atom(fact), {ASSERTION})
        else:
            self._records[fact] = {FactRecord.assertion()}
        removed, added = self._run_cascade(
            self.db.stratum_of(fact.relation), {fact}, set()
        )
        return removed, added | {fact}

    def _apply_delete_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        if self.arena:
            slot = self._arena.atom_id(fact)
            if slot is not None:
                self._table.discard(slot, ASSERTION)
        else:
            records = self._records.get(fact, set())
            records.discard(FactRecord.assertion())
        # The fact may survive through other deductions; the well-founded
        # check at its stratum decides (and handles positive cycles whose
        # only external support was this assertion).
        removed, added = self._run_cascade(
            self.db.stratum_of(fact.relation),
            set(),
            set(),
            forced_check_start=True,
        )
        return removed, added

    def _apply_insert_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        return self._run_cascade(
            self.db.stratum_of(rule.head.relation),
            set(),
            set(),
            seed_rules=(rule,),
        )

    def _apply_delete_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        head = rule.head.relation
        killed = False
        dec_facts: set[Atom] = set()
        if self.arena:
            arena = self._arena
            table = self._table
            rule_slot = arena.rule_id(rule)
            fact_rule = arena.fact_rule
            if rule_slot is not None:  # a never-fired rule has no records
                for fact in list(self.model.facts_of(head)):
                    slot = arena.atom_id(fact)
                    records = None if slot is None else table.get(slot)
                    if not records:
                        continue
                    dead = {
                        record
                        for record in records
                        if fact_rule[record] == rule_slot
                    }
                    if dead:
                        killed = True
                        if dead == records:
                            # Evict here rather than in the stratum sweep:
                            # deleting the relation's last rule can drop it
                            # out of the stratification entirely, in which
                            # case no stratum would ever visit these facts
                            # again.
                            self._evict(fact)
                            dec_facts.add(fact)
                        else:
                            table.discard_many(slot, dead)
        else:
            for fact in list(self.model.facts_of(head)):
                records = self._records.get(fact)
                if not records:
                    continue
                dead = {record for record in records if record.rule == rule}
                if dead:
                    records -= dead
                    killed = True
                    if not records:
                        # Evict here rather than in the stratum sweep:
                        # deleting the relation's last rule can drop it out
                        # of the stratification entirely, in which case no
                        # stratum would ever visit these facts again.
                        self._evict(fact)
                        dec_facts.add(fact)
        removed, added = self._run_cascade(
            self.db.stratum_of(head),
            set(),
            dec_facts,
            forced_check_start=killed,
        )
        return removed | dec_facts, added
