"""The common shape of every maintenance solution.

Each engine owns a :class:`~repro.datalog.database.StratifiedDatabase` and
the explicit representation the paper chooses: the standard model ``M(P)``,
enriched with supports ("we shall actually maintain an enrichment of M(P) in
which each fact from M(P) is tagged with some additional information").

The four update operations share admission logic and accounting; engines
implement the removal/addition phases through the ``_apply_*`` hooks. All
engines accept facts/rules either as AST objects or as source strings.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import ClassVar, Iterable, Union

from ..datalog.atoms import Atom
from ..datalog.clauses import Clause, Program
from ..datalog.database import StratifiedDatabase
from ..datalog.errors import UpdateError
from ..datalog.evaluation import saturate
from ..datalog.model import Model
from ..datalog.parser import parse_clause, parse_fact
from ..datalog.plan import Planner
from ..obs import OBS
from .metrics import MaintenanceStats, UpdateResult

Source = Union[Atom, Clause, str]


def _as_fact(value: Union[Atom, str]) -> Atom:
    if isinstance(value, str):
        return parse_fact(value)
    if isinstance(value, Atom):
        if not value.is_ground():
            raise UpdateError(f"fact {value} contains variables")
        return value
    raise TypeError(f"expected a fact, got {value!r}")


def _as_rule(value: Union[Clause, str]) -> Clause:
    clause = parse_clause(value) if isinstance(value, str) else value
    if not isinstance(clause, Clause):
        raise TypeError(f"expected a rule, got {value!r}")
    if not clause.body:
        raise UpdateError(
            f"{clause} is a fact; use insert_fact/delete_fact for facts"
        )
    return clause


class MaintenanceEngine(ABC):
    """Base class of the maintenance solutions of sections 4 and 5."""

    name: ClassVar[str] = "abstract"

    def __init__(
        self,
        program: Union[Program, StratifiedDatabase, str],
        *,
        method: str = "seminaive",
        granularity: str = "level",
        build: bool = True,
        arena: bool = True,
    ):
        if isinstance(program, StratifiedDatabase):
            self.db = program.copy()
        else:
            self.db = StratifiedDatabase(program, granularity)
        self.method = method
        # Support-carrying engines keep their bookkeeping in the interned
        # int-slot arena (repro.core.arena) when True; arena=False retains
        # the per-object record path as the differential-testing baseline,
        # mirroring the materialize_deltas/delta_choice ablation idiom.
        # Support-free engines ignore the flag.
        self.arena = arena
        self.model = Model()
        self.planner = Planner()  # engine-owned plan cache, reused across updates
        self.totals = MaintenanceStats()
        self._derivations_fired = 0
        self._transient = 0  # facts added and evicted within one update
        if build:
            self.rebuild()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def rebuild(self) -> None:
        """Compute the model (and supports) from scratch."""
        self.model = Model()
        self._reset_supports()
        self._pin_rule_plans()
        for stratum in self.db.stratification:
            saturate(
                stratum.clauses, self.model, self._build_listener(),
                self.method, planner=self.planner,
            )

    def _pin_rule_plans(self) -> None:
        """Pin exactly the current program rules' plans in the planner.

        Pinned plans are exempt from the planner's LRU eviction, so a
        flood of ad-hoc probes (queries, constraint checks) through the
        same planner can never evict the rule plans the maintenance loops
        re-execute on every update. Syncing (not just adding) matters on
        the restore path: a rollback or snapshot load may swap in a
        program with fewer rules, and the dropped rules' pins must lapse
        or they would leak one unevictable plan each.
        """
        self.planner.sync_pins(self.db.program.rules)

    def _reset_supports(self) -> None:
        """Clear the support store before a rebuild. Default: nothing."""

    def _build_listener(self):
        """Derivation listener used during (re)builds. Default: counter only."""

        def listener(derivation, is_new: bool, plan) -> None:
            self._derivations_fired += 1

        return listener

    # ------------------------------------------------------------------
    # Durable state (repro.store)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """A deep, self-contained snapshot of the engine's belief state.

        The returned structure holds plain AST objects (clauses, atoms,
        immutable support records) and fresh container copies, so mutating
        the engine afterwards never aliases into it. ``load_state`` on the
        same (or a freshly constructed) engine restores program, model and
        supports exactly; :mod:`repro.store.serialize` turns the structure
        into JSON for on-disk snapshots.

        Only *belief state* is recorded — program, model, supports.
        Telemetry like the derivations-fired counter is deliberately
        excluded: it depends on the path taken (a batch replay legally
        fires fewer derivations than the same updates applied one by
        one), and equal belief states must serialize to equal bytes.
        """
        return {
            "engine": self.name,
            "method": self.method,
            "granularity": self.db.granularity,
            "program": self.db.program.clauses,
            # Columnar model dump (relation, arity, sorted rows): the bulk
            # form Model.from_relation_data restores without per-fact
            # work, and the v2 snapshot codec writes compactly. Flattening
            # it reproduces the old sorted_facts tuple exactly.
            "model": self.model.relation_data(),
            "supports": self._support_state(),
        }

    def load_state(self, state: dict) -> None:
        """Restore the belief state captured by :meth:`state_dict`.

        Rebuilds the database's derived structures (dependency graph,
        stratification, static closures) from the recorded program — these
        are cheap, rule-driven computations — but takes the model and the
        supports verbatim instead of re-running saturation, which is what
        makes a snapshot restore beat :meth:`rebuild`. When the current
        database already holds exactly the recorded program (the
        ``engine_from_state`` path), it is reused as-is.
        """
        program = tuple(state["program"])
        granularity = state.get("granularity", self.db.granularity)
        if (
            self.db.program.clauses != program
            or self.db.granularity != granularity
        ):
            self.db = StratifiedDatabase(Program(program), granularity)
        self.method = state.get("method", self.method)
        self._pin_rule_plans()
        # Bulk-load the facts: one batched statistics pass per relation
        # rebuilds the per-column distinct-value counts deterministically;
        # indexes refill lazily on first probe, so a snapshot needs to
        # carry neither. Legacy states (and v1 snapshots) carry a flat
        # fact tuple instead of relation_data; group-and-bulk-load those.
        model_state = state["model"]
        if model_state and isinstance(model_state[0], Atom):
            model = Model()
            model.add_many(model_state)
        else:
            model = Model.from_relation_data(model_state)
        self.model = model
        self._load_support_state(state["supports"])
        # The counter measures work done by *this* engine instance; a
        # restored engine starts from zero (legacy states that carried
        # the counter are ignored for the same determinism reason it
        # left state_dict).
        self._derivations_fired = 0
        self._transient = 0

    def _support_state(self) -> dict:
        """Deep copy of the support structures. Default: support-free."""
        return {}

    def _live_support_state(self) -> dict:
        """The support structures *without* a defensive copy.

        The parallel executor diffs a worker's post-transaction supports
        against the checkpoint it started from; for arena engines the
        copy in :meth:`_support_state` would reset the tables' owned-slot
        sets and destroy the O(changed) delta. Callers must treat the
        returned containers as read-only and drop them before the engine
        mutates again. Default: the plain copy (correct everywhere).
        """
        return self._support_state()

    def _load_support_state(self, state: dict) -> None:
        """Adopt support structures from a :meth:`_support_state` copy."""
        self._reset_supports()

    def checkpoint(self) -> dict:
        """An in-process snapshot for rollback, priced for the hot path.

        Where :meth:`state_dict` flattens the model to sorted columnar
        rows (the deterministic on-disk form), a checkpoint keeps live
        objects: a copy-on-write :meth:`Model.copy` and the engine's
        support state (itself copy-on-write for arena-backed engines).
        Taking one is therefore near O(1); the deep-copy cost moves to
        the writes that actually diverge afterwards. Transactions take a
        checkpoint at ``BEGIN`` and :meth:`restore` it on failure.
        """
        return {
            "engine": self.name,
            "method": self.method,
            "granularity": self.db.granularity,
            "program": self.db.program.clauses,
            "model": self.model.copy(),
            "supports": self._support_state(),
        }

    def restore(self, checkpoint: dict, *, exact_program: bool = True) -> None:
        """Adopt the belief state of a :meth:`checkpoint`.

        The checkpoint stays valid afterwards (the model and support
        containers are re-shared copy-on-write, not moved), so one
        checkpoint can back out any number of failed attempts. Database
        structures are rebuilt only when the program actually changed
        since the checkpoint was taken; when only *facts* differ (the
        shape of every transaction rollback and of the parallel
        executor's worker catch-up), the existing database is adjusted
        with incremental assert/retract instead of a full stratification
        rebuild.

        With ``exact_program=True`` (the default) the adjusted clause
        tuple must reproduce the checkpoint's ordering exactly —
        ``state_dict`` serializes the program in order, so snapshot bytes
        stay deterministic — falling back to a rebuild otherwise.
        Callers that never serialize the program (worker engines) pass
        ``False`` and accept any ordering of the same clause set.
        """
        program = tuple(checkpoint["program"])
        granularity = checkpoint.get("granularity", self.db.granularity)
        if not self._adopt_program(program, granularity, exact_program):
            self.db = StratifiedDatabase(Program(program), granularity)
        self.method = checkpoint.get("method", self.method)
        self._pin_rule_plans()
        self.model = checkpoint["model"].copy()
        self._load_support_state(checkpoint["supports"])
        self._derivations_fired = 0
        self._transient = 0

    def _adopt_program(
        self, program: tuple, granularity, exact: bool
    ) -> bool:
        """Try to reshape ``self.db`` into *program* without a rebuild."""
        current = self.db.program.clauses
        if current == program and self.db.granularity == granularity:
            return True
        if self.db.granularity != granularity:
            return False
        if tuple(c for c in current if c.body) != tuple(
            c for c in program if c.body
        ):
            return False
        old_facts = {c.head for c in current if not c.body}
        new_ordered = [c.head for c in program if not c.body]
        new_facts = set(new_ordered)
        if old_facts == new_facts:
            # Same clause set, different order: only a rebuild can
            # reproduce the checkpoint's ordering.
            return not exact
        for fact in old_facts - new_facts:
            self.db.retract_fact(fact)
        for fact in new_ordered:
            if fact not in old_facts:
                self.db.assert_fact(fact)
        if exact and self.db.program.clauses != program:
            return False
        return True

    # ------------------------------------------------------------------
    # Public update API
    # ------------------------------------------------------------------

    def insert_fact(self, fact: Union[Atom, str]) -> UpdateResult:
        """INSERT(p(t)) — section 4 of the paper."""
        fact = _as_fact(fact)
        begun = self._begin_update()
        with OBS.span("update:insert_fact") as span:
            if span:
                span.set("subject", str(fact))
            if self.db.is_asserted(fact):
                return self._result(
                    "insert_fact", fact, frozenset(), frozenset(), begun,
                    noop=True,
                )
            self.db.assert_fact(fact)
            if fact in self.model:
                # The model is unchanged: asserting an already-derived fact
                # adds a unit clause whose head already holds. Only the
                # support needs to learn about the trivial deduction.
                self._register_assertion(fact)
                return self._result(
                    "insert_fact", fact, frozenset(), frozenset(), begun,
                )
            removed, added = self._apply_insert_fact(fact)
            return self._result("insert_fact", fact, removed, added, begun)

    def delete_fact(self, fact: Union[Atom, str]) -> UpdateResult:
        """DELETE(p(t)) — only asserted facts may be deleted."""
        fact = _as_fact(fact)
        begun = self._begin_update()
        with OBS.span("update:delete_fact") as span:
            if span:
                span.set("subject", str(fact))
            self.db.retract_fact(fact)  # raises when not asserted
            removed, added = self._apply_delete_fact(fact)
            return self._result("delete_fact", fact, removed, added, begun)

    def insert_rule(self, rule: Union[Clause, str]) -> UpdateResult:
        """INSERT(p(X) <- L1 & ... & Lk); must keep the program stratified.

        Hard violations (safety, stratifiability) raise code-tagged,
        position-carrying errors as before; the softer static findings for
        the admitted clause (singleton variables, cross-product joins,
        undefined references) ride along on ``UpdateResult.warnings``.
        """
        rule = _as_rule(rule)
        begun = self._begin_update()
        with OBS.span("update:insert_rule") as span:
            if span:
                span.set("subject", str(rule))
            self.db.add_rule(rule)  # checks stratification, raises on dupes
            self.planner.invalidate(rule)
            self.planner.pin(rule)
            removed, added = self._apply_insert_rule(rule)
            return self._result(
                "insert_rule", rule, removed, added, begun,
                warnings=self._rule_warnings(rule),
            )

    def delete_rule(self, rule: Union[Clause, str]) -> UpdateResult:
        """DELETE(p(X) <- L1 & ... & Lk)."""
        rule = _as_rule(rule)
        begun = self._begin_update()
        with OBS.span("update:delete_rule") as span:
            if span:
                span.set("subject", str(rule))
            self.db.remove_rule(rule)  # raises when absent
            self.planner.invalidate(rule)
            removed, added = self._apply_delete_rule(rule)
            return self._result("delete_rule", rule, removed, added, begun)

    def apply(self, operation: str, subject: Source) -> UpdateResult:
        """Dispatch by operation name; used by the update-sequence harness."""
        handler = {
            "insert_fact": self.insert_fact,
            "delete_fact": self.delete_fact,
            "insert_rule": self.insert_rule,
            "delete_rule": self.delete_rule,
        }.get(operation)
        if handler is None:
            raise ValueError(f"unknown operation {operation!r}")
        return handler(subject)

    def apply_batch(self, updates) -> UpdateResult:
        """Apply several updates as one maintenance task.

        The paper frames maintenance as "processing supplementary
        information"; a batch is simply a larger piece of it. The generic
        implementation replays the updates one by one and aggregates the
        accounting; engines may override it with a single-pass treatment
        (the cascade engine seeds INC/DEC with the whole batch, so a fact
        removed and re-added by *different* updates of the batch never
        churns at all).
        """
        updates = list(updates)
        begun = self._begin_update()
        with OBS.span("update:batch") as span:
            if span:
                span.set("updates", len(updates))
            removed: set[Atom] = set()
            added: set[Atom] = set()
            transient = 0
            for operation, subject in updates:
                result = self.apply(operation, subject)
                removed |= result.removed
                added |= result.added
                transient += result.stats.get("transient", 0)
            self._transient = transient
            return self._result(
                "batch", f"{len(updates)} updates", removed, added, begun,
            )

    # ------------------------------------------------------------------
    # Hooks implemented by each solution
    # ------------------------------------------------------------------

    @abstractmethod
    def _apply_insert_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        """Removal + addition phases; returns (removed, added)."""

    @abstractmethod
    def _apply_delete_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        ...

    @abstractmethod
    def _apply_insert_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        ...

    @abstractmethod
    def _apply_delete_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        ...

    def _register_assertion(self, fact: Atom) -> None:
        """Attach the trivial support to an already-derived, now-asserted fact."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def support_entry_count(self) -> int:
        """Total size of the bookkeeping (0 for support-free solutions)."""
        return 0

    def check(self, ignore: tuple = ()):
        """Static diagnostics for the maintained program.

        Delegates to :meth:`StratifiedDatabase.analyze`; see
        :mod:`repro.analysis` for the code registry.
        """
        return self.db.analyze(ignore=ignore)

    def _rule_warnings(self, rule: Clause) -> tuple:
        """Clause-local analyzer findings for a just-admitted rule."""
        from ..analysis import check_clause  # lazy: analysis sits above core

        return tuple(check_clause(rule, self.db.program.clauses))

    def oracle_model(self) -> Model:
        """The standard model recomputed from scratch (for verification)."""
        return self.db.compute_model(self.method)

    def is_consistent(self) -> bool:
        """True when the maintained model equals the recomputed one."""
        return self.model == self.oracle_model()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resaturate_from(self, index: int, listener=None) -> set[Atom]:
        """Step (3) of the section 4.1 procedures: M'_j = SAT(P_j, M).

        Recomputes the saturation of every stratum from *index* up over the
        current model. Returns the union of the added facts.
        """
        added: set[Atom] = set()
        strata = self.db.stratification.strata
        with OBS.span("phase:addition") as phase:
            for number, stratum in enumerate(strata[index - 1 :], start=index):
                with OBS.span("stratum") as span:
                    if span:
                        span.set("index", number)
                    new = saturate(
                        stratum.clauses, self.model, listener, self.method,
                        planner=self.planner,
                    )
                    if span:
                        span.set("added", len(new))
                    added |= new
            if phase:
                phase.set("added", len(added))
        return added

    def _begin_update(self) -> tuple:
        """Capture the counters an update's accounting is measured against."""
        self._transient = 0
        planner = self.planner
        return (
            time.perf_counter(),
            self._derivations_fired,
            planner.cache_hits,
            planner.cache_misses,
        )

    def _result(
        self,
        operation: str,
        subject,
        removed: Iterable[Atom],
        added: Iterable[Atom],
        begun: tuple,
        noop: bool = False,
        warnings: tuple = (),
    ) -> UpdateResult:
        started, fired_before, hits_before, misses_before = begun
        result = UpdateResult(
            operation=operation,
            subject=str(subject),
            removed=frozenset(removed),
            added=frozenset(added),
            model_size=len(self.model),
            duration_s=time.perf_counter() - started,
            support_entries=self.support_entry_count(),
            warnings=warnings,
            stats={
                "derivations_fired": self._derivations_fired - fired_before,
                "transient": self._transient,
                "noop": noop,
                "plan_cache_hits": self.planner.cache_hits - hits_before,
                "plan_cache_misses": self.planner.cache_misses - misses_before,
            },
        )
        self.totals.record(result)
        if OBS.enabled:
            self._record_metrics(result)
            span = OBS.tracer.current
            if span is not None:
                span.set("removed", len(result.removed))
                span.set("added", len(result.added))
                span.set("migrated", len(result.migrated))
                span.set(
                    "derivations_fired", result.stats["derivations_fired"]
                )
        return result

    def _record_metrics(self, result: UpdateResult) -> None:
        metrics = OBS.metrics
        metrics.counter(
            "repro_updates_total", "Maintenance operations applied",
            engine=self.name, operation=result.operation,
        ).inc()
        metrics.counter(
            "repro_facts_removed_total",
            "Facts evicted by removal phases", engine=self.name,
        ).inc(len(result.removed))
        metrics.counter(
            "repro_facts_added_total",
            "Facts introduced by addition phases", engine=self.name,
        ).inc(len(result.added))
        metrics.counter(
            "repro_facts_migrated_total",
            "Facts erroneously removed then re-added", engine=self.name,
        ).inc(len(result.migrated))
        metrics.counter(
            "repro_derivations_fired_total",
            "Rule firings during maintenance", engine=self.name,
        ).inc(result.stats["derivations_fired"])
        metrics.counter(
            "repro_transient_facts_total",
            "Facts added and evicted within one update", engine=self.name,
        ).inc(result.stats["transient"])
        metrics.histogram(
            "repro_update_seconds", "Wall time per maintenance operation",
            engine=self.name, operation=result.operation,
        ).observe(result.duration_s)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self.model)} facts)"
