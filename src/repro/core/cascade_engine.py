"""Section 5.1 — the cascade solution with one-level rule-pointer supports.

Instead of a single removal phase followed by a single addition phase, the
removal and addition phases alternate stratum by stratum, driving two sets
through the strata: INC (relations incremented so far) and DEC (relations
decremented so far). "Insertions inside N_i can lead to deletions and
insertions inside N_{i+1} which in turn can lead to deletions and insertions
inside N_{i+2}, etc." — the cascade effect.

Maintaining INC/DEC lets the supports be *one level deep*: each fact simply
carries "the set of pointers pointing to the rules which triggered this fact"
(:class:`~repro.core.supports.RuleRecord`); the Pos/Neg elements are the
rules' body relations, with no signed entries and no static information.
Because every fact produced by one delta of one rule gets the same support
update, this is the only support form compatible with the delta-driven
(semi-naive) mechanism — the paper's implementation argument for preferring
this solution.

Two stratum-processing orders are provided (DESIGN.md, faithfulness note 2):

* ``order="saturate_first"`` (default) — saturate with the increments from
  lower strata *before* running REMOVENEG, so that a freshly enabled
  deduction can save a fact whose old deduction just failed. This realises
  the paper's prose claim that on ``{r :- p., q :- r., q :- not p.}`` the
  insertion of ``p`` does not remove ``q`` at all.
* ``order="paper"`` — the printed pseudocode (REMOVEPOS; REMOVENEG;
  SATURATE), under which ``q`` is removed by REMOVENEG and re-added by
  SATURATE (one migration).

Both orders run REMOVEPOS to an intra-stratum fixpoint (faithfulness note 3)
and propagate only the *net* per-stratum change into INC/DEC, which is what
keeps a removal-then-readdition from disturbing higher strata.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..datalog.atoms import Atom
from ..datalog.clauses import Clause
from ..datalog.evaluation import Derivation, semi_naive_saturate
from ..datalog.stratify import Stratum
from ..obs import OBS
from .arena import ASSERTION, Arena, ArenaRuleRecords, SupportTable
from .base import MaintenanceEngine, _as_fact, _as_rule
from .supports import RuleRecord


class CascadeEngine(MaintenanceEngine):
    """The cascade solution of section 5.1.

    With ``arena=True`` (the default) the rule-pointer supports live as
    record slots in a :class:`~repro.core.arena.Arena` — one interned
    record per clause, fact → {slot} in a copy-on-write table — and the
    REMOVEPOS/REMOVENEG sweeps intersect the records' pre-extracted body
    relation-name sets straight out of the arena columns. ``arena=False``
    keeps the per-object :class:`~repro.core.supports.RuleRecord` path as
    the differential baseline.
    """

    name = "cascade"

    def __init__(
        self,
        program,
        *,
        order: str = "saturate_first",
        skip_strata: bool = True,
        **kwargs,
    ):
        if order not in ("saturate_first", "paper"):
            raise ValueError(
                f"unknown order {order!r}; use 'saturate_first' or 'paper'"
            )
        self.order = order
        self.skip_strata = skip_strata
        self._records: dict[Atom, set[RuleRecord]] = {}
        self._record_cache: dict[Clause, RuleRecord] = {}
        self._arena = Arena()
        self._table = SupportTable()
        # clause → record slot. Engine-level (NOT a plan support template):
        # plan objects are pinned in the planner and outlive arena
        # replacements, so a slot cached on a plan would dangle after a
        # rebuild or state load. This cache is cleared whenever the arena
        # is replaced.
        self._slot_cache: dict[Clause, int] = {}
        self._cluster_cache: dict[int, dict[str, frozenset[str]]] = {}
        self._cluster_cache_owner: object = None
        super().__init__(program, **kwargs)

    # ------------------------------------------------------------------
    # Rule-pointer supports
    # ------------------------------------------------------------------

    def _reset_supports(self) -> None:
        self._records.clear()
        self._record_cache.clear()
        self._arena = Arena()
        self._table = SupportTable()
        self._slot_cache.clear()

    def _record_for(self, clause: Clause) -> RuleRecord:
        record = self._record_cache.get(clause)
        if record is None:
            record = (
                RuleRecord.assertion()
                if not clause.body
                else RuleRecord.of_rule(clause)
            )
            self._record_cache[clause] = record
        return record

    def _slot_for(self, clause: Clause) -> int:
        """The arena record slot of *clause* (one dict probe when hot)."""
        slot = self._slot_cache.get(clause)
        if slot is None:
            slot = self._arena.intern_rule_record(
                clause if clause.body else None
            )
            self._slot_cache[clause] = slot
        return slot

    def _build_listener(self):
        if self.arena:
            table = self._table
            intern_atom = self._arena.intern_atom
            slot_for = self._slot_for

            def listener(derivation: Derivation, is_new: bool, plan) -> None:
                self._derivations_fired += 1
                table.add(
                    intern_atom(derivation.head), slot_for(derivation.clause)
                )

            return listener

        def listener(derivation: Derivation, is_new: bool, plan) -> None:
            self._derivations_fired += 1
            # The rule-pointer record is a pure function of the clause:
            # the plan carries it as a support template, so the hot path
            # is one attribute-dict probe instead of hashing the clause.
            self._records.setdefault(derivation.head, set()).add(
                plan.support_template("rule_record", self._record_for)
            )

        return listener

    def _register_assertion(self, fact: Atom) -> None:
        if self.arena:
            self._table.add(self._arena.intern_atom(fact), ASSERTION)
        else:
            self._records.setdefault(fact, set()).add(RuleRecord.assertion())

    def records_of(self, fact: Atom) -> set[RuleRecord]:
        if self.arena:
            slot = self._arena.atom_id(fact)
            records = None if slot is None else self._table.get(slot)
            if records is None:
                raise KeyError(fact)
            decode = self._arena.decode_rule_record
            return {decode(record) for record in records}
        return self._records[fact]

    def support_entry_count(self) -> int:
        if self.arena:
            return sum(len(records) for records in self._table.values())
        return sum(len(records) for records in self._records.values())

    def _support_state(self) -> dict:
        if self.arena:
            return {
                "records": ArenaRuleRecords(self._arena, self._table.copy())
            }
        return {
            "records": {
                fact: set(records) for fact, records in self._records.items()
            }
        }

    def _live_support_state(self) -> dict:
        if self.arena:
            # Uncopied live table: preserves _owned for O(changed) diffs.
            return {"records": ArenaRuleRecords(self._arena, self._table)}
        return self._support_state()

    def _load_support_state(self, state: dict) -> None:
        self._reset_supports()
        self._cluster_cache.clear()
        self._cluster_cache_owner = None
        records = state["records"]
        if self.arena:
            if not isinstance(records, ArenaRuleRecords):
                records = ArenaRuleRecords.from_records(records)
            self._arena = records.arena
            self._table = records.table.copy()
        else:
            if isinstance(records, ArenaRuleRecords):
                records = records.to_record_state()
            self._records = {
                fact: set(entries) for fact, entries in records.items()
            }

    # ------------------------------------------------------------------
    # The three procedures of section 5.1
    # ------------------------------------------------------------------

    def _evict(self, fact: Atom) -> None:
        self.model.discard(fact)
        if self.arena:
            slot = self._arena.atom_id(fact)
            if slot is not None:
                self._table.pop(slot)
        else:
            self._records.pop(fact, None)

    def _stratum_facts(self, stratum: Stratum) -> list[Atom]:
        return [
            fact
            for relation in stratum.relations
            for fact in self.model.facts_of(relation)
        ]

    def _recursive_clusters(self, stratum: Stratum) -> dict[str, frozenset[str]]:
        """Map each relation on a positive intra-stratum cycle to its SCC,
        cached per stratification (rule updates replace the stratification
        object, which invalidates the cache).

        One-level rule-pointer supports are not well-founded across such
        cycles: a cluster of mutually recursive facts can survive the death
        of its only external support (each fact still holds the recursive
        record). Whenever a record is killed inside a recursive cluster the
        engine evicts the whole cluster and re-saturates it from below —
        the relation-level "pessimistic view" the paper applies elsewhere.
        (The section 4 solutions are immune: their supports are transitive.)
        """
        stratification = self.db.stratification
        if self._cluster_cache_owner is not stratification:
            self._cluster_cache.clear()
            self._cluster_cache_owner = stratification
        cached = self._cluster_cache.get(stratum.index)
        if cached is not None:
            return cached
        local = stratum.relations
        successors: dict[str, set[str]] = {name: set() for name in local}
        for clause in stratum.clauses:
            head = clause.head.relation
            for lit in clause.positive_body:
                if lit.relation in local:
                    successors[head].add(lit.relation)
        reach: dict[str, set[str]] = {}
        for name in local:
            seen: set[str] = set()
            frontier = list(successors[name])
            while frontier:
                node = frontier.pop()
                if node in seen:
                    continue
                seen.add(node)
                frontier.extend(successors[node])
            reach[name] = seen
        clusters: dict[str, frozenset[str]] = {}
        for name in local:
            if name in clusters or name not in reach[name]:
                continue
            component = frozenset(
                other
                for other in reach[name] | {name}
                if other == name or name in reach[other]
            )
            for member in component:
                clusters[member] = component
        self._cluster_cache[stratum.index] = clusters
        return clusters

    def _removepos(
        self,
        stratum: Stratum,
        driving: set[str],
        killed_relations: set[str] | None = None,
    ) -> set[Atom]:
        """REMOVEPOS(Stratum, B, C): kill records whose positive body
        intersects the decreased relations; evict facts left without
        records. Iterates to a fixpoint so intra-stratum positive chains
        cascade (locally evicted relations join the driving set).
        *killed_relations* collects the relations of facts that lost any
        record (the recursive-cluster guard needs them)."""
        driving = set(driving)
        evicted: set[Atom] = set()
        if not driving:
            return evicted
        with OBS.span("phase:removepos") as span:
            if self.arena:
                arena = self._arena
                atom_id = arena.atom_id
                table = self._table
                body_pos = arena.rule_record_pos
                changed = True
                while changed:
                    changed = False
                    for fact in self._stratum_facts(stratum):
                        slot = atom_id(fact)
                        records = None if slot is None else table.get(slot)
                        if records is None:
                            continue
                        dead = {
                            record
                            for record in records
                            if body_pos[record] & driving
                        }
                        if not dead:
                            continue
                        if killed_relations is not None:
                            killed_relations.add(fact.relation)
                        if dead == records:
                            self._evict(fact)
                            evicted.add(fact)
                            driving.add(fact.relation)
                            changed = True
                        else:
                            table.discard_many(slot, dead)
            else:
                changed = True
                while changed:
                    changed = False
                    for fact in self._stratum_facts(stratum):
                        records = self._records.get(fact)
                        if records is None:
                            continue
                        dead = {
                            record
                            for record in records
                            if record.positive_relations & driving
                        }
                        if not dead:
                            continue
                        records -= dead
                        if killed_relations is not None:
                            killed_relations.add(fact.relation)
                        if not records:
                            self._evict(fact)
                            evicted.add(fact)
                            driving.add(fact.relation)
                            changed = True
            if span:
                span.set("evicted", len(evicted))
        return evicted

    def _removeneg(
        self,
        stratum: Stratum,
        increased: set[str],
        fresh: frozenset = frozenset(),
        killed_relations: set[str] | None = None,
    ) -> set[Atom]:
        """REMOVENEG(Stratum, B, C): kill records whose negated relations
        intersect the increased ones. One pass suffices: negated relations
        live strictly below the stratum, so evictions here cannot trigger
        further REMOVENEG work in the same stratum — but they can trigger
        positive cascades, which the caller hands back to REMOVEPOS.

        *fresh* (saturate-first order only) lists the (fact, record) pairs
        re-validated by this update's own saturation of the stratum —
        ``(Atom, RuleRecord)`` pairs in record mode, ``(atom slot, record
        slot)`` int pairs in arena mode; their negation tests already ran
        against the final lower strata, so they are sound to keep.
        """
        evicted: set[Atom] = set()
        if not increased:
            return evicted
        with OBS.span("phase:removeneg") as span:
            if self.arena:
                arena = self._arena
                atom_id = arena.atom_id
                table = self._table
                body_neg = arena.rule_record_neg
                for fact in self._stratum_facts(stratum):
                    slot = atom_id(fact)
                    records = None if slot is None else table.get(slot)
                    if records is None:
                        continue
                    dead = {
                        record
                        for record in records
                        if body_neg[record] & increased
                        and (slot, record) not in fresh
                    }
                    if not dead:
                        continue
                    if killed_relations is not None:
                        killed_relations.add(fact.relation)
                    if dead == records:
                        self._evict(fact)
                        evicted.add(fact)
                    else:
                        table.discard_many(slot, dead)
            else:
                for fact in self._stratum_facts(stratum):
                    records = self._records.get(fact)
                    if records is None:
                        continue
                    dead = {
                        record
                        for record in records
                        if record.negated_relations & increased
                        and (fact, record) not in fresh
                    }
                    if not dead:
                        continue
                    records -= dead
                    if killed_relations is not None:
                        killed_relations.add(fact.relation)
                    if not records:
                        self._evict(fact)
                        evicted.add(fact)
            if span:
                span.set("evicted", len(evicted))
        return evicted

    def _rebuild_recursive_clusters(
        self, stratum: Stratum, killed: set[str], already_evicted: set[Atom]
    ) -> set[Atom]:
        """Evict every recursive cluster touched by a kill or eviction.

        See :meth:`_recursive_clusters`. The subsequent SATURATE re-derives
        the cluster from below (its rules are full-fired through the evicted
        relations), so survivors come back — as migration, the price of
        relation-level one-level supports under recursion.
        """
        if not killed and not already_evicted:
            return set()
        clusters = self._recursive_clusters(stratum)
        if not clusters:
            return set()
        pending: set[str] = set()
        for relation in killed | {fact.relation for fact in already_evicted}:
            component = clusters.get(relation)
            if component:
                pending |= component
        evicted: set[Atom] = set()
        processed: set[str] = set()
        while pending - processed:
            batch = pending - processed
            processed |= batch
            newly: set[Atom] = set()
            for relation in batch:
                for fact in list(self.model.facts_of(relation)):
                    self._evict(fact)
                    newly.add(fact)
            evicted |= newly
            # Evictions can strip records of same-stratum consumers, which
            # may touch further clusters.
            more_killed: set[str] = set()
            more = self._removepos(
                stratum, {fact.relation for fact in newly}, more_killed
            )
            evicted |= more
            for relation in more_killed | {fact.relation for fact in more}:
                component = clusters.get(relation)
                if component:
                    pending |= component
        return evicted

    def _saturate(
        self,
        stratum: Stratum,
        inc: Mapping[str, set[tuple]],
        dec_names: set[str],
        extra_full_heads: set[str],
        seed_rules: Iterable[Clause] = (),
        journal: set | None = None,
    ) -> set[Atom]:
        """SATURATE(Stratum, B): delta-driven closure of one stratum.

        Helpful rules are those with a positive hypothesis in INC (joined
        against the increment) plus the full-fired ones: rules whose negated
        hypothesis lost tuples (a decrease can enable new instances), rules
        whose head relation just lost facts (to re-derive survivors), and
        freshly inserted rules. *journal*, when given, collects the
        (fact, record) pairs this saturation validated.
        """
        seed_rules = set(seed_rules)
        full_fire = {
            clause
            for clause in stratum.clauses
            if clause in seed_rules
            or clause.head.relation in extra_full_heads
            or any(
                lit.relation in dec_names for lit in clause.negative_body
            )
        }
        delta = {name: rows for name, rows in inc.items() if rows}
        base_listener = self._build_listener()
        if journal is None:
            listener = base_listener
        elif self.arena:
            intern_atom = self._arena.intern_atom
            slot_for = self._slot_for

            def listener(derivation: Derivation, is_new: bool, plan) -> None:
                base_listener(derivation, is_new, plan)
                journal.add(
                    (intern_atom(derivation.head),
                     slot_for(derivation.clause))
                )
        else:

            def listener(derivation: Derivation, is_new: bool, plan) -> None:
                base_listener(derivation, is_new, plan)
                journal.add(
                    (derivation.head, self._record_for(derivation.clause))
                )

        with OBS.span("phase:saturate") as span:
            added = semi_naive_saturate(
                stratum.clauses,
                self.model,
                listener,
                planner=self.planner,
                initial_full=False,
                delta=delta,
                full_fire=full_fire,
            )
            if span:
                span.set("added", len(added))
                span.set("full_fire", len(full_fire))
        return added

    # ------------------------------------------------------------------
    # The cascade loop
    # ------------------------------------------------------------------

    def _stratum_is_unaffected(
        self, stratum: Stratum, active: set[str]
    ) -> bool:
        """The skip-strata improvement: "one can skip the strata in which
        no relation depends from the set DEC ∪ INC"."""
        for clause in stratum.clauses:
            for lit in clause.body:
                if lit.relation in active:
                    return False
        return True

    def _run_cascade(
        self,
        start: int,
        inc: dict[str, set[tuple]],
        dec: dict[str, set[tuple]],
        seed_rules: Iterable[Clause] = (),
        seed_evicted: frozenset[str] = frozenset(),
        seed_killed: frozenset[str] = frozenset(),
    ) -> tuple[set[Atom], set[Atom]]:
        """Process strata ``start..n``, alternating removals and additions.

        *inc*/*dec* arrive seeded with the net effect of the update below
        *start* (the inserted/deleted fact, or empty for rule updates) and
        accumulate the net per-stratum changes on the way up.
        *seed_evicted* names relations whose facts were evicted before the
        cascade started (fact/rule deletion); their rules are re-fired at
        the seed stratum so survivors with conservatively pruned supports
        are re-derived. *seed_killed* names relations where records were
        killed before the cascade started — the recursive-cluster guard
        must see those kills, or a cluster left with only its circular
        records would survive its external support.
        """
        removed_all: set[Atom] = set()
        added_all: set[Atom] = set()
        seed_rules = tuple(seed_rules)
        # The seeds were already applied to the model by the caller; keep a
        # copy so each stratum can reconstruct its pre-update content (a
        # batch may seed relations across several strata).
        seed_inc = {relation: set(rows) for relation, rows in inc.items()}
        seed_dec = {relation: set(rows) for relation, rows in dec.items()}
        strata = self.db.stratification.strata
        for stratum in strata[start - 1 :]:
            # Seeds activate at the stratum that defines them (a batch can
            # seed several strata at once).
            rules = tuple(
                rule
                for rule in seed_rules
                if self.db.stratum_of(rule.head.relation) == stratum.index
            )
            refire_heads = set(seed_evicted) & set(stratum.relations)
            pre_killed = set(seed_killed) & set(stratum.relations)
            inc_names = {name for name, rows in inc.items() if rows}
            dec_names = {name for name, rows in dec.items() if rows}
            if (
                self.skip_strata
                and not rules
                and not refire_heads
                and not pre_killed
                and self._stratum_is_unaffected(stratum, inc_names | dec_names)
            ):
                continue
            with OBS.span("stratum") as stratum_span:
                if stratum_span:
                    stratum_span.set("index", stratum.index)
                snapshot = {
                    relation: set(self.model.relation(relation).tuples)
                    for relation in stratum.relations
                }
                # Reconstruct the pre-update content so the net diff below
                # cancels a fact that leaves and returns within its stratum.
                for relation in stratum.relations:
                    snapshot[relation] -= seed_inc.get(relation, set())
                    snapshot[relation] |= seed_dec.get(relation, set())
                killed: set[str] = set(pre_killed)
                if self.order == "saturate_first":
                    journal: set = set()
                    self._saturate(
                        stratum, inc, dec_names, refire_heads, rules, journal
                    )
                    evicted = self._removepos(stratum, dec_names, killed)
                    neg_evicted = self._removeneg(
                        stratum, inc_names, frozenset(journal), killed
                    )
                    if neg_evicted:
                        evicted |= neg_evicted
                        evicted |= self._removepos(
                            stratum,
                            {fact.relation for fact in neg_evicted},
                            killed,
                        )
                    evicted |= self._rebuild_recursive_clusters(
                        stratum, killed, evicted
                    )
                    if evicted:
                        self._saturate(
                            stratum,
                            {},
                            set(),
                            {fact.relation for fact in evicted},
                        )
                else:  # printed pseudocode: REMOVEPOS; REMOVENEG; SATURATE
                    evicted = self._removepos(stratum, dec_names, killed)
                    neg_evicted = self._removeneg(
                        stratum, inc_names, killed_relations=killed
                    )
                    if neg_evicted:
                        evicted |= neg_evicted
                        evicted |= self._removepos(
                            stratum,
                            {fact.relation for fact in neg_evicted},
                            killed,
                        )
                    evicted |= self._rebuild_recursive_clusters(
                        stratum, killed, evicted
                    )
                    self._saturate(
                        stratum,
                        inc,
                        dec_names,
                        {fact.relation for fact in evicted} | refire_heads,
                        rules,
                    )
                # Account against the pre-update content: an eviction counts
                # as removal only for a pre-existing fact (anything else was
                # churn within this update), and a migrated fact is a
                # pre-existing eviction that is present again now.
                for fact in evicted:
                    if fact.args in snapshot.get(fact.relation, ()):
                        removed_all.add(fact)
                        if fact in self.model:
                            added_all.add(fact)
                    else:
                        self._transient += 1
                # Net per-stratum change drives the higher strata; a fact
                # that migrated inside this stratum is invisible above it.
                # Each relation belongs to exactly one stratum, so replacing
                # its inc/dec entries with the net diff is safe.
                stratum_gained = 0
                for relation in stratum.relations:
                    now = set(self.model.relation(relation).tuples)
                    before = snapshot[relation]
                    gained = now - before
                    inc[relation] = gained
                    dec[relation] = before - now
                    stratum_gained += len(gained)
                    added_all.update(Atom(relation, row) for row in gained)
                if stratum_span:
                    stratum_span.set("evicted", len(evicted))
                    stratum_span.set("gained", stratum_gained)
        return removed_all, added_all

    # ------------------------------------------------------------------
    # Update procedures
    # ------------------------------------------------------------------

    def apply_batch(self, updates) -> "UpdateResult":
        """One cascade pass for a whole batch of updates.

        All program-level changes are admitted first (each checked exactly
        as in the single-update operations), the *net* assertion and rule
        changes seed one INC/DEC pair, and the strata are walked once. A
        fact deleted and re-inserted by different updates of the batch is
        net-unchanged and causes no work at all.
        """
        updates = list(updates)
        begun = self._begin_update()
        with OBS.span("update:batch") as span:
            if span:
                span.set("updates", len(updates))
            return self._apply_batch_body(updates, begun)

    def _apply_batch_body(self, updates, begun) -> "UpdateResult":
        before_facts = set(self.db.program.facts)
        before_rules = set(self.db.program.rules)
        for operation, subject in updates:
            if operation == "insert_fact":
                fact = _as_fact(subject)
                if not self.db.is_asserted(fact):
                    self.db.assert_fact(fact)
            elif operation == "delete_fact":
                self.db.retract_fact(_as_fact(subject))
            elif operation == "insert_rule":
                self.db.add_rule(_as_rule(subject))
            elif operation == "delete_rule":
                self.db.remove_rule(_as_rule(subject))
            else:
                raise ValueError(f"unknown operation {operation!r}")
        net_new_facts = set(self.db.program.facts) - before_facts
        net_gone_facts = before_facts - set(self.db.program.facts)
        net_new_rules = set(self.db.program.rules) - before_rules
        net_gone_rules = before_rules - set(self.db.program.rules)

        inc: dict[str, set[tuple]] = {}
        dec: dict[str, set[tuple]] = {}
        removed: set[Atom] = set()
        seed_evicted: set[str] = set()
        seed_killed: set[str] = set()
        # Seed the whole net insertion set through the bulk path: one
        # batched model mutation per relation instead of per-fact
        # index/statistics maintenance (experiment E18).
        fresh = [fact for fact in net_new_facts if fact not in self.model]
        for fact in net_new_facts:
            if fact in self.model:
                self._register_assertion(fact)
        self.model.add_many(fresh)
        if self.arena:
            arena = self._arena
            table = self._table
            for fact in fresh:
                table.replace(arena.intern_atom(fact), {ASSERTION})
                inc.setdefault(fact.relation, set()).add(fact.args)
            for rule in net_gone_rules:
                target = arena.rule_record_id(rule)
                if target is None:  # never fired: no records point at it
                    continue
                for fact in list(self.model.facts_of(rule.head.relation)):
                    slot = arena.atom_id(fact)
                    records = None if slot is None else table.get(slot)
                    if records and target in records:
                        table.discard(slot, target)
                        seed_killed.add(fact.relation)
                        if not table.get(slot):
                            self._evict(fact)
                            removed.add(fact)
                            dec.setdefault(fact.relation, set()).add(
                                fact.args
                            )
                            seed_evicted.add(fact.relation)
            for fact in net_gone_facts:
                slot = arena.atom_id(fact)
                records = None if slot is None else table.get(slot)
                if records is None:
                    continue
                table.discard(slot, ASSERTION)
                seed_killed.add(fact.relation)
                if not table.get(slot):
                    self._evict(fact)
                    removed.add(fact)
                    dec.setdefault(fact.relation, set()).add(fact.args)
                    seed_evicted.add(fact.relation)
        else:
            assertion = RuleRecord.assertion()
            for fact in fresh:
                self._records[fact] = {assertion}
                inc.setdefault(fact.relation, set()).add(fact.args)
            for rule in net_gone_rules:
                target = self._record_for(rule)
                for fact in list(self.model.facts_of(rule.head.relation)):
                    records = self._records.get(fact)
                    if records and target in records:
                        records.discard(target)
                        seed_killed.add(fact.relation)
                        if not records:
                            self._evict(fact)
                            removed.add(fact)
                            dec.setdefault(fact.relation, set()).add(
                                fact.args
                            )
                            seed_evicted.add(fact.relation)
            for fact in net_gone_facts:
                records = self._records.get(fact)
                if records is None:
                    continue
                records.discard(assertion)
                seed_killed.add(fact.relation)
                if not records:
                    self._evict(fact)
                    removed.add(fact)
                    dec.setdefault(fact.relation, set()).add(fact.args)
                    seed_evicted.add(fact.relation)

        affected = (
            {relation for relation, rows in inc.items() if rows}
            | {relation for relation, rows in dec.items() if rows}
            | {rule.head.relation for rule in net_new_rules}
            | seed_evicted
            | seed_killed
        )
        if affected or net_new_rules:
            start = min(
                (self.db.stratum_of(relation) for relation in affected),
                default=1,
            )
            if net_new_rules:
                start = min(
                    [start]
                    + [
                        self.db.stratum_of(rule.head.relation)
                        for rule in net_new_rules
                    ]
                )
            cascade_removed, cascade_added = self._run_cascade(
                start,
                inc,
                dec,
                seed_rules=tuple(net_new_rules),
                seed_evicted=frozenset(seed_evicted),
                seed_killed=frozenset(seed_killed),
            )
        else:
            cascade_removed, cascade_added = set(), set()
        added = cascade_added | {
            fact for fact in net_new_facts if fact in self.model
        }
        added |= {fact for fact in removed if fact in self.model}
        return self._result(
            "batch",
            f"{len(updates)} updates",
            removed | cascade_removed,
            added,
            begun,
        )

    def _apply_insert_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        self.model.add(fact)
        if self.arena:
            self._table.replace(self._arena.intern_atom(fact), {ASSERTION})
        else:
            self._records[fact] = {RuleRecord.assertion()}
        inc = {fact.relation: {fact.args}}
        removed, added = self._run_cascade(
            self.db.stratum_of(fact.relation), inc, {}
        )
        return removed, added | {fact}

    def _apply_delete_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        if self.arena:
            slot = self._arena.atom_id(fact)
            records = None if slot is None else self._table.get(slot)
            had_assertion = bool(records) and ASSERTION in records
            if had_assertion:
                self._table.discard(slot, ASSERTION)
            survivors = bool(self._table.get(slot)) if slot is not None else False
        else:
            records = self._records.get(fact, set())
            had_assertion = RuleRecord.assertion() in records
            records.discard(RuleRecord.assertion())
            survivors = bool(records)
        if survivors:
            # Other deductions keep the fact alive — unless its relation
            # sits on a recursive cluster, where the surviving records may
            # be the cluster's own circular ones: the assertion we just
            # dropped could have been the external support.
            stratum_index = self.db.stratum_of(fact.relation)
            stratum = self.db.stratification.strata[stratum_index - 1]
            if had_assertion and fact.relation in self._recursive_clusters(
                stratum
            ):
                return self._run_cascade(
                    stratum_index,
                    {},
                    {},
                    seed_killed=frozenset({fact.relation}),
                )
            # Not recursive: the model is provably unchanged, nothing
            # cascades. (The removal-phase solutions of section 4 would
            # have evicted and re-derived the fact here.)
            return set(), set()
        self._evict(fact)
        dec = {fact.relation: {fact.args}}
        removed, added = self._run_cascade(
            self.db.stratum_of(fact.relation),
            {},
            dec,
            seed_evicted=frozenset({fact.relation}),
        )
        if fact in self.model:  # re-derived by a rule: the fact migrated
            added.add(fact)
        return removed | {fact}, added

    def _apply_insert_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        # "We add it to the stratum Pi which contains the definition of the
        # relation p and perform directly step (b) of the above algorithm."
        return self._run_cascade(
            self.db.stratum_of(rule.head.relation), {}, {}, seed_rules=(rule,)
        )

    def _apply_delete_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        # Rule pointers make deletion direct: kill exactly the records that
        # point at the deleted rule.
        head = rule.head.relation
        dec: dict[str, set[tuple]] = {}
        evicted: set[Atom] = set()
        if self.arena:
            arena = self._arena
            table = self._table
            target_slot = arena.rule_record_id(rule)
            if target_slot is not None:
                for fact in list(self.model.facts_of(head)):
                    slot = arena.atom_id(fact)
                    records = None if slot is None else table.get(slot)
                    if records is None or target_slot not in records:
                        continue
                    table.discard(slot, target_slot)
                    if not table.get(slot):
                        self._evict(fact)
                        evicted.add(fact)
                        dec.setdefault(head, set()).add(fact.args)
        else:
            target = self._record_cache.get(rule, RuleRecord.of_rule(rule))
            for fact in list(self.model.facts_of(head)):
                records = self._records.get(fact)
                if records is None or target not in records:
                    continue
                records.discard(target)
                if not records:
                    self._evict(fact)
                    evicted.add(fact)
                    dec.setdefault(head, set()).add(fact.args)
        removed, added = self._run_cascade(
            self.db.stratum_of(head),
            {},
            dec,
            seed_evicted=frozenset({head}) if evicted else frozenset(),
            seed_killed=frozenset({head}),
        )
        added.update(fact for fact in evicted if fact in self.model)
        return removed | evicted, added
