"""The paper's contribution: maintenance of the standard model under updates.

One engine per solution of sections 4 and 5, plus the full-recomputation
oracle. All engines implement the same four-operation interface
(:class:`~repro.core.base.MaintenanceEngine`).
"""

from .base import MaintenanceEngine
from .cascade_engine import CascadeEngine
from .dynamic_engine import DynamicEngine
from .explain import (
    AbsenceReason,
    Explanation,
    ExplanationError,
    explain,
    explain_absence,
)
from .factlevel_engine import FactLevelEngine
from .metrics import MaintenanceStats, UpdateResult
from .recompute import RecomputeEngine
from .registry import (
    ENGINE_NAMES,
    PAPER_SOLUTION_NAMES,
    SOUND_ENGINE_NAMES,
    create_engine,
    engine_from_state,
)
from .setofsets_engine import SetOfSetsEngine
from .static_engine import StaticEngine
from .supports import (
    FactRecord,
    PairSupport,
    PairedRecord,
    RuleRecord,
    SetOfSetsSupport,
    Signed,
    combine,
    expand_neg_element,
    expand_pos_element,
    prune_to_minimal,
)

__all__ = [
    "AbsenceReason",
    "CascadeEngine",
    "DynamicEngine",
    "ENGINE_NAMES",
    "Explanation",
    "ExplanationError",
    "FactLevelEngine",
    "FactRecord",
    "MaintenanceEngine",
    "MaintenanceStats",
    "PAPER_SOLUTION_NAMES",
    "PairSupport",
    "PairedRecord",
    "RecomputeEngine",
    "RuleRecord",
    "SOUND_ENGINE_NAMES",
    "SetOfSetsEngine",
    "SetOfSetsSupport",
    "Signed",
    "StaticEngine",
    "UpdateResult",
    "combine",
    "create_engine",
    "engine_from_state",
    "expand_neg_element",
    "expand_pos_element",
    "explain",
    "explain_absence",
    "prune_to_minimal",
]
