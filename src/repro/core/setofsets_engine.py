"""Section 4.3 — the dynamic solution with Pos and Neg sets of sets.

One support element per deduction: when ``p(t)`` is deduced from positive
facts with supports ``Pos1..Posi`` / ``Neg1..Negi`` and negated relations
``r1..rj``, the sets grow by

    Pos := Pos ∪ (Pos1 ⊕ ... ⊕ Posi) ⊕ {{q1,...,qi, -r1,...,-rj}}
    Neg := Neg ∪ (Neg1 ⊕ ... ⊕ Negi) ⊕ {{+r1,...,+rj}}

A fact is now evicted only when *all* elements of the relevant set fail,
which keeps Example 4's ``accepted(a)`` alive where the single-support
solution migrates it.

Two modes:

* ``mode="paper"`` — the sets evolve independently, exactly as printed.
  Known consequence (DESIGN.md, faithfulness note 1): after a *sequence* of
  updates the surviving Pos and Neg elements no longer pair up into common
  deductions and the engine can erroneously retain a fact. Lemma 2 only
  covers one update on a freshly built model.
* ``mode="paired"`` — each deduction's (Pos element, Neg element) pair is
  kept linked in a :class:`~repro.core.supports.PairedRecord`; a record dies
  when either side fails and the fact is evicted when no record remains.
  This restores soundness across sequences at the same asymptotic cost.
"""

from __future__ import annotations

from ..datalog.atoms import Atom
from ..datalog.clauses import Clause
from ..datalog.evaluation import Derivation
from ..obs import OBS
from .arena import (
    ASSERTION,
    Arena,
    ArenaPairedRecords,
    ArenaSosSupports,
    EMPTY_ELEMENT,
    SupportTable,
)
from .base import MaintenanceEngine
from .supports import (
    PairedRecord,
    SetOfSetsSupport,
    Signed,
    combine,
    expand_neg_element,
    expand_pos_element,
    prune_to_minimal,
)


class SetOfSetsEngine(MaintenanceEngine):
    """The dynamic solution of section 4.3."""

    name = "setofsets"

    def __init__(
        self,
        program,
        *,
        mode: str = "paper",
        prune: bool = True,
        **kwargs,
    ):
        if mode not in ("paper", "paired"):
            raise ValueError(f"unknown mode {mode!r}; use 'paper' or 'paired'")
        self.mode = mode
        self.prune = prune
        self._supports: dict[Atom, SetOfSetsSupport] = {}
        self._records: dict[Atom, set[PairedRecord]] = {}
        self._arena = Arena()
        self._pos_table = SupportTable()  # paper: {atom slot: element ids}
        self._neg_table = SupportTable()
        self._rec_table = SupportTable()  # paired: {atom slot: record ids}
        # Base-element slots per clause live on the engine, not on plan
        # support templates: plans outlive arena replacements (load_state
        # adopts a different arena), so template-cached slots would go
        # stale.
        self._base_cache: dict[Clause, tuple[int, int]] = {}
        super().__init__(program, **kwargs)

    # ------------------------------------------------------------------
    # Support construction
    # ------------------------------------------------------------------

    def _reset_supports(self) -> None:
        self._supports.clear()
        self._records.clear()
        self._arena = Arena()
        self._pos_table = SupportTable()
        self._neg_table = SupportTable()
        self._rec_table = SupportTable()
        self._base_cache.clear()

    def _build_listener(self):
        def listener(derivation: Derivation, is_new: bool, plan) -> None:
            self._derivations_fired += 1
            self._note_deduction(derivation, plan)

        return listener

    @staticmethod
    def _base_elements(clause) -> tuple[frozenset, frozenset]:
        """The clause-level (Pos element, Neg element) contribution.

        Only the rule's body relations matter, so the pair is built once
        per clause and attached to the plan as a support template.
        """
        negated = tuple(lit.relation for lit in clause.negative_body)
        base_pos = frozenset(
            {lit.relation for lit in clause.positive_body}
            | {Signed("-", relation) for relation in negated}
        )
        base_neg = frozenset(Signed("+", relation) for relation in negated)
        return base_pos, base_neg

    def _base_slots(self, clause) -> tuple[int, int]:
        """Arena ids of the clause-level (Pos, Neg) base elements."""
        slots = self._base_cache.get(clause)
        if slots is None:
            base_pos, base_neg = self._base_elements(clause)
            slots = (
                self._arena.intern_element_entries(base_pos),
                self._arena.intern_element_entries(base_neg),
            )
            self._base_cache[clause] = slots
        return slots

    def _note_deduction(self, derivation: Derivation, plan) -> None:
        if self.arena:
            self._note_deduction_arena(derivation)
            return
        base_pos, base_neg = plan.support_template(
            "sos_base", self._base_elements
        )
        if self.mode == "paper":
            pos_factors = [
                self._supports[fact].pos for fact in derivation.positive_facts
            ]
            neg_factors = [
                self._supports[fact].neg for fact in derivation.positive_facts
            ]
            support = self._supports.setdefault(
                derivation.head, SetOfSetsSupport()
            )
            support.pos |= combine(pos_factors + [{base_pos}])
            support.neg |= combine(neg_factors + [{base_neg}])
            if self.prune:
                support.pos = prune_to_minimal(support.pos)
                support.neg = prune_to_minimal(support.neg)
        else:
            body_records = [
                self._records[fact] for fact in derivation.positive_facts
            ]
            records = self._records.setdefault(derivation.head, set())
            self._combine_records(records, body_records, base_pos, base_neg)

    def _note_deduction_arena(self, derivation: Derivation) -> None:
        """⊕ carried out entirely in element-id space.

        Body supports arrive as sets of interned element (or paired-record)
        ids; each union is interned once, so repeated deductions over the
        same elements never re-hash entry sets, and pruning walks int
        buckets instead of frozensets.
        """
        arena = self._arena
        head_slot = arena.intern_atom(derivation.head)
        base_pos, base_neg = self._base_slots(derivation.clause)
        if self.mode == "paper":
            pos_factors: list[set[int]] = []
            neg_factors: list[set[int]] = []
            for fact in derivation.positive_facts:
                slot = arena.intern_atom(fact)
                pos = self._pos_table.get(slot)
                if pos is None:
                    raise KeyError(fact)
                pos_factors.append(pos)
                neg_factors.append(self._neg_table.get(slot) or set())
            pos_ids = set(self._pos_table.get(head_slot) or ())
            neg_ids = set(self._neg_table.get(head_slot) or ())
            pos_ids |= self._combine_ids(pos_factors, base_pos)
            neg_ids |= self._combine_ids(neg_factors, base_neg)
            if self.prune:
                pos_ids = set(arena.prune_element_ids(pos_ids))
                neg_ids = set(arena.prune_element_ids(neg_ids))
            self._pos_table.replace(head_slot, pos_ids)
            self._neg_table.replace(head_slot, neg_ids)
        else:
            body_factors: list[set[int]] = []
            for fact in derivation.positive_facts:
                slot = arena.intern_atom(fact)
                body = self._rec_table.get(slot)
                if body is None:
                    raise KeyError(fact)
                body_factors.append(body)
            union = arena.union_elements
            paired_pos = arena.paired_pos
            paired_neg = arena.paired_neg
            choices: list[tuple[int, int]] = [(base_pos, base_neg)]
            for factor in body_factors:
                choices = [
                    (
                        union((pos, paired_pos[record])),
                        union((neg, paired_neg[record])),
                    )
                    for pos, neg in choices
                    for record in factor
                ]
            record_ids = set(self._rec_table.get(head_slot) or ())
            record_ids.update(
                arena.intern_paired_record(pos, neg) for pos, neg in choices
            )
            if self.prune:
                record_ids = set(arena.prune_paired_ids(record_ids))
            self._rec_table.replace(head_slot, record_ids)

    def _combine_ids(self, factors: list[set[int]], base: int) -> set[int]:
        """``combine(factors + [{base}])`` over interned element ids."""
        union = self._arena.union_elements
        result = {base}
        for factor in factors:
            result = {
                union((accumulated, element))
                for accumulated in result
                for element in factor
            }
        return result

    def _combine_records(
        self,
        records: set[PairedRecord],
        body_records: list[set[PairedRecord]],
        base_pos: frozenset,
        base_neg: frozenset,
    ) -> None:
        """⊕ over linked (Pos, Neg) pairs instead of each side separately."""
        choices: list[PairedRecord] = [PairedRecord(base_pos, base_neg)]
        for factor in body_records:
            choices = [
                PairedRecord(choice.pos | record.pos, choice.neg | record.neg)
                for choice in choices
                for record in factor
            ]
        records.update(choices)
        if self.prune:
            self._prune_records(records)

    @staticmethod
    def _prune_records(records: set[PairedRecord]) -> None:
        """Keep the records no other record dominates on both sides.

        Same entry-bucket candidate generation as
        :func:`~repro.core.supports.prune_to_minimal`, with buckets tagged
        by side — a dominating record's entries all appear in the
        dominated one's, on the matching side. A record can only dominate
        from a smaller-or-equal total size, so ascending-size order makes
        the surviving antichain canonical.
        """
        if len(records) <= 1:
            return
        trivial = PairedRecord.trivial()
        if trivial in records:  # ∅/∅ dominates everything
            records.clear()
            records.add(trivial)
            return
        ordered = sorted(records, key=lambda r: (len(r.pos) + len(r.neg)))
        kept: list[PairedRecord] = []
        by_entry: dict[tuple[str, object], list[int]] = {}
        for record in ordered:
            dominated = False
            seen: set[int] = set()
            for side, element in (("p", record.pos), ("n", record.neg)):
                for entry in element:
                    for index in by_entry.get((side, entry), ()):
                        if index in seen:
                            continue
                        seen.add(index)
                        other = kept[index]
                        if (
                            other.pos <= record.pos
                            and other.neg <= record.neg
                        ):
                            dominated = True
                            break
                    if dominated:
                        break
                if dominated:
                    break
            if dominated:
                continue
            index = len(kept)
            kept.append(record)
            for entry in record.pos:
                by_entry.setdefault(("p", entry), []).append(index)
            for entry in record.neg:
                by_entry.setdefault(("n", entry), []).append(index)
        records.clear()
        records.update(kept)

    def _register_assertion(self, fact: Atom) -> None:
        if self.arena:
            arena = self._arena
            slot = arena.intern_atom(fact)
            if self.mode == "paper":
                pos_ids = set(self._pos_table.get(slot) or ())
                neg_ids = set(self._neg_table.get(slot) or ())
                pos_ids.add(EMPTY_ELEMENT)
                neg_ids.add(EMPTY_ELEMENT)
                if self.prune:
                    pos_ids = set(arena.prune_element_ids(pos_ids))
                    neg_ids = set(arena.prune_element_ids(neg_ids))
                self._pos_table.replace(slot, pos_ids)
                self._neg_table.replace(slot, neg_ids)
            else:
                record_ids = set(self._rec_table.get(slot) or ())
                record_ids.add(ASSERTION)
                if self.prune:
                    record_ids = set(arena.prune_paired_ids(record_ids))
                self._rec_table.replace(slot, record_ids)
            return
        if self.mode == "paper":
            support = self._supports.setdefault(fact, SetOfSetsSupport())
            support.pos.add(frozenset())
            support.neg.add(frozenset())
            if self.prune:
                support.pos = prune_to_minimal(support.pos)
                support.neg = prune_to_minimal(support.neg)
        else:
            records = self._records.setdefault(fact, set())
            records.add(PairedRecord.trivial())
            if self.prune:
                self._prune_records(records)

    def support_of(self, fact: Atom) -> SetOfSetsSupport:
        if not self.arena:
            return self._supports[fact]
        arena = self._arena
        slot = arena.atom_id(fact)
        pos_ids = self._pos_table.get(slot) if slot is not None else None
        if pos_ids is None:
            raise KeyError(fact)
        decode = arena.decode_element
        return SetOfSetsSupport(
            {decode(element) for element in pos_ids},
            {
                decode(element)
                for element in self._neg_table.get(slot) or ()
            },
        )

    def records_of(self, fact: Atom) -> set[PairedRecord]:
        if not self.arena:
            return self._records[fact]
        slot = self._arena.atom_id(fact)
        record_ids = self._rec_table.get(slot) if slot is not None else None
        if record_ids is None:
            raise KeyError(fact)
        decode = self._arena.decode_paired_record
        return {decode(record) for record in record_ids}

    def support_entry_count(self) -> int:
        if self.arena:
            arena = self._arena
            if self.mode == "paper":
                members = arena.element_members
                return sum(
                    len(members[element]) + 1
                    for table in (self._pos_table, self._neg_table)
                    for elements in table.values()
                    for element in elements
                )
            size = arena.paired_record_size
            return sum(
                size(record)
                for records in self._rec_table.values()
                for record in records
            )
        if self.mode == "paper":
            return sum(s.size() for s in self._supports.values())
        return sum(
            record.size()
            for records in self._records.values()
            for record in records
        )

    def _support_state(self) -> dict:
        if self.arena:
            if self.mode == "paper":
                return {
                    "supports": ArenaSosSupports(
                        self._arena,
                        self._pos_table.copy(),
                        self._neg_table.copy(),
                    ),
                    "records": {},
                }
            return {
                "supports": {},
                "records": ArenaPairedRecords(
                    self._arena, self._rec_table.copy()
                ),
            }
        return {
            "supports": {
                fact: SetOfSetsSupport(set(support.pos), set(support.neg))
                for fact, support in self._supports.items()
            },
            "records": {
                fact: set(records) for fact, records in self._records.items()
            },
        }

    def _live_support_state(self) -> dict:
        if self.arena:
            # Uncopied live tables: preserve _owned for O(changed) diffs.
            if self.mode == "paper":
                return {
                    "supports": ArenaSosSupports(
                        self._arena, self._pos_table, self._neg_table
                    ),
                    "records": {},
                }
            return {
                "supports": {},
                "records": ArenaPairedRecords(self._arena, self._rec_table),
            }
        return self._support_state()

    def _load_support_state(self, state: dict) -> None:
        supports = state["supports"]
        records = state["records"]
        if not self.arena:
            if isinstance(supports, ArenaSosSupports):
                supports = supports.to_record_state()
            if isinstance(records, ArenaPairedRecords):
                records = records.to_record_state()
            self._supports = {
                fact: SetOfSetsSupport(set(support.pos), set(support.neg))
                for fact, support in supports.items()
            }
            self._records = {
                fact: set(record_set)
                for fact, record_set in records.items()
            }
            return
        self._supports = {}
        self._records = {}
        self._base_cache.clear()
        if self.mode == "paper":
            sos = (
                supports
                if isinstance(supports, ArenaSosSupports)
                else ArenaSosSupports.from_records(supports)
            )
            self._arena = sos.arena
            self._pos_table = sos.pos_table.copy()
            self._neg_table = sos.neg_table.copy()
            self._rec_table = SupportTable()
        else:
            paired = (
                records
                if isinstance(records, ArenaPairedRecords)
                else ArenaPairedRecords.from_records(records)
            )
            self._arena = paired.arena
            self._rec_table = paired.table.copy()
            self._pos_table = SupportTable()
            self._neg_table = SupportTable()

    # ------------------------------------------------------------------
    # Removal phases
    # ------------------------------------------------------------------

    def _evict(self, fact: Atom) -> None:
        self.model.discard(fact)
        if self.arena:
            slot = self._arena.atom_id(fact)
            if slot is not None:
                self._pos_table.pop(slot)
                self._neg_table.pop(slot)
                self._rec_table.pop(slot)
            return
        self._supports.pop(fact, None)
        self._records.pop(fact, None)

    def _remove_failing(self, relation: str, side: str) -> set[Atom]:
        """Drop failing elements; evict facts whose *side* set empties.

        ``side="neg"`` is the insertion case (elements whose expanded form
        contains the increased relation fail), ``side="pos"`` the deletion
        case.
        """
        statics = self.db.statics
        doomed: list[Atom] = []
        with OBS.span("phase:removal") as span:
            self._remove_failing_into(relation, side, statics, doomed)
            if span:
                span.set("evicted", len(doomed))
        return set(doomed)

    def _remove_failing_into(
        self, relation: str, side: str, statics, doomed: list[Atom]
    ) -> None:
        if self.arena:
            self._remove_failing_arena(relation, side, statics, doomed)
            for fact in doomed:
                self._evict(fact)
            return
        if self.mode == "paper":
            for fact, support in self._supports.items():
                elements = support.neg if side == "neg" else support.pos
                expand = (
                    expand_neg_element if side == "neg" else expand_pos_element
                )
                failing = {
                    element
                    for element in elements
                    if relation in expand(element, statics)
                }
                if not failing:
                    continue
                elements -= failing
                if not elements:
                    doomed.append(fact)
        else:
            for fact, records in self._records.items():
                failing = {
                    record
                    for record in records
                    if relation
                    in (
                        expand_neg_element(record.neg, statics)
                        if side == "neg"
                        else expand_pos_element(record.pos, statics)
                    )
                }
                if not failing:
                    continue
                records -= failing
                if not records:
                    doomed.append(fact)
        for fact in doomed:
            self._evict(fact)

    def _remove_failing_arena(
        self, relation: str, side: str, statics, doomed: list[Atom]
    ) -> None:
        """Id-space removal pass.

        The arena memoises each element's expansion per statics table, so
        across the repeated passes of a batch each element is expanded at
        most once — the record path recomputes the closure every pass.
        """
        arena = self._arena
        expand = arena.expand_neg if side == "neg" else arena.expand_pos
        if self.mode == "paper":
            table = self._neg_table if side == "neg" else self._pos_table
            for slot, elements in list(table.items()):
                failing = {
                    element
                    for element in elements
                    if relation in expand(element, statics)
                }
                if not failing:
                    continue
                survivors = elements - failing
                if survivors:
                    table.replace(slot, survivors)
                else:
                    doomed.append(arena.atoms[slot])
        else:
            sides = arena.paired_neg if side == "neg" else arena.paired_pos
            for slot, records in list(self._rec_table.items()):
                failing = {
                    record
                    for record in records
                    if relation in expand(sides[record], statics)
                }
                if not failing:
                    continue
                survivors = records - failing
                if survivors:
                    self._rec_table.replace(slot, survivors)
                else:
                    doomed.append(arena.atoms[slot])

    # ------------------------------------------------------------------
    # Update procedures
    # ------------------------------------------------------------------

    def _apply_insert_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        removed = self._remove_failing(fact.relation, "neg")
        self.model.add(fact)
        self._register_assertion(fact)
        added = self._resaturate_from(
            self.db.stratum_of(fact.relation), self._build_listener()
        )
        return removed, added | {fact}

    def _apply_delete_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        removed = self._remove_failing(fact.relation, "pos")
        if fact in self.model:
            self._evict(fact)
            removed.add(fact)
        added = self._resaturate_from(
            self.db.stratum_of(fact.relation), self._build_listener()
        )
        return removed, added

    def _apply_insert_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        head = rule.head.relation
        removed = self._remove_failing(head, "neg")
        added = self._resaturate_from(
            self.db.stratum_of(head), self._build_listener()
        )
        return removed, added

    def _apply_delete_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        head = rule.head.relation
        removed = self._remove_failing(head, "pos")
        # Relation-level supports cannot tell which head facts the deleted
        # rule produced; evict every derived-only fact of the relation and
        # let re-saturation bring back the survivors.
        for fact in list(self.model.facts_of(head)):
            if not self.db.is_asserted(fact):
                self._evict(fact)
                removed.add(fact)
        added = self._resaturate_from(
            self.db.stratum_of(head), self._build_listener()
        )
        return removed, added
