"""Section 4.3 — the dynamic solution with Pos and Neg sets of sets.

One support element per deduction: when ``p(t)`` is deduced from positive
facts with supports ``Pos1..Posi`` / ``Neg1..Negi`` and negated relations
``r1..rj``, the sets grow by

    Pos := Pos ∪ (Pos1 ⊕ ... ⊕ Posi) ⊕ {{q1,...,qi, -r1,...,-rj}}
    Neg := Neg ∪ (Neg1 ⊕ ... ⊕ Negi) ⊕ {{+r1,...,+rj}}

A fact is now evicted only when *all* elements of the relevant set fail,
which keeps Example 4's ``accepted(a)`` alive where the single-support
solution migrates it.

Two modes:

* ``mode="paper"`` — the sets evolve independently, exactly as printed.
  Known consequence (DESIGN.md, faithfulness note 1): after a *sequence* of
  updates the surviving Pos and Neg elements no longer pair up into common
  deductions and the engine can erroneously retain a fact. Lemma 2 only
  covers one update on a freshly built model.
* ``mode="paired"`` — each deduction's (Pos element, Neg element) pair is
  kept linked in a :class:`~repro.core.supports.PairedRecord`; a record dies
  when either side fails and the fact is evicted when no record remains.
  This restores soundness across sequences at the same asymptotic cost.
"""

from __future__ import annotations

from ..datalog.atoms import Atom
from ..datalog.clauses import Clause
from ..datalog.evaluation import Derivation
from ..obs import OBS
from .base import MaintenanceEngine
from .supports import (
    PairedRecord,
    SetOfSetsSupport,
    Signed,
    combine,
    expand_neg_element,
    expand_pos_element,
    prune_to_minimal,
)


class SetOfSetsEngine(MaintenanceEngine):
    """The dynamic solution of section 4.3."""

    name = "setofsets"

    def __init__(
        self,
        program,
        *,
        mode: str = "paper",
        prune: bool = True,
        **kwargs,
    ):
        if mode not in ("paper", "paired"):
            raise ValueError(f"unknown mode {mode!r}; use 'paper' or 'paired'")
        self.mode = mode
        self.prune = prune
        self._supports: dict[Atom, SetOfSetsSupport] = {}
        self._records: dict[Atom, set[PairedRecord]] = {}
        super().__init__(program, **kwargs)

    # ------------------------------------------------------------------
    # Support construction
    # ------------------------------------------------------------------

    def _reset_supports(self) -> None:
        self._supports.clear()
        self._records.clear()

    def _build_listener(self):
        def listener(derivation: Derivation, is_new: bool, plan) -> None:
            self._derivations_fired += 1
            self._note_deduction(derivation, plan)

        return listener

    @staticmethod
    def _base_elements(clause) -> tuple[frozenset, frozenset]:
        """The clause-level (Pos element, Neg element) contribution.

        Only the rule's body relations matter, so the pair is built once
        per clause and attached to the plan as a support template.
        """
        negated = tuple(lit.relation for lit in clause.negative_body)
        base_pos = frozenset(
            {lit.relation for lit in clause.positive_body}
            | {Signed("-", relation) for relation in negated}
        )
        base_neg = frozenset(Signed("+", relation) for relation in negated)
        return base_pos, base_neg

    def _note_deduction(self, derivation: Derivation, plan) -> None:
        base_pos, base_neg = plan.support_template(
            "sos_base", self._base_elements
        )
        if self.mode == "paper":
            pos_factors = [
                self._supports[fact].pos for fact in derivation.positive_facts
            ]
            neg_factors = [
                self._supports[fact].neg for fact in derivation.positive_facts
            ]
            support = self._supports.setdefault(
                derivation.head, SetOfSetsSupport()
            )
            support.pos |= combine(pos_factors + [{base_pos}])
            support.neg |= combine(neg_factors + [{base_neg}])
            if self.prune:
                support.pos = prune_to_minimal(support.pos)
                support.neg = prune_to_minimal(support.neg)
        else:
            body_records = [
                self._records[fact] for fact in derivation.positive_facts
            ]
            records = self._records.setdefault(derivation.head, set())
            self._combine_records(records, body_records, base_pos, base_neg)

    def _combine_records(
        self,
        records: set[PairedRecord],
        body_records: list[set[PairedRecord]],
        base_pos: frozenset,
        base_neg: frozenset,
    ) -> None:
        """⊕ over linked (Pos, Neg) pairs instead of each side separately."""
        choices: list[PairedRecord] = [PairedRecord(base_pos, base_neg)]
        for factor in body_records:
            choices = [
                PairedRecord(choice.pos | record.pos, choice.neg | record.neg)
                for choice in choices
                for record in factor
            ]
        records.update(choices)
        if self.prune:
            self._prune_records(records)

    @staticmethod
    def _prune_records(records: set[PairedRecord]) -> None:
        ordered = sorted(records, key=lambda r: (len(r.pos) + len(r.neg)))
        kept: list[PairedRecord] = []
        for record in ordered:
            if not any(
                other.pos <= record.pos and other.neg <= record.neg
                for other in kept
            ):
                kept.append(record)
        records.clear()
        records.update(kept)

    def _register_assertion(self, fact: Atom) -> None:
        if self.mode == "paper":
            support = self._supports.setdefault(fact, SetOfSetsSupport())
            support.pos.add(frozenset())
            support.neg.add(frozenset())
            if self.prune:
                support.pos = prune_to_minimal(support.pos)
                support.neg = prune_to_minimal(support.neg)
        else:
            records = self._records.setdefault(fact, set())
            records.add(PairedRecord.trivial())
            if self.prune:
                self._prune_records(records)

    def support_of(self, fact: Atom) -> SetOfSetsSupport:
        return self._supports[fact]

    def records_of(self, fact: Atom) -> set[PairedRecord]:
        return self._records[fact]

    def support_entry_count(self) -> int:
        if self.mode == "paper":
            return sum(s.size() for s in self._supports.values())
        return sum(
            record.size()
            for records in self._records.values()
            for record in records
        )

    def _support_state(self) -> dict:
        return {
            "supports": {
                fact: SetOfSetsSupport(set(support.pos), set(support.neg))
                for fact, support in self._supports.items()
            },
            "records": {
                fact: set(records) for fact, records in self._records.items()
            },
        }

    def _load_support_state(self, state: dict) -> None:
        self._supports = {
            fact: SetOfSetsSupport(set(support.pos), set(support.neg))
            for fact, support in state["supports"].items()
        }
        self._records = {
            fact: set(records) for fact, records in state["records"].items()
        }

    # ------------------------------------------------------------------
    # Removal phases
    # ------------------------------------------------------------------

    def _evict(self, fact: Atom) -> None:
        self.model.discard(fact)
        self._supports.pop(fact, None)
        self._records.pop(fact, None)

    def _remove_failing(self, relation: str, side: str) -> set[Atom]:
        """Drop failing elements; evict facts whose *side* set empties.

        ``side="neg"`` is the insertion case (elements whose expanded form
        contains the increased relation fail), ``side="pos"`` the deletion
        case.
        """
        statics = self.db.statics
        doomed: list[Atom] = []
        with OBS.span("phase:removal") as span:
            self._remove_failing_into(relation, side, statics, doomed)
            if span:
                span.set("evicted", len(doomed))
        return set(doomed)

    def _remove_failing_into(
        self, relation: str, side: str, statics, doomed: list[Atom]
    ) -> None:
        if self.mode == "paper":
            for fact, support in self._supports.items():
                elements = support.neg if side == "neg" else support.pos
                expand = (
                    expand_neg_element if side == "neg" else expand_pos_element
                )
                failing = {
                    element
                    for element in elements
                    if relation in expand(element, statics)
                }
                if not failing:
                    continue
                elements -= failing
                if not elements:
                    doomed.append(fact)
        else:
            for fact, records in self._records.items():
                failing = {
                    record
                    for record in records
                    if relation
                    in (
                        expand_neg_element(record.neg, statics)
                        if side == "neg"
                        else expand_pos_element(record.pos, statics)
                    )
                }
                if not failing:
                    continue
                records -= failing
                if not records:
                    doomed.append(fact)
        for fact in doomed:
            self._evict(fact)

    # ------------------------------------------------------------------
    # Update procedures
    # ------------------------------------------------------------------

    def _apply_insert_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        removed = self._remove_failing(fact.relation, "neg")
        self.model.add(fact)
        self._register_assertion(fact)
        added = self._resaturate_from(
            self.db.stratum_of(fact.relation), self._build_listener()
        )
        return removed, added | {fact}

    def _apply_delete_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        removed = self._remove_failing(fact.relation, "pos")
        if fact in self.model:
            self._evict(fact)
            removed.add(fact)
        added = self._resaturate_from(
            self.db.stratum_of(fact.relation), self._build_listener()
        )
        return removed, added

    def _apply_insert_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        head = rule.head.relation
        removed = self._remove_failing(head, "neg")
        added = self._resaturate_from(
            self.db.stratum_of(head), self._build_listener()
        )
        return removed, added

    def _apply_delete_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        head = rule.head.relation
        removed = self._remove_failing(head, "pos")
        # Relation-level supports cannot tell which head facts the deleted
        # rule produced; evict every derived-only fact of the relation and
        # let re-saturation bring back the survivors.
        for fact in list(self.model.facts_of(head)):
            if not self.db.is_asserted(fact):
                self._evict(fact)
                removed.add(fact)
        added = self._resaturate_from(
            self.db.stratum_of(head), self._build_listener()
        )
        return removed, added
