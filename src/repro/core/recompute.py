"""Full recomputation — the correctness oracle and cost baseline.

Not one of the paper's solutions: it simply recomputes ``M(P')`` from
scratch after every update. It never migrates anything (there is no removal
phase), always produces the exact standard model, and its cost is what the
incremental solutions must beat (experiment E10 locates the crossover).

Every recomputation runs through the engine-owned
:class:`~repro.datalog.plan.Planner` (see :meth:`MaintenanceEngine.rebuild`),
so the clause compilation is paid once per rule, not once per update — the
baseline measures join execution, not plan construction.
"""

from __future__ import annotations

from ..datalog.atoms import Atom
from ..datalog.clauses import Clause
from .base import MaintenanceEngine


class RecomputeEngine(MaintenanceEngine):
    """Recompute M(P') from scratch on every update."""

    name = "recompute"

    def _recompute(self) -> tuple[set[Atom], set[Atom]]:
        before = self.model.as_set()
        self.rebuild()
        after = self.model.as_set()
        return set(before - after), set(after - before)

    def _apply_insert_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        return self._recompute()

    def _apply_delete_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        return self._recompute()

    def _apply_insert_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        return self._recompute()

    def _apply_delete_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        return self._recompute()
