"""Migration and bookkeeping accounting.

The paper compares maintenance solutions by the amount of *migration* — "a
phenomenon consisting of an erroneous removal of a fact from the model"
after which "this fact has to be added back" — against the cost of the
bookkeeping (the supports). These records are what the benchmark harness
aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The stats keys every engine's :attr:`UpdateResult.stats` carries, for
#: every operation (including no-ops and batches). Engines may add keys on
#: top but never omit one of these — ``tests/test_stats_conformance.py``
#: enforces it. ``derivations_fired`` counts rule firings during the
#: update, ``transient`` the facts added and evicted within it, ``noop``
#: flags admission-level no-ops, and the plan-cache counters are the
#: engine planner's hit/miss deltas over the update.
STANDARD_STAT_KEYS = (
    "derivations_fired",
    "transient",
    "noop",
    "plan_cache_hits",
    "plan_cache_misses",
)


@dataclass
class MaintenanceStats:
    """Totals accumulated by one engine over a sequence of updates."""

    updates: int = 0
    removed: int = 0
    added: int = 0
    migrated: int = 0
    duration_s: float = 0.0
    derivations_fired: int = 0
    transient: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0

    def record(self, result: "UpdateResult") -> None:
        self.updates += 1
        self.removed += len(result.removed)
        self.added += len(result.added)
        self.migrated += len(result.migrated)
        self.duration_s += result.duration_s
        self.derivations_fired += result.stats.get("derivations_fired", 0)
        self.transient += result.stats.get("transient", 0)
        self.plan_cache_hits += result.stats.get("plan_cache_hits", 0)
        self.plan_cache_misses += result.stats.get("plan_cache_misses", 0)

    def as_dict(self) -> dict:
        return {
            "updates": self.updates,
            "removed": self.removed,
            "added": self.added,
            "migrated": self.migrated,
            "duration_s": self.duration_s,
            "derivations_fired": self.derivations_fired,
            "transient": self.transient,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
        }


@dataclass(frozen=True)
class UpdateResult:
    """The outcome of a single maintenance operation.

    ``removed`` is what the removal phase evicted from the model,
    ``added`` what the addition phase put in; their intersection is the
    migration of this update. The net model change is
    ``(added - removed-that-stayed-out)`` — see :attr:`net_added` /
    :attr:`net_removed`.
    """

    operation: str
    subject: str
    removed: frozenset
    added: frozenset
    model_size: int
    duration_s: float
    support_entries: int
    stats: dict = field(default_factory=dict)
    # Static-analysis findings for the clause an insert_rule admitted
    # (repro.analysis Diagnostic records; empty for every other operation).
    warnings: tuple = ()

    @property
    def migrated(self) -> frozenset:
        """Facts erroneously removed and then added back."""
        return self.removed & self.added

    @property
    def net_removed(self) -> frozenset:
        return self.removed - self.added

    @property
    def net_added(self) -> frozenset:
        return self.added - self.removed

    def summary(self) -> str:
        text = (
            f"{self.operation}({self.subject}): "
            f"-{len(self.net_removed)} +{len(self.net_added)} "
            f"migrated={len(self.migrated)} model={self.model_size}"
        )
        for warning in self.warnings:
            text += f"\nwarning {warning.code}: {warning.message}"
        return text
