"""Section 4.1 — the static solution using the dependency graph.

No supports are attached to the facts; the removal phase consults only the
static closures ``Pos(r)`` / ``Neg(r)`` of the dependency graph:

* inserting a fact about ``p`` may only shrink relations ``r`` with
  ``p ∈ Neg(r)`` (Lemma 1.i), so all their facts are evicted;
* deleting a fact about ``p`` may only shrink relations ``r`` with
  ``p ∈ Pos(r)`` (Lemma 1.ii) — note ``p ∈ Pos(p)``, so the deleted
  relation's own facts are evicted too;

after which every stratum from the affected one upward is re-saturated
("the simplest solution and usually the most inefficient one"). The evicted
facts that re-appear are this solution's migration — Example 1 (CONF) shows
it migrating a fact the dynamic solutions save.
"""

from __future__ import annotations

from ..datalog.atoms import Atom
from ..datalog.clauses import Clause
from ..obs import OBS
from .base import MaintenanceEngine


class StaticEngine(MaintenanceEngine):
    """The static solution of section 4.1."""

    name = "static"

    def _evict_dependents(
        self, relation: str, via_negative: bool
    ) -> set[Atom]:
        """Remove every fact of every relation statically at risk.

        *via_negative* selects Lemma 1.i (insertions: ``p ∈ Neg(r)``) or
        Lemma 1.ii (deletions: ``p ∈ Pos(r)``).
        """
        statics = self.db.statics
        removed: set[Atom] = set()
        with OBS.span("phase:removal") as span:
            for name in list(self.model.relation_names()):
                at_risk = (
                    relation in statics.neg(name)
                    if via_negative
                    else relation in statics.pos(name)
                )
                if not at_risk:
                    continue
                doomed = list(self.model.facts_of(name))
                # Relation-level eviction is a bulk operation: one batched
                # statistics/index update instead of per-fact maintenance.
                self.model.discard_many(doomed)
                removed.update(doomed)
            if span:
                span.set("evicted", len(removed))
        return removed

    # ------------------------------------------------------------------
    # FACT INSERTION (section 4.1)
    # ------------------------------------------------------------------

    def _apply_insert_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        # 1) remove all facts r(s) such that p belongs to Neg(r)
        removed = self._evict_dependents(fact.relation, via_negative=True)
        # 2) add p(t)
        self.model.add(fact)
        # 3) recompute the saturation sequence from p's stratum upward
        added = self._resaturate_from(self.db.stratum_of(fact.relation))
        return removed, added | {fact}

    # ------------------------------------------------------------------
    # FACT DELETION
    # ------------------------------------------------------------------

    def _apply_delete_fact(self, fact: Atom) -> tuple[set[Atom], set[Atom]]:
        # 1) remove all facts r(s) such that p belongs to Pos(r); since
        #    p ∈ Pos(p) this evicts p's own facts, including p(t) itself.
        removed = self._evict_dependents(fact.relation, via_negative=False)
        # 2) p(t) must stay out; it is no longer asserted.
        # 3) re-saturate from p's stratum upward.
        added = self._resaturate_from(self.db.stratum_of(fact.relation))
        return removed, added

    # ------------------------------------------------------------------
    # RULE INSERTION
    # ------------------------------------------------------------------

    def _apply_insert_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        # The database already re-stratified and rebased the static sets
        # (step 2 of the paper's procedure). The new rule can only increase
        # its head relation, so only negative dependents are at risk.
        head = rule.head.relation
        removed = self._evict_dependents(head, via_negative=True)
        added = self._resaturate_from(self.db.stratum_of(head))
        return removed, added

    # ------------------------------------------------------------------
    # RULE DELETION
    # ------------------------------------------------------------------

    def _apply_delete_rule(self, rule: Clause) -> tuple[set[Atom], set[Atom]]:
        # The head relation may shrink: evict the positive dependents
        # (p ∈ Pos(p) evicts the head's own facts) and re-saturate.
        head = rule.head.relation
        removed = self._evict_dependents(head, via_negative=False)
        added = self._resaturate_from(self.db.stratum_of(head))
        return removed, added
