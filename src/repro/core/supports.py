"""Support structures attached to the facts of the maintained model.

The paper's solutions differ exactly in the form of these supports:

* section 4.2 — one pair ``(Pos, Neg)`` of sets of *signed relations* per
  fact (:class:`PairSupport`);
* section 4.3 — ``Pos`` and ``Neg`` as *sets of sets* of signed relations,
  combined across body facts with the ``⊕`` operator (:func:`combine`);
* section 5.1 — one-level-deep rule pointers (:class:`RuleRecord`);
* section 5.2 (discussion) — fact-level derivation records keeping every
  deduction (:class:`FactRecord`).

A *signed* entry ``-r`` inside a Pos set (or ``+r`` inside a Neg set)
remembers that the deduction passed through the negative hypothesis
``not r(...)``; at update time it is expanded through the *static*
dependency sets into the ``Pos'``/``Neg'`` sets of the paper
(:func:`expand_pos_element`, :func:`expand_neg_element`).
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, NamedTuple, Optional

from ..datalog.atoms import Atom
from ..datalog.clauses import Clause
from ..datalog.dependency import StaticDependencies

# ----------------------------------------------------------------------
# Signed relation entries
# ----------------------------------------------------------------------


class Signed(NamedTuple):
    """A signed relation symbol: ``Signed('-', r)`` is the paper's ``-r``."""

    sign: str  # '+' or '-'
    relation: str

    def __str__(self) -> str:
        return f"{self.sign}{self.relation}"


Entry = "str | Signed"  # a support-set member: plain or signed relation


def plain_relations(entries: Iterable) -> set[str]:
    """The unsigned relation names among *entries*."""
    return {entry for entry in entries if isinstance(entry, str)}


def signed_relations(entries: Iterable) -> set[Signed]:
    return {entry for entry in entries if isinstance(entry, Signed)}


def expand_pos_element(
    element: frozenset, statics: StaticDependencies
) -> set[str]:
    """The paper's ``A'`` for an element of a Pos set.

    ``A' = {q : q ∈ A} ∪ Neg(r1) ∪ ... ∪ Neg(rj)`` where the ``-rk`` are the
    signed entries of A: a deduction that relied on the *absence* of ``r``
    facts decreases when anything that ``r`` negatively depends on makes
    ``r`` grow — hence the static ``Neg(r)`` closure.
    """
    expanded = plain_relations(element)
    for entry in element:
        if isinstance(entry, Signed):
            expanded |= statics.neg(entry.relation)
    return expanded


def expand_neg_element(
    element: frozenset, statics: StaticDependencies
) -> set[str]:
    """The paper's ``A'`` for an element of a Neg set.

    ``A' = {q : q ∈ A} ∪ Pos(r1) ∪ ... ∪ Pos(rj) ∪ {r1, ..., rj}`` where the
    ``+rk`` are the signed entries of A.
    """
    expanded = plain_relations(element)
    for entry in element:
        if isinstance(entry, Signed):
            expanded |= statics.pos(entry.relation)
            expanded.add(entry.relation)
    return expanded


# ----------------------------------------------------------------------
# Section 4.2: one (Pos, Neg) pair per fact
# ----------------------------------------------------------------------


class PairSupport(NamedTuple):
    """The single support of the dynamic solution of section 4.2."""

    pos: frozenset  # plain relations and Signed('-', r) entries
    neg: frozenset  # plain relations and Signed('+', r) entries

    @classmethod
    def trivial(cls) -> "PairSupport":
        """The support of an asserted fact: empty Pos and Neg."""
        return cls(frozenset(), frozenset())

    def is_trivial(self) -> bool:
        return not self.pos and not self.neg

    def pairwise_smaller(self, other: "PairSupport") -> bool:
        """True when self ⊆ other componentwise and self ≠ other.

        The paper keeps the old pair "unless the new pair is pairwise
        smaller than the old one"; smaller supports make fewer updates
        evict the fact.
        """
        return (
            self.pos <= other.pos
            and self.neg <= other.neg
            and (self.pos != other.pos or self.neg != other.neg)
        )

    def size(self) -> int:
        return len(self.pos) + len(self.neg)


def pair_support_of_derivation(
    positive_supports: Iterable[PairSupport],
    positive_relations: Iterable[str],
    negated_relations: Iterable[str],
) -> PairSupport:
    """Build the section 4.2 support of a newly deduced fact.

    ``Pos = Pos1 ∪ ... ∪ Posi ∪ {q1, ..., qi} ∪ {-r1, ..., -rj}`` and
    ``Neg = Neg1 ∪ ... ∪ Negi ∪ {+r1, ..., +rj}``.
    """
    pos: set = set()
    neg: set = set()
    for support in positive_supports:
        pos |= support.pos
        neg |= support.neg
    pos.update(positive_relations)
    negated = tuple(negated_relations)
    pos.update(Signed("-", relation) for relation in negated)
    neg.update(Signed("+", relation) for relation in negated)
    return PairSupport(frozenset(pos), frozenset(neg))


# ----------------------------------------------------------------------
# Section 4.3: sets of sets and the ⊕ operator
# ----------------------------------------------------------------------


def combine(sets_of_sets: Iterable[frozenset | set]) -> set[frozenset]:
    """The paper's ``B1 ⊕ ... ⊕ Bk = {A1 ∪ ... ∪ Ak : Ai ∈ Bi}``.

    The empty product is ``{∅}``, the neutral element — a deduction with no
    positive hypotheses contributes only its own relations.
    """
    factors = [tuple(factor) for factor in sets_of_sets]
    result: set[frozenset] = set()
    for choice in product(*factors):
        result.add(frozenset().union(*choice))
    return result


def prune_to_minimal(elements: set[frozenset]) -> set[frozenset]:
    """Keep only the ⊆-minimal elements (the paper's "small supports").

    "We might remove an element A from Pos (or Neg) each time a proper
    subset of it has been added" — keeping the antichain of minimal
    elements bounds the growth of the sets-of-sets supports.

    A kept element can only dominate a candidate that contains all of its
    entries, so candidates are found through per-entry buckets of the kept
    antichain instead of scanning it whole: wide supports (many pairwise
    disjoint elements) prune in near-linear time where the full scan was
    quadratic. Processing in ascending size keeps the result canonical —
    the antichain of an input set is unique, so order never shows.
    """
    if len(elements) <= 1:
        return set(elements)
    ordered = sorted(elements, key=len)
    if not ordered[0]:  # ∅ is a subset of everything
        return {ordered[0]}
    minimal: list[frozenset] = []
    by_entry: dict[object, list[int]] = {}
    for element in ordered:
        dominated = False
        seen: set[int] = set()
        for entry in element:
            for index in by_entry.get(entry, ()):
                if index in seen:
                    continue
                seen.add(index)
                if minimal[index] <= element:
                    dominated = True
                    break
            if dominated:
                break
        if dominated:
            continue
        index = len(minimal)
        minimal.append(element)
        for entry in element:
            by_entry.setdefault(entry, []).append(index)
    return set(minimal)


class SetOfSetsSupport:
    """The Pos/Neg sets-of-sets of one fact (section 4.3, paper form).

    ``pos`` and ``neg`` evolve independently; the known consequence (see
    DESIGN.md) is that after several updates their elements no longer pair
    up into common deductions.
    """

    __slots__ = ("pos", "neg")

    def __init__(
        self,
        pos: Optional[set[frozenset]] = None,
        neg: Optional[set[frozenset]] = None,
    ):
        self.pos: set[frozenset] = pos if pos is not None else set()
        self.neg: set[frozenset] = neg if neg is not None else set()

    @classmethod
    def trivial(cls) -> "SetOfSetsSupport":
        """Support of an asserted fact: both sets contain the empty set."""
        return cls({frozenset()}, {frozenset()})

    def add_deduction(
        self,
        pos_element: frozenset,
        neg_element: frozenset,
        prune: bool,
    ) -> None:
        self.pos.add(pos_element)
        self.neg.add(neg_element)
        if prune:
            self.pos = prune_to_minimal(self.pos)
            self.neg = prune_to_minimal(self.neg)

    def size(self) -> int:
        return sum(len(element) + 1 for element in self.pos) + sum(
            len(element) + 1 for element in self.neg
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetOfSetsSupport):
            return NotImplemented
        return self.pos == other.pos and self.neg == other.neg

    def __repr__(self) -> str:
        return f"SetOfSetsSupport(pos={self.pos!r}, neg={self.neg!r})"


class PairedRecord(NamedTuple):
    """One deduction's (Pos element, Neg element) pair, kept linked.

    Used by ``SetOfSetsEngine(mode="paired")`` — the soundness-restoring
    variant described in DESIGN.md: a record dies when *either* side fails,
    and a fact is evicted when no record remains.
    """

    pos: frozenset
    neg: frozenset

    @classmethod
    def trivial(cls) -> "PairedRecord":
        return cls(frozenset(), frozenset())

    def size(self) -> int:
        return len(self.pos) + len(self.neg) + 1


# ----------------------------------------------------------------------
# Section 5.1: one-level rule pointers
# ----------------------------------------------------------------------


class RuleRecord(NamedTuple):
    """A pointer to a rule that triggered the fact (section 5.1).

    The Pos/Neg elements of the fact are recovered from the rule's body:
    "the actual supports in the form of Pos and Neg sets can be constructed
    from this set of pointers in an obvious way". ``rule is None`` marks the
    fact as asserted. The relation sets are precomputed because REMOVEPOS /
    REMOVENEG test them on every pass.
    """

    rule: Optional[Clause]
    positive_relations: frozenset[str]
    negated_relations: frozenset[str]

    @classmethod
    def assertion(cls) -> "RuleRecord":
        return cls(None, frozenset(), frozenset())

    @classmethod
    def of_rule(cls, rule: Clause) -> "RuleRecord":
        return cls(
            rule,
            frozenset(lit.relation for lit in rule.positive_body),
            frozenset(lit.relation for lit in rule.negative_body),
        )

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        if self.rule is None:
            return "[asserted]"
        return f"rule: {self.rule}"


# ----------------------------------------------------------------------
# Section 5.2 discussion: fact-level records (the no-migration form)
# ----------------------------------------------------------------------


class FactRecord(NamedTuple):
    """One deduction recorded at the level of facts, not relations.

    "One might consider a different form of supports in which not relations
    but facts are recorded. [...] this form of supports combined with an
    appropriate type of saturation procedure keeping all possible 'original'
    deductions would lead to a solution with no migration."
    """

    rule: Optional[Clause]  # None marks an assertion
    positive_facts: frozenset[Atom]
    negative_facts: frozenset[Atom]

    @classmethod
    def assertion(cls) -> "FactRecord":
        return cls(None, frozenset(), frozenset())

    def size(self) -> int:
        return 1 + len(self.positive_facts) + len(self.negative_facts)

    def __str__(self) -> str:
        if self.rule is None:
            return "[asserted]"
        used = ", ".join(sorted(map(str, self.positive_facts)))
        absent = ", ".join(f"not {atom}" for atom in
                           sorted(map(str, self.negative_facts)))
        parts = ", ".join(part for part in (used, absent) if part)
        return f"deduction via {self.rule.head.relation} rule: {{{parts}}}"
