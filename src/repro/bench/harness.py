"""The experiment harness: engines × workloads × update sequences.

Runs a maintenance engine through an update sequence, collecting the
per-update :class:`~repro.core.metrics.UpdateResult` records plus aggregate
migration, bookkeeping and timing totals, and (optionally) verifying the
maintained model against the recompute oracle after every update.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.base import MaintenanceEngine
from ..core.metrics import UpdateResult
from ..core.registry import create_engine
from ..datalog.clauses import Program
from ..datalog.evaluation import compute_model
from ..workloads.updates import Update


@dataclass
class RunResult:
    """Aggregated outcome of one (engine, workload, sequence) cell."""

    engine: str
    updates: int = 0
    removed: int = 0
    added: int = 0
    migrated: int = 0
    transient: int = 0
    duration_s: float = 0.0
    build_s: float = 0.0
    support_entries_start: int = 0
    support_entries_end: int = 0
    consistent: bool = True
    divergences: int = 0
    results: list[UpdateResult] = field(default_factory=list)

    def record(self, result: UpdateResult) -> None:
        self.updates += 1
        self.removed += len(result.removed)
        self.added += len(result.added)
        self.migrated += len(result.migrated)
        self.transient += result.stats.get("transient", 0)
        self.duration_s += result.duration_s
        self.results.append(result)

    def row(self) -> list:
        """The standard table row the benches print."""
        return [
            self.engine,
            self.updates,
            self.removed,
            self.added,
            self.migrated,
            self.transient,
            self.support_entries_end,
            self.duration_s,
            "ok" if self.consistent else f"DIVERGED x{self.divergences}",
        ]


RUN_HEADERS = [
    "engine",
    "updates",
    "removed",
    "added",
    "migrated",
    "transient",
    "supports",
    "time_s",
    "oracle",
]


def run_sequence(
    engine: MaintenanceEngine,
    updates: Iterable[Update],
    verify: bool = False,
) -> RunResult:
    """Drive *engine* through *updates*; optionally verify every state."""
    run = RunResult(engine=engine.name)
    run.support_entries_start = engine.support_entry_count()
    for operation, subject in updates:
        result = engine.apply(operation, subject)
        run.record(result)
        if verify:
            oracle = compute_model(engine.db.program)
            if engine.model != oracle:
                run.consistent = False
                run.divergences += 1
    run.support_entries_end = engine.support_entry_count()
    return run


def compare_engines(
    program: Program,
    updates: Sequence[Update],
    engine_names: Sequence[str],
    verify: bool = True,
    engine_kwargs: dict | None = None,
) -> list[RunResult]:
    """Run the same update sequence through several fresh engines.

    Each engine starts from its own copy of *program*; sequences must only
    contain updates valid from that state (the generators guarantee it).
    """
    outcomes = []
    for name in engine_names:
        started = time.perf_counter()
        engine = create_engine(name, program, **(engine_kwargs or {}))
        build_s = time.perf_counter() - started
        run = run_sequence(engine, updates, verify=verify)
        run.engine = name  # registry name, not the class-level short name
        run.build_s = build_s
        outcomes.append(run)
    return outcomes
