"""Plain-text table rendering + artifact routing for the benchmark harness.

The paper reports no numeric tables (it is a 1987 theory paper), so the
benches print their measured counterparts in a uniform format that
EXPERIMENTS.md quotes directly.

Benches that persist artifacts (traces, expositions, throughput curves)
route them through :func:`artifact_path` so everything lands in one
gitignored directory (``benchmarks/out/`` by default, overridable with
``REPRO_BENCH_OUT``) instead of littering the working tree.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence


def artifact_dir() -> Path:
    """The benchmark artifact directory, created on first use."""
    root = Path(os.environ.get("REPRO_BENCH_OUT", "benchmarks/out"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def artifact_path(name: str) -> Path:
    """Where a benchmark artifact called *name* belongs."""
    return artifact_dir() / name


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with right-aligned numbers."""
    rendered_rows = [
        ["%.4g" % cell if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(fmt(row))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> None:
    print()
    print(format_table(headers, rows, title))
    print()
