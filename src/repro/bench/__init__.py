"""Benchmark harness utilities: sequence runner and table rendering."""

from .harness import RUN_HEADERS, RunResult, compare_engines, run_sequence
from .reporting import format_table, print_table

__all__ = [
    "RUN_HEADERS",
    "RunResult",
    "compare_engines",
    "format_table",
    "print_table",
    "run_sequence",
]
