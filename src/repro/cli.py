"""Interactive console for a maintained stratified database.

    python -m repro [program.dl] [--engine cascade]

Commands (also shown by ``help``)::

    + accepted(7).                insert a fact
    - accepted(7).                delete a fact
    + p(X) :- q(X), not r(X).     insert a rule (stratification-checked)
    - p(X) :- q(X), not r(X).     delete a rule
    ? accepted(X), not late(X)    query the maintained model
    check [json]                  static diagnostics for the program
    independence [json]           which relation updates commute
    why accepted(7)               a non-circular proof tree
    whynot accepted(9)            why an atom is absent
    model [relation]              show the model (or one relation)
    supports accepted(7)          the engine's support structures
    engine [name]                 show or switch the engine
    stats [json]                  totals for this session (json for scripts)
    telemetry [on|off]            toggle metrics + trace collection
    metrics                       Prometheus-style text exposition
    trace [json|chrome]           the last recorded update trace
    plan p(X) :- q(X), r(X).      a clause's join plan, estimated vs observed
    open DIR                      attach a durable store (journals updates)
    commit                        checkpoint the store (snapshot)
    undo [N] / redo [N]           rewind / re-apply N revisions
    log [json]                    the store's revision history
    close                         detach the store
    save FILE                     write the current program to FILE
    help / quit

Every update prints its UpdateResult summary, so the non-monotonic
consequences (insertions deleting, deletions inserting) are visible live.
With a store attached (``open``), every update is write-ahead journaled
and the session survives restarts: ``repro --store DIR`` reopens it.
``commit`` checkpoints through the v2 snapshot codec (columnar facts,
compact state) and reopening bulk-loads the model per relation, so
save/open round-trips scale with data volume, not per-tuple overhead.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .analysis import (
    ConflictGraph,
    Report,
    UpdateConeAnalyzer,
    analyze_program,
    analyze_source,
    independence_report,
    parse_transactions,
)
from .core.explain import ExplanationError, explain, explain_absence
from .core.registry import ENGINE_NAMES, create_engine
from .datalog.errors import DatalogError
from .datalog.parser import parse_atom, parse_clause
from .datalog.query import query as run_query
from .obs import OBS
from .store import StoreError, open_store


class Console:
    """State and command dispatch of the interactive session."""

    def __init__(
        self,
        program_text: str = "",
        engine_name: str = "cascade",
        store_path: Optional[str] = None,
    ):
        self.engine_name = engine_name
        self.store = None
        if store_path is not None:
            self.store = open_store(
                store_path, program=program_text, engine=engine_name
            )
            self.engine = self.store.engine
            # An existing store keeps its creation engine regardless of
            # the flag; reflect what is actually running.
            self.engine_name = self.store.engine_name
        else:
            self.engine = create_engine(engine_name, program_text)

    # each handler returns the text to print ------------------------------

    def do_update(self, line: str) -> str:
        target = self.store if self.store is not None else self.engine
        sign, body = line[0], line[1:].strip()
        if ":-" in body or "<-" in body:
            clause = parse_clause(body if body.endswith(".") else body + ".")
            if sign == "+":
                result = target.insert_rule(clause)
            else:
                result = target.delete_rule(clause)
        else:
            fact = parse_atom(body.rstrip("."))
            if sign == "+":
                result = target.insert_fact(fact)
            else:
                result = target.delete_fact(fact)
        return result.summary()

    def do_query(self, body: str) -> str:
        rows = run_query(self.engine.model, body)
        if not rows:
            return "no"
        if rows == [()]:
            return "yes"
        lines = [", ".join(repr(value) for value in row) for row in rows]
        return "\n".join(lines) + f"\n({len(rows)} rows)"

    def do_why(self, body: str) -> str:
        try:
            return explain(self.engine, body.rstrip(".")).pretty()
        except ExplanationError as error:
            return str(error)

    def do_whynot(self, body: str) -> str:
        atom = parse_atom(body.rstrip("."))
        if atom in self.engine.model:
            return f"{atom} IS in the model; use `why`"
        reasons = explain_absence(self.engine, atom)
        if not reasons:
            return f"no rule concludes {atom.relation}, and it is not asserted"
        return "\n".join(reason.pretty() for reason in reasons)

    def do_model(self, body: str) -> str:
        if body:
            facts = sorted(
                str(fact) for fact in self.engine.model.facts_of(body.strip())
            )
            return "\n".join(facts) if facts else f"({body.strip()} is empty)"
        return self.engine.model.pretty() or "(empty model)"

    def do_supports(self, body: str) -> str:
        atom = parse_atom(body.rstrip("."))
        if atom not in self.engine.model:
            return f"{atom} is not in the model"
        for accessor in ("records_of", "support_of"):
            method = getattr(self.engine, accessor, None)
            if method is not None:
                try:
                    value = method(atom)
                except KeyError:
                    continue
                if isinstance(value, (set, frozenset)):
                    return "\n".join(sorted(map(str, value)))
                return str(value)
        return f"the {self.engine.name} engine keeps no per-fact supports"

    def do_engine(self, body: str) -> str:
        name = body.strip()
        if not name:
            return (
                f"current: {self.engine_name}; available: "
                + ", ".join(ENGINE_NAMES)
            )
        if name not in ENGINE_NAMES:
            return f"unknown engine {name!r}; available: " + ", ".join(
                ENGINE_NAMES
            )
        if self.store is not None:
            return (
                "a store is attached; its engine is fixed at creation "
                "(`close` first)"
            )
        self.engine = create_engine(name, self.engine.db.program)
        self.engine_name = name
        return f"switched to {name} ({len(self.engine.model)} facts)"

    def do_stats(self, body: str) -> str:
        totals = self.engine.totals.as_dict()
        if body.strip() == "json":
            return json.dumps(
                {
                    "engine": self.engine_name,
                    "totals": totals,
                    "support_entries": self.engine.support_entry_count(),
                    "model_size": len(self.engine.model),
                },
                sort_keys=True,
            )
        rendered = ", ".join(f"{key}={value}" for key, value in totals.items())
        return (
            f"{rendered}\nsupport entries: "
            f"{self.engine.support_entry_count()}, model: "
            f"{len(self.engine.model)} facts"
        )

    # telemetry commands --------------------------------------------------

    def do_telemetry(self, body: str) -> str:
        choice = body.strip().lower()
        if choice == "on":
            OBS.enable()
            return "telemetry on"
        if choice == "off":
            OBS.disable()
            return "telemetry off"
        if choice:
            return "usage: telemetry [on|off]"
        return f"telemetry {'on' if OBS.enabled else 'off'}"

    def do_metrics(self, body: str) -> str:
        text = OBS.exposition()
        if not text:
            return "(no metrics recorded; `telemetry on` first)"
        return text.rstrip("\n")

    def do_trace(self, body: str) -> str:
        last = OBS.tracer.last
        if last is None:
            return "(no trace recorded; `telemetry on`, then run an update)"
        mode = body.strip().lower()
        if mode == "json":
            return json.dumps(last.to_dict(), sort_keys=True)
        if mode == "chrome":
            return json.dumps({"traceEvents": OBS.tracer.chrome_events()})
        if mode:
            return "usage: trace [json|chrome]"
        return last.pretty()

    def do_plan(self, body: str) -> str:
        text = body.strip()
        if not text:
            return "usage: plan HEAD :- BODY."
        clause = parse_clause(text if text.endswith(".") else text + ".")
        return self.engine.planner.explain(clause, self.engine.model)

    def do_check(self, body: str) -> str:
        report = self.engine.check()
        if body.strip() == "json":
            return report.to_json("<session>")
        return report.render("<session>")

    def do_independence(self, body: str) -> str:
        report = independence_report(self.engine.db.graph)
        if body.strip() == "json":
            return json.dumps(report.to_dict(), sort_keys=True)
        return report.summary()

    def do_save(self, body: str) -> str:
        path = body.strip()
        if not path:
            return "usage: save FILE"
        # Pin UTF-8: the store layer writes programs as UTF-8, and `save`
        # must round-trip non-ASCII constants under any locale.
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.engine.db.source_text())
        return f"wrote {len(self.engine.db.program)} clauses to {path}"

    # store commands ------------------------------------------------------

    def do_open(self, body: str) -> str:
        path = body.strip()
        if not path:
            return "usage: open DIR"
        if self.store is not None:
            return f"a store is already attached at {self.store.path}; `close` first"
        self.store = open_store(
            path,
            program=self.engine.db.source_text(),
            engine=self.engine_name,
        )
        self.engine = self.store.engine
        self.engine_name = self.store.engine_name
        return (
            f"store at {self.store.path}: engine {self.store.engine_name}, "
            f"revision {self.store.revision}, {len(self.engine.model)} facts"
        )

    def _need_store(self) -> Optional[str]:
        if self.store is None:
            return "no store attached; use `open DIR`"
        return None

    def do_commit(self, body: str) -> str:
        missing = self._need_store()
        if missing:
            return missing
        path = self.store.snapshot()
        return f"snapshot at revision {self.store.revision}: {path.name}"

    def do_undo(self, body: str) -> str:
        missing = self._need_store()
        if missing:
            return missing
        count = int(body.strip() or "1")
        revision = self.store.undo(count)
        self.engine = self.store.engine
        return f"at revision {revision} ({len(self.engine.model)} facts)"

    def do_redo(self, body: str) -> str:
        missing = self._need_store()
        if missing:
            return missing
        count = int(body.strip() or "1")
        revision = self.store.redo(count)
        self.engine = self.store.engine
        return f"at revision {revision} ({len(self.engine.model)} facts)"

    def do_log(self, body: str) -> str:
        missing = self._need_store()
        if missing:
            return missing
        if body.strip() == "json":
            return json.dumps(
                list(self.store.journal.records), sort_keys=True
            )
        lines = self.store.log()
        if not lines:
            return "(empty journal)"
        return "\n".join(lines)

    def do_close(self, body: str) -> str:
        missing = self._need_store()
        if missing:
            return missing
        path = self.store.path
        self.store.close()
        self.store = None
        return f"detached store at {path} (state stays in memory)"

    def do_help(self, body: str) -> str:
        return __doc__.split("Commands", 1)[1].split("::", 1)[1].strip("\n")

    def dispatch(self, line: str) -> Optional[str]:
        """Handle one input line; None means quit."""
        line = line.strip()
        if not line or line.startswith("%") or line.startswith("#"):
            return ""
        if line in ("quit", "exit"):
            return None
        if line.startswith(("+", "-")):
            return self.do_update(line)
        if line.startswith("?"):
            return self.do_query(line[1:].strip())
        command, _, rest = line.partition(" ")
        handler = getattr(self, f"do_{command}", None)
        if handler is None:
            return f"unknown command {command!r}; try `help`"
        return handler(rest)


def run_check(argv) -> int:
    """The ``repro check`` verb: lint programs, lint-style exit codes.

    Exit 0 when every target is clean (info diagnostics allowed), 1 when
    warnings were reported, 2 on errors (including unreadable files and
    parse failures, which surface as ``DL000``). ``--workloads`` self-lints
    every built-in :mod:`repro.workloads` program against its
    ``EXPECTED_DIAGNOSTICS`` annotation — a code that fires unexpectedly
    *or* an annotated code that no longer fires both fail the lint.
    """
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Static analysis of Datalog programs (codes DL000-DL013)",
    )
    parser.add_argument("files", nargs="*", help="program files to lint")
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    parser.add_argument(
        "--workloads",
        action="store_true",
        help="self-lint the built-in repro.workloads programs",
    )
    parser.add_argument(
        "--independence",
        action="store_true",
        help="also print the revision-independence report per target",
    )
    parser.add_argument(
        "--schedule",
        metavar="BATCH",
        default=None,
        help=(
            "transaction batch file (one `name: +fact(a). -fact(b).` "
            "line each): admit it against every checked program, adding "
            "the DL011-DL013 commutation diagnostics"
        ),
    )
    args = parser.parse_args(argv)
    if not args.files and not args.workloads:
        parser.error("nothing to check: give program files or --workloads")

    batch = None
    if args.schedule is not None:
        try:
            with open(args.schedule, encoding="utf-8") as handle:
                batch = parse_transactions(handle.read())
        except OSError as error:
            print(
                f"error: cannot read {args.schedule}: {error}",
                file=sys.stderr,
            )
            return 2
        except (DatalogError, ValueError) as error:
            print(
                f"error: bad batch file {args.schedule}: {error}",
                file=sys.stderr,
            )
            return 2

    targets: list[tuple[str, object, tuple]] = []  # (name, text-or-program, ignore)
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as handle:
                targets.append((path, handle.read(), ()))
        except OSError as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2
    stale_annotations: list[str] = []
    if args.workloads:
        from .workloads import EXPECTED_DIAGNOSTICS, named_programs

        for name, program in named_programs().items():
            expected = EXPECTED_DIAGNOSTICS.get(name, ())
            report = analyze_program(program)
            missing = sorted(set(expected) - set(report.codes()))
            if missing:
                stale_annotations.append(
                    f"{name}: annotated {', '.join(missing)} no longer fire"
                )
            targets.append((f"workload:{name}", program, expected))

    exit_code = 0
    payload = []
    for name, source, ignore in targets:
        if isinstance(source, str):
            report = analyze_source(source, ignore=ignore)
        else:
            report = analyze_program(source, ignore=ignore)
        graph = None
        if batch is not None and report.ok:
            try:
                graph = ConflictGraph.of_batch(
                    UpdateConeAnalyzer(source), batch
                )
            except (DatalogError, ValueError) as error:
                print(
                    f"error: cannot admit batch against {name}: {error}",
                    file=sys.stderr,
                )
                return 2
            report = Report(
                list(report.diagnostics) + graph.diagnostics()
            )
        if report.errors:
            exit_code = 2
        elif report.warnings and exit_code == 0:
            exit_code = 1
        if args.json:
            entry = report.to_dict(name)
            if args.independence:
                entry["independence"] = independence_report(source).to_dict()
            if graph is not None:
                entry["schedule"] = graph.to_dict()
            payload.append(entry)
        else:
            print(report.render(name))
            if args.independence:
                print(independence_report(source).summary())
            if graph is not None:
                print(graph.summary())
    if stale_annotations:
        exit_code = max(exit_code, 1)
        for line in stale_annotations:
            print(f"stale annotation — {line}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    return exit_code


def run_independence(argv) -> int:
    """The ``repro independence`` verb: commutation reports from a shell.

    Without ``--updates``, prints the relation-level
    :class:`~repro.analysis.IndependenceReport` of the program (cones,
    commuting pairs, negation-sensitive pairs, conflict witnesses,
    shards). With ``--updates BATCH`` — a transaction batch file, one
    ``name: +fact(a). -fact(b).`` line per transaction — prints the
    argument-level :class:`~repro.analysis.ConflictGraph` instead:
    pattern cones per transaction, witnessed conflicts, and the
    commuting-batch partition. Exit 0 when everything commutes, 1 when
    conflicts were found, 2 on unreadable or unparsable input.
    """
    parser = argparse.ArgumentParser(
        prog="repro independence",
        description=(
            "Revision-independence and transaction-commutation reports"
        ),
    )
    parser.add_argument("file", help="program file")
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    parser.add_argument(
        "--updates",
        metavar="BATCH",
        default=None,
        help=(
            "transaction batch file: report argument-level commutation "
            "of the batch instead of the relation-level view"
        ),
    )
    args = parser.parse_args(argv)
    try:
        with open(args.file, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        print(f"error: cannot read {args.file}: {error}", file=sys.stderr)
        return 2
    try:
        if args.updates is None:
            report = independence_report(text)
            if args.json:
                print(json.dumps(report.to_dict(), sort_keys=True))
            else:
                print(report.summary())
            return 0
        with open(args.updates, encoding="utf-8") as handle:
            batch = parse_transactions(handle.read())
        graph = ConflictGraph.of_batch(UpdateConeAnalyzer(text), batch)
    except OSError as error:
        print(f"error: cannot read {args.updates}: {error}", file=sys.stderr)
        return 2
    except (DatalogError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(graph.to_dict(), sort_keys=True))
    else:
        print(graph.summary())
        for diagnostic in graph.diagnostics():
            print(diagnostic.render(args.file))
    return 0 if all(
        graph.commutes(a, b)
        for i, a in enumerate(graph.names)
        for b in graph.names[i + 1 :]
    ) else 1


def run_serve(argv) -> int:
    """The ``repro serve`` verb: the concurrent revision service.

    Opens (or creates) a durable store and listens on a TCP port for
    newline-JSON sessions — see :mod:`repro.service.server` for the
    protocol. Many sessions submit transactions concurrently; the
    micro-batching writer admits them through the commutation scheduler
    and group-commits each batch with one journal fsync. Prints one
    ``serving on HOST:PORT`` line once the socket is bound (port 0 picks
    an ephemeral port), then runs until a ``shutdown`` op arrives.
    """
    import asyncio

    from .service import RevisionService
    from .service.server import serve
    from .store import open_store

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve one maintained store to many concurrent sessions",
    )
    parser.add_argument(
        "--store", required=True, metavar="DIR", help="durable store directory"
    )
    parser.add_argument(
        "--program",
        default=None,
        help="program file (required when creating a new store)",
    )
    parser.add_argument(
        "--engine",
        default="cascade",
        choices=ENGINE_NAMES,
        help="maintenance engine for a newly created store",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks an ephemeral port"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="parallel execution workers"
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="micro-batch gathering pause (0 disables)",
    )
    parser.add_argument(
        "--telemetry", action="store_true", help="collect metrics and traces"
    )
    args = parser.parse_args(argv)

    if args.telemetry:
        OBS.enable()
    text = ""
    if args.program:
        try:
            with open(args.program, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"error: cannot read {args.program}: {error}", file=sys.stderr)
            return 2
    try:
        store = open_store(args.store, program=text, engine=args.engine)
    except (DatalogError, StoreError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    def ready(server) -> None:
        print(f"serving on {server.host}:{server.port}", flush=True)

    with RevisionService(store, max_workers=args.workers) as service:
        try:
            asyncio.run(
                serve(
                    service,
                    host=args.host,
                    port=args.port,
                    batch_window=args.batch_window,
                    ready=ready,
                )
            )
        except KeyboardInterrupt:
            pass
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        return run_check(argv[1:])
    if argv and argv[0] == "independence":
        return run_independence(argv[1:])
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Maintained stratified database console (Apt & Pugin 1987)",
    )
    parser.add_argument("program", nargs="?", help="program file to load")
    parser.add_argument(
        "--engine",
        default="cascade",
        choices=ENGINE_NAMES,
        help="maintenance engine (default: cascade)",
    )
    parser.add_argument(
        "--command",
        "-c",
        action="append",
        default=None,
        help="run a command and exit (repeatable)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="attach a durable store (created from the program when new)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="collect metrics and traces from the start of the session",
    )
    args = parser.parse_args(argv)

    if args.telemetry:
        OBS.enable()

    text = ""
    if args.program:
        with open(args.program, encoding="utf-8") as handle:
            text = handle.read()
    try:
        console = Console(text, args.engine, store_path=args.store)
    except (DatalogError, StoreError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        f"repro console — {console.engine_name} engine, "
        f"{len(console.engine.model)} facts; `help` for commands"
    )

    if args.command:
        for command in args.command:
            try:
                output = console.dispatch(command)
            except (DatalogError, StoreError, ValueError, LookupError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 1
            if output:
                print(output)
        return 0

    while True:
        try:
            line = input("db> ")
        except EOFError:
            print()
            return 0
        try:
            output = console.dispatch(line)
        except (DatalogError, StoreError) as error:
            print(f"error: {error}")
            continue
        except (ValueError, LookupError) as error:
            print(f"error: {error}")
            continue
        if output is None:
            return 0
        if output:
            print(output)


if __name__ == "__main__":
    sys.exit(main())
