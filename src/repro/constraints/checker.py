"""Denial integrity constraints with transactional updates.

The paper delegates integrity constraint checking to Lloyd, Sonenberg and
Topor [LST] and keeps it out of scope; this module provides the minimal
machinery a database built on the maintenance engines needs in practice —
an extension, clearly marked as such in DESIGN.md.

A constraint is a *denial*: a rule body that must never be satisfiable in
the maintained model, written ``never(lit1, ..., litk)`` or parsed from the
conventional headless-rule syntax ``:- lit1, ..., litk.``. Checking a
constraint is evaluating its body against the model (the explicit
representation makes this cheap — one of the paper's arguments for it).

:class:`Transaction` wraps a batch of engine updates: all constraints are
re-checked after the batch and the engine is rolled back to a snapshot when
any is violated.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Sequence, Union

from ..core.base import MaintenanceEngine, Source
from ..datalog.atoms import Atom, Literal
from ..datalog.clauses import Clause
from ..datalog.errors import DatalogError, SafetyError
from ..datalog.evaluation import _iter_matches
from ..datalog.model import Model
from ..datalog.parser import _Parser, ParseError
from ..datalog.unify import substitute_args


class ConstraintViolation(DatalogError):
    """An integrity constraint is violated by the current model."""

    def __init__(self, constraint: "Constraint", witness: dict):
        self.constraint = constraint
        self.witness = witness
        rendered = ", ".join(
            f"{var} = {value!r}" for var, value in sorted(
                ((v.name, val) for v, val in witness.items())
            )
        )
        super().__init__(f"violated: {constraint} [{rendered or 'ground'}]")


class Constraint:
    """A denial constraint: its body must have no satisfying instance."""

    __slots__ = ("body", "name")

    def __init__(self, body: Sequence[Literal], name: str = ""):
        if not body:
            raise ValueError("a constraint needs at least one literal")
        self.body = tuple(body)
        self.name = name
        self._check_safety()

    def _check_safety(self) -> None:
        bound = {
            var
            for lit in self.body
            if lit.positive
            for var in lit.variables()
        }
        for lit in self.body:
            if lit.positive:
                continue
            unbound = [var for var in lit.variables() if var not in bound]
            if unbound:
                names = ", ".join(sorted(v.name for v in set(unbound)))
                raise SafetyError(
                    f"unsafe constraint {self}: variable(s) {names} of "
                    f"negative literal {lit} are unrestricted"
                )

    @classmethod
    def parse(cls, text: str, name: str = "") -> "Constraint":
        """Parse ``":- a(X), not b(X)."`` (leading ``:-`` optional)."""
        stripped = text.strip()
        if stripped.startswith(":-"):
            stripped = stripped[2:]
        if stripped.endswith("."):
            stripped = stripped[:-1]
        parser = _Parser(stripped + " .")
        body = [parser.parse_literal()]
        while parser._peek() is not None and parser._peek().kind == "COMMA":
            parser._next("COMMA")
            body.append(parser.parse_literal())
        trailing = parser._peek()
        if trailing is None or trailing.kind != "PERIOD":
            raise ParseError("malformed constraint body")
        return cls(body, name)

    def violations(self, model: Model) -> Iterable[dict]:
        """Yield one substitution per satisfying instance of the body."""
        probe = Clause(Atom("__constraint__"), self.body)
        for subst, _facts in _iter_matches(probe, model):
            blocked = False
            for lit in probe.negative_body:
                ground = substitute_args(lit.args, subst)
                if model.contains(lit.relation, ground):
                    blocked = True
                    break
            if not blocked:
                yield subst

    def is_satisfied(self, model: Model) -> bool:
        return next(iter(self.violations(model)), None) is None

    def __str__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return label + ":- " + ", ".join(str(lit) for lit in self.body) + "."

    def __repr__(self) -> str:
        return f"Constraint({self.body!r})"


class CheckReport(NamedTuple):
    """Outcome of checking a set of constraints against a model."""

    violations: tuple[tuple[Constraint, dict], ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def first_or_raise(self) -> None:
        if self.violations:
            constraint, witness = self.violations[0]
            raise ConstraintViolation(constraint, witness)


class ConstraintSet:
    """A named collection of denial constraints."""

    def __init__(self, constraints: Iterable[Union[Constraint, str]] = ()):
        self._constraints: list[Constraint] = []
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint: Union[Constraint, str]) -> Constraint:
        if isinstance(constraint, str):
            constraint = Constraint.parse(constraint)
        self._constraints.append(constraint)
        return constraint

    def __iter__(self):
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def check(self, model: Model, limit: int = 10) -> CheckReport:
        """Evaluate every constraint; collect up to *limit* witnesses each."""
        found: list[tuple[Constraint, dict]] = []
        for constraint in self._constraints:
            for count, witness in enumerate(constraint.violations(model)):
                if count >= limit:
                    break
                found.append((constraint, witness))
        return CheckReport(tuple(found))


class Transaction:
    """Apply a batch of updates atomically under integrity constraints.

    Snapshot-based: the engine's database, model and supports are rebuilt
    from the pre-transaction program on rollback. Usage::

        with Transaction(engine, constraints) as txn:
            txn.insert_fact("accepted(7)")
            txn.delete_fact("submitted(3)")
        # commits if all constraints hold, else raises ConstraintViolation
        # and leaves the engine untouched
    """

    def __init__(
        self,
        engine: MaintenanceEngine,
        constraints: Union[ConstraintSet, Iterable[Union[Constraint, str]]] = (),
    ):
        self.engine = engine
        self.constraints = (
            constraints
            if isinstance(constraints, ConstraintSet)
            else ConstraintSet(constraints)
        )
        self._snapshot = None
        self.results = []

    def __enter__(self) -> "Transaction":
        self._snapshot = self.engine.db.program.copy()
        self.results = []
        return self

    def insert_fact(self, fact: Union[Atom, str]):
        result = self.engine.insert_fact(fact)
        self.results.append(result)
        return result

    def delete_fact(self, fact: Union[Atom, str]):
        result = self.engine.delete_fact(fact)
        self.results.append(result)
        return result

    def insert_rule(self, rule: Union[Clause, str]):
        result = self.engine.insert_rule(rule)
        self.results.append(result)
        return result

    def delete_rule(self, rule: Union[Clause, str]):
        result = self.engine.delete_rule(rule)
        self.results.append(result)
        return result

    def apply(self, operation: str, subject: Source):
        result = self.engine.apply(operation, subject)
        self.results.append(result)
        return result

    def rollback(self) -> None:
        """Restore the engine to the pre-transaction program and model."""
        engine = self.engine
        engine.db = type(engine.db)(self._snapshot, engine.db.granularity)
        engine.rebuild()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.rollback()
            return False  # propagate the original error
        report = self.constraints.check(self.engine.model)
        if not report.ok:
            self.rollback()
            report.first_or_raise()
        return False
