"""Denial integrity constraints and transactional updates (extension).

The paper leaves constraint checking to [LST]; this package provides the
minimal denial-constraint machinery a user of the maintenance engines needs.
"""

from .checker import (
    CheckReport,
    Constraint,
    ConstraintSet,
    ConstraintViolation,
    Transaction,
)

__all__ = [
    "CheckReport",
    "Constraint",
    "ConstraintSet",
    "ConstraintViolation",
    "Transaction",
]
