"""repro.store — durable journaling, snapshots and atomic transactions.

The maintenance engines of :mod:`repro.core` revise a belief state in
memory; this package makes the revision history durable and reversible:

* :mod:`~repro.store.journal` — a write-ahead JSON-lines journal of every
  admitted update;
* :mod:`~repro.store.snapshot` — full engine-state checkpoints, so
  reopening costs *restore + replay tail* instead of a rebuild;
* :mod:`~repro.store.transaction` — atomic batches with rollback;
* :mod:`~repro.store.history` — replay, undo/redo and time-travel over the
  recorded revision sequence;
* :mod:`~repro.store.store` — the :class:`Store` facade tying it together;
* :mod:`~repro.store.serialize` — the stable tagged-JSON codec underneath.

Quickstart::

    from repro.store import open_store

    store = open_store("mydb", program="p(X) :- e(X), not q(X). e(1).")
    store.insert_fact("q(1)")
    with store.transaction():
        store.insert_fact("e(2)")
        store.insert_fact("e(3)")
    store.snapshot()
    store.undo(1)          # back before the transaction
    store.redo(1)          # ... and forward again

    store = open_store("mydb")   # later, or after a crash: same state
"""

from .history import ReplayError, materialize, replay
from .journal import Journal, JournalError, describe
from .serialize import SerializationError, decode, dumps, encode, loads
from .snapshot import (
    SnapshotError,
    best_snapshot,
    read_snapshot,
    snapshot_positions,
    write_snapshot,
)
from .store import Store, StoreError, open_store
from .transaction import Transaction, TransactionAbort, TransactionError

__all__ = [
    "Journal",
    "JournalError",
    "ReplayError",
    "SerializationError",
    "SnapshotError",
    "Store",
    "StoreError",
    "Transaction",
    "TransactionAbort",
    "TransactionError",
    "best_snapshot",
    "decode",
    "describe",
    "dumps",
    "encode",
    "loads",
    "materialize",
    "open_store",
    "read_snapshot",
    "replay",
    "snapshot_positions",
    "write_snapshot",
]
