"""The durable store: a maintained database with a journal on disk.

Directory layout::

    mydb/
      meta.json                 engine name + construction options
      journal.jsonl             write-ahead update journal (one revision/line)
      snapshot-00000000.json    base state (written at creation)
      snapshot-000000NN.json    later checkpoints (``Store.snapshot()``)

``Store.create`` builds the engine once and pins its state as snapshot 0;
``Store.open`` restores the newest snapshot and replays the journal tail,
so reopening never recomputes the model from scratch. Every update is
journaled *before* it is applied (write-ahead), transactions commit as one
record, and ``undo``/``redo`` move a cursor along the revision history —
the belief states of the paper's revision sequence, all addressable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

from ..core.base import MaintenanceEngine, _as_fact, _as_rule
from ..core.metrics import UpdateResult
from ..core.registry import ENGINE_NAMES, create_engine
from ..datalog.atoms import Atom
from ..datalog.clauses import Clause
from ..obs import OBS
from .history import materialize, replay
from .journal import Journal, commit_record, describe, update_record
from .snapshot import snapshot_name, snapshot_positions, write_snapshot
from .transaction import Transaction

META_NAME = "meta.json"
JOURNAL_NAME = "journal.jsonl"
META_FORMAT = 1


class StoreError(Exception):
    """Store-level misuse or on-disk inconsistency."""


class Store:
    """A maintained stratified database persisted in a directory."""

    def __init__(
        self,
        path: Path,
        engine_name: str,
        engine_kwargs: dict,
        engine: MaintenanceEngine,
        journal: Journal,
        revision: int,
        snapshot_every: int = 0,
    ):
        self.path = Path(path)
        self.engine_name = engine_name
        self.engine_kwargs = dict(engine_kwargs)
        self.engine = engine
        self.journal = journal
        self._revision = revision
        self.snapshot_every = snapshot_every
        self._transaction: Optional[Transaction] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path,
        program: str = "",
        engine: str = "cascade",
        snapshot_every: int = 0,
        **engine_kwargs,
    ) -> "Store":
        """Initialise a fresh store directory around *program*."""
        if engine not in ENGINE_NAMES:
            raise StoreError(
                f"unknown engine {engine!r}; known: {', '.join(ENGINE_NAMES)}"
            )
        path = Path(path)
        try:
            path.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as error:
            raise StoreError(
                f"cannot create a store at {path}: not a directory"
            ) from error
        if (path / META_NAME).exists():
            raise StoreError(f"{path} already contains a store; use open()")
        instance = create_engine(engine, program, **engine_kwargs)
        # meta.json is the commit point of creation: the base snapshot and
        # the journal must exist before it appears, or a crash in between
        # would leave a directory that open() rejects and create() refuses.
        write_snapshot(path, 0, instance.state_dict())
        journal = Journal(path / JOURNAL_NAME)
        if len(journal):  # leftovers of an interrupted creation
            journal.truncate(0)
        meta = {
            "format": META_FORMAT,
            "engine": engine,
            "engine_kwargs": engine_kwargs,
        }
        tmp = path / (META_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, sort_keys=True, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path / META_NAME)
        return cls(
            path, engine, engine_kwargs, instance, journal, 0, snapshot_every
        )

    @classmethod
    def open(cls, path, snapshot_every: int = 0) -> "Store":
        """Reopen an existing store: restore snapshot, replay journal tail.

        A journal record that fails to replay *at the head* is the crash
        artifact of a write-ahead append whose apply never ran to admission;
        it is truncated away, matching what the live process would have
        done. Failures elsewhere raise
        :class:`~repro.store.history.ReplayError`.
        """
        path = Path(path)
        meta_path = path / META_NAME
        if not meta_path.exists():
            raise StoreError(f"{path} is not a store (no {META_NAME})")
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        if meta.get("format") != META_FORMAT:
            raise StoreError(
                f"{path}: unsupported store format {meta.get('format')!r}"
            )
        journal = Journal(path / JOURNAL_NAME)
        engine, failed_seq = materialize(
            path,
            meta["engine"],
            journal,
            len(journal),
            engine_kwargs=meta.get("engine_kwargs") or {},
            tolerate_tail=True,
        )
        if failed_seq is not None:
            journal.truncate(failed_seq - 1)
        return cls(
            path,
            meta["engine"],
            meta.get("engine_kwargs") or {},
            engine,
            journal,
            len(journal),
            snapshot_every,
        )

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    @property
    def model(self):
        """The maintained model of the current revision."""
        return self.engine.model

    @property
    def revision(self) -> int:
        """The journal position the engine currently reflects."""
        return self._revision

    @property
    def head(self) -> int:
        """The newest revision in the journal (>= :attr:`revision`)."""
        return len(self.journal)

    def log(self) -> list[str]:
        """Human-readable journal, oldest first; ``*`` marks the cursor."""
        lines = []
        for record in self.journal:
            marker = "*" if record["seq"] == self._revision else " "
            lines.append(f"{marker}{describe(record)}")
        return lines

    # ------------------------------------------------------------------
    # Updates (write-ahead journaled)
    # ------------------------------------------------------------------

    def insert_fact(self, fact: Union[Atom, str]) -> UpdateResult:
        return self._apply("insert_fact", _as_fact(fact))

    def delete_fact(self, fact: Union[Atom, str]) -> UpdateResult:
        return self._apply("delete_fact", _as_fact(fact))

    def insert_rule(self, rule: Union[Clause, str]) -> UpdateResult:
        return self._apply("insert_rule", _as_rule(rule))

    def delete_rule(self, rule: Union[Clause, str]) -> UpdateResult:
        return self._apply("delete_rule", _as_rule(rule))

    def apply(self, operation: str, subject) -> UpdateResult:
        """Dispatch by operation name, mirroring ``MaintenanceEngine.apply``."""
        if operation in ("insert_fact", "delete_fact"):
            return self._apply(operation, _as_fact(subject))
        if operation in ("insert_rule", "delete_rule"):
            return self._apply(operation, _as_rule(subject))
        raise ValueError(f"unknown operation {operation!r}")

    def _apply(self, operation: str, subject) -> UpdateResult:
        self._check_open()
        if self._transaction is not None:
            # Inside a transaction: apply live, buffer for the commit
            # record; rollback restores the pre-transaction state.
            result = self.engine.apply(operation, subject)
            self._transaction._buffer(operation, subject)
            return result
        # Refuse an inadmissible update here, before the redo tail is
        # discarded and the write-ahead record lands — a rejected update
        # must leave both the journal and the undo history untouched.
        self.engine.db.admits(operation, subject)
        self._drop_redo_tail()
        seq = self.journal.append(update_record(operation, subject))
        try:
            result = self.engine.apply(operation, subject)
        except BaseException:
            # Backstop for failures past admission — take the write-ahead
            # record back out so journal == applied history.
            self.journal.truncate(seq - 1)
            raise
        self._revision = seq
        self._maybe_autosnapshot()
        return result

    def transaction(self) -> Transaction:
        """Start an atomic batch; see :mod:`repro.store.transaction`."""
        self._check_open()
        return Transaction(self)

    def _commit_transaction(self, updates) -> None:
        """Journal an already-applied transaction batch as one revision."""
        self._drop_redo_tail()
        self._revision = self.journal.append(commit_record(updates))
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_txn_commits_total",
                "Transactions committed as single journal revisions",
            ).inc()
        self._maybe_autosnapshot()

    def commit_batch(self, transactions) -> list[int]:
        """Journal several already-applied transaction batches at once.

        *transactions* is a sequence of update lists (each the
        ``(operation, subject)`` pairs of one transaction, in order). The
        commit records land with ONE journal fsync (group commit) and one
        redo-tail check instead of one each — the concurrent service's
        durability path. The engine must already reflect every update;
        this only makes them durable and advances the revision cursor.
        """
        self._check_open()
        if self._transaction is not None:
            raise StoreError("cannot group-commit inside a transaction")
        transactions = list(transactions)
        if not transactions:
            return []
        self._drop_redo_tail()
        seqs = self.journal.append_many(
            commit_record(updates) for updates in transactions
        )
        self._revision = seqs[-1]
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_txn_commits_total",
                "Transactions committed as single journal revisions",
            ).inc(len(seqs))
            OBS.metrics.counter(
                "repro_txn_group_commits_total",
                "Group commits (one fsync covering several transactions)",
            ).inc()
        self._maybe_autosnapshot()
        return seqs

    def _drop_redo_tail(self) -> None:
        if self._revision < len(self.journal):
            # Snapshots above the cut describe revisions that no longer
            # exist; new records will reuse those seq numbers, so a stale
            # snapshot would poison a later restore. Unlink them BEFORE
            # truncating the journal: a crash in between then leaves a
            # missing snapshot (harmless — restore falls back to an older
            # one) rather than a stale one (silent wrong state).
            for seq in snapshot_positions(self.path):
                if seq > self._revision:
                    (self.path / snapshot_name(seq)).unlink()
            self.journal.truncate(self._revision)

    def _maybe_autosnapshot(self) -> None:
        if (
            self.snapshot_every
            and self._revision % self.snapshot_every == 0
        ):
            self.snapshot()

    # ------------------------------------------------------------------
    # Snapshots and time travel
    # ------------------------------------------------------------------

    def snapshot(self) -> Path:
        """Checkpoint the current state; reopening starts from here."""
        self._check_open()
        if self._transaction is not None:
            raise StoreError("cannot snapshot inside a transaction")
        return write_snapshot(self.path, self._revision, self.engine.state_dict())

    def undo(self, n: int = 1) -> int:
        """Rewind *n* revisions; the journal keeps the tail for redo.

        Returns the new revision. The engine state is materialized from the
        best snapshot at-or-below the target plus a journal-prefix replay —
        contraction over the recorded history, in AGM terms.
        """
        return self.travel(self._revision - n)

    def redo(self, n: int = 1) -> int:
        """Re-apply *n* previously undone revisions."""
        self._check_open()
        if self._transaction is not None:
            raise StoreError("cannot redo inside a transaction")
        target = self._revision + n
        if n < 0 or target > len(self.journal):
            raise StoreError(
                f"cannot redo {n} from revision {self._revision}; "
                f"journal head is {len(self.journal)}"
            )
        replay(self.engine, self.journal.records[self._revision : target])
        self._revision = target
        return self._revision

    def travel(self, revision: int) -> int:
        """Materialize the belief state as of *revision* (0 = initial)."""
        self._check_open()
        if self._transaction is not None:
            raise StoreError("cannot time-travel inside a transaction")
        if revision < 0 or revision > len(self.journal):
            raise StoreError(
                f"revision {revision} outside journal range "
                f"0..{len(self.journal)}"
            )
        if revision == self._revision:
            return self._revision
        if revision > self._revision:
            if OBS.enabled:
                OBS.metrics.counter(
                    "repro_travel_total", "Time-travel operations",
                    direction="redo",
                ).inc()
            return self.redo(revision - self._revision)
        with OBS.span("store:travel") as span:
            if span:
                span.set("from", self._revision)
                span.set("to", revision)
            if OBS.enabled:
                OBS.metrics.counter(
                    "repro_travel_total", "Time-travel operations",
                    direction="undo",
                ).inc()
            engine, _ = materialize(
                self.path,
                self.engine_name,
                self.journal,
                revision,
                engine_kwargs=self.engine_kwargs,
            )
            self.engine = engine
            self._revision = revision
        return self._revision

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError("store is closed")

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (
            f"Store({str(self.path)!r}, engine={self.engine_name!r}, "
            f"revision={self._revision}/{len(self.journal)})"
        )


def open_store(
    path,
    program: Optional[str] = None,
    engine: str = "cascade",
    snapshot_every: int = 0,
    **engine_kwargs,
) -> Store:
    """Open the store at *path*, creating it first when none exists.

    *program* and the engine options only matter at creation time; an
    existing store keeps the engine it was created with.
    """
    path = Path(path)
    if (path / META_NAME).exists():
        return Store.open(path, snapshot_every=snapshot_every)
    return Store.create(
        path,
        program or "",
        engine,
        snapshot_every=snapshot_every,
        **engine_kwargs,
    )
