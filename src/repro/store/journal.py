"""The write-ahead update journal: one JSON line per admitted revision.

The journal is the durable form of the belief-revision sequence the paper's
model implies: every admitted ``insert_fact`` / ``delete_fact`` /
``insert_rule`` / ``delete_rule`` is appended *before* the engine applies
it, and a transaction's batch lands as a single ``commit`` record. Replaying
the journal over a snapshot (or the empty database) reconstructs any belief
state in the history — which is what crash recovery, ``undo`` and
time-travel all reduce to.

Record shapes (all values JSON, subjects encoded by
:mod:`repro.store.serialize`)::

    {"seq": 3, "kind": "update", "op": "insert_fact",
     "subject": {...}, "text": "accepted(7)"}
    {"seq": 4, "kind": "commit",
     "updates": [{"op": ..., "subject": ..., "text": ...}, ...]}

``seq`` numbers are 1-based and dense; truncation (rolling back a failed
apply, or dropping the redo tail after an undo) rewrites the file
atomically via a temp file + rename.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterator

from ..obs import OBS
from .serialize import decode, encode


class JournalError(Exception):
    """Raised on a corrupt or inconsistent journal file."""


def update_record(operation: str, subject) -> dict:
    """Build the journal payload of a single update (without its seq)."""
    return {
        "kind": "update",
        "op": operation,
        "subject": encode(subject),
        "text": str(subject),
    }


def commit_record(updates) -> dict:
    """Build the payload of a transaction commit: one revision, many updates."""
    return {
        "kind": "commit",
        "updates": [
            {"op": operation, "subject": encode(subject), "text": str(subject)}
            for operation, subject in updates
        ],
    }


def updates_of(record: dict) -> list[tuple[str, object]]:
    """The (operation, subject) pairs a record replays to, in order."""
    if record["kind"] == "update":
        return [(record["op"], decode(record["subject"]))]
    if record["kind"] == "commit":
        return [
            (entry["op"], decode(entry["subject"]))
            for entry in record["updates"]
        ]
    raise JournalError(f"unknown journal record kind {record['kind']!r}")


def describe(record: dict) -> str:
    """One human-readable line per record, for ``log`` views."""
    if record["kind"] == "update":
        return f"{record['seq']:>4}  {record['op']}  {record['text']}"
    parts = ", ".join(
        f"{entry['op']} {entry['text']}" for entry in record["updates"]
    )
    return f"{record['seq']:>4}  commit[{len(record['updates'])}]  {parts}"


class Journal:
    """An append-only JSON-lines file of sequenced revision records."""

    def __init__(self, path):
        self.path = Path(path)
        self._records: list[dict] = []
        if self.path.exists():
            self._load()
        else:
            self.path.touch()

    def _load(self) -> None:
        lines = [
            (number, line.strip())
            for number, line in enumerate(
                self.path.read_text(encoding="utf-8").splitlines(), start=1
            )
            if line.strip()
        ]
        for position, (number, line) in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                # A torn final line is the expected crash artifact: the
                # process died mid-append, so the record never governed an
                # applied update. Drop it and continue from the intact
                # prefix; anything torn *before* the end is real corruption.
                if position == len(lines) - 1:
                    self.truncate(len(self._records))
                    return
                raise JournalError(
                    f"{self.path}:{number}: corrupt journal line"
                ) from error
            expected = len(self._records) + 1
            if record.get("seq") != expected:
                raise JournalError(
                    f"{self.path}:{number}: expected seq {expected}, "
                    f"got {record.get('seq')!r}"
                )
            self._records.append(record)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._records)

    @property
    def records(self) -> tuple[dict, ...]:
        return tuple(self._records)

    def record(self, seq: int) -> dict:
        return self._records[seq - 1]

    def append(self, payload: dict) -> int:
        """Durably append *payload*, assigning the next seq. Returns it."""
        record = dict(payload)
        record["seq"] = len(self._records) + 1
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        started = time.perf_counter() if OBS.enabled else 0.0
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        if OBS.enabled:
            elapsed = time.perf_counter() - started
            metrics = OBS.metrics
            metrics.counter(
                "repro_journal_appends_total",
                "Durable journal appends (write + flush + fsync)",
            ).inc()
            metrics.counter(
                "repro_journal_bytes_total",
                "Bytes appended to the journal",
            ).inc(len(line.encode("utf-8")) + 1)
            metrics.histogram(
                "repro_journal_append_seconds",
                "Latency of one durable journal append",
            ).observe(elapsed)
            span = OBS.tracer.current
            if span is not None:
                span.event(
                    "journal:append", seq=record["seq"],
                    bytes=len(line) + 1, seconds=elapsed,
                )
        self._records.append(record)
        return record["seq"]

    def append_many(self, payloads) -> list[int]:
        """Durably append several payloads with ONE write + flush + fsync.

        This is the group-commit primitive: a batch of transaction commit
        records costs one disk sync instead of one per record, which is
        where most of a small transaction's latency lives. The records
        land contiguously (dense seqs, submission order); a torn tail is
        recovered exactly like a torn single append.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        records = []
        lines = []
        next_seq = len(self._records) + 1
        for offset, payload in enumerate(payloads):
            record = dict(payload)
            record["seq"] = next_seq + offset
            records.append(record)
            lines.append(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
        blob = "\n".join(lines) + "\n"
        started = time.perf_counter() if OBS.enabled else 0.0
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        if OBS.enabled:
            elapsed = time.perf_counter() - started
            metrics = OBS.metrics
            metrics.counter(
                "repro_journal_appends_total",
                "Durable journal appends (write + flush + fsync)",
            ).inc(len(records))
            metrics.counter(
                "repro_journal_group_commits_total",
                "Batched journal appends (one fsync, many records)",
            ).inc()
            metrics.counter(
                "repro_journal_bytes_total",
                "Bytes appended to the journal",
            ).inc(len(blob.encode("utf-8")))
            metrics.histogram(
                "repro_journal_append_seconds",
                "Latency of one durable journal append",
            ).observe(elapsed)
            span = OBS.tracer.current
            if span is not None:
                span.event(
                    "journal:append_many", first_seq=records[0]["seq"],
                    records=len(records), bytes=len(blob), seconds=elapsed,
                )
        self._records.extend(records)
        return [record["seq"] for record in records]

    def truncate(self, keep: int) -> None:
        """Keep the first *keep* records, atomically rewriting the file."""
        if keep < 0 or keep > len(self._records):
            raise JournalError(
                f"cannot truncate to {keep} of {len(self._records)} records"
            )
        self._records = self._records[:keep]
        tmp = self.path.with_suffix(".jsonl.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def __repr__(self) -> str:
        return f"Journal({str(self.path)!r}, {len(self._records)} records)"
