"""Snapshots: the full engine state serialized at one journal position.

A snapshot file holds the engine's :meth:`~repro.core.base.MaintenanceEngine.
state_dict` — program, model, and the engine-specific support structures —
encoded by :mod:`repro.store.serialize`, together with the journal sequence
number it corresponds to. Reopening a store then costs *restore the newest
snapshot at-or-below the target revision, replay the journal tail* instead
of a from-scratch ``rebuild()``; the replay-vs-rebuild benchmark (E15)
measures the difference.

Snapshot files are named ``snapshot-<seq:08d>.json`` so every checkpoint in
the history remains addressable (time-travel needs the older ones, not just
the newest) and are written atomically via temp file + rename.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Optional

from .serialize import FORMAT_VERSION, decode, encode_tabled

_NAME_RE = re.compile(r"^snapshot-(\d{8})\.json$")


class SnapshotError(Exception):
    """Raised on a missing or malformed snapshot file."""


def snapshot_name(seq: int) -> str:
    return f"snapshot-{seq:08d}.json"


def write_snapshot(directory, seq: int, state: dict) -> Path:
    """Atomically write *state* as the snapshot at journal position *seq*."""
    directory = Path(directory)
    payload = {
        "format": FORMAT_VERSION,
        "seq": seq,
        "state": encode_tabled(state),
    }
    target = directory / snapshot_name(seq)
    tmp = target.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    return target


def read_snapshot(path) -> tuple[int, dict]:
    """Read a snapshot file; returns ``(seq, state_dict)``."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise SnapshotError(f"cannot read snapshot {path}: {error}") from error
    if payload.get("format") != FORMAT_VERSION:
        raise SnapshotError(
            f"{path}: unsupported snapshot format {payload.get('format')!r}"
        )
    return payload["seq"], decode(payload["state"])


def snapshot_positions(directory) -> list[int]:
    """The journal positions with a snapshot on disk, ascending."""
    directory = Path(directory)
    positions = []
    if directory.is_dir():
        for entry in directory.iterdir():
            match = _NAME_RE.match(entry.name)
            if match:
                positions.append(int(match.group(1)))
    return sorted(positions)


def best_snapshot(directory, revision: int) -> Optional[Path]:
    """The newest snapshot at-or-below *revision*, or None."""
    candidates = [
        seq for seq in snapshot_positions(directory) if seq <= revision
    ]
    if not candidates:
        return None
    return Path(directory) / snapshot_name(max(candidates))
