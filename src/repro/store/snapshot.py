"""Snapshots: the full engine state serialized at one journal position.

A snapshot file holds the engine's :meth:`~repro.core.base.MaintenanceEngine.
state_dict` — program, model, and the engine-specific support structures —
encoded by :mod:`repro.store.serialize`, together with the journal sequence
number it corresponds to. Reopening a store then costs *restore the newest
snapshot at-or-below the target revision, replay the journal tail* instead
of a from-scratch ``rebuild()``; the replay-vs-rebuild benchmark (E15)
measures the difference.

Snapshot files are named ``snapshot-<seq:08d>.json`` so every checkpoint in
the history remains addressable (time-travel needs the older ones, not just
the newest) and are written atomically via temp file + rename.

Format version 2 splits the model out of the tabled state into a compact
columnar ``"model"`` section (:func:`~repro.store.serialize.
encode_relations`); everything else — program, supports, counters — stays
in the interned ``"state"`` encoding. Version-1 files (flat tagged fact
tuple inside the state) read transparently; :func:`write_snapshot` can
still produce them for compatibility tests.
"""

from __future__ import annotations

import gc
import json
import os
import re
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

from ..obs import OBS

from .serialize import (
    FORMAT_VERSION,
    decode,
    decode_compact,
    decode_relations,
    encode_compact_tabled,
    encode_relations,
    encode_tabled,
    facts_to_relation_data,
    relation_data_to_facts,
)

_NAME_RE = re.compile(r"^snapshot-(\d{8})\.json$")


class SnapshotError(Exception):
    """Raised on a missing or malformed snapshot file."""


@contextmanager
def _gc_paused():
    """Pause garbage collection for the duration of a snapshot decode.

    Decoding a support-heavy snapshot allocates on the order of a million
    containers in one burst; with a large live heap the collector's
    generational passes over it dominate the restore time. The decode
    builds (acyclic) fresh structure only, so pausing collection for its
    bounded duration is safe — anything cyclic is collected as usual once
    collection resumes.
    """
    enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if enabled:
            gc.enable()


def snapshot_name(seq: int) -> str:
    return f"snapshot-{seq:08d}.json"


def write_snapshot(
    directory, seq: int, state: dict, format_version: int = FORMAT_VERSION
) -> Path:
    """Atomically write *state* as the snapshot at journal position *seq*.

    *format_version* defaults to the current format (2: columnar model
    section); passing 1 writes the legacy *layout* — the flat fact tuple
    inside the tabled state — which is how the read-compat tests
    cross-check the two codecs. (Genuinely old files may carry extra
    state keys, e.g. the since-removed derivations counter; the reader
    tolerates them.)
    """
    directory = Path(directory)
    with OBS.span("snapshot:write") as span:
        encode_started = time.perf_counter() if OBS.enabled else 0.0
        if format_version == 1:
            legacy = dict(state)
            legacy["model"] = relation_data_to_facts(state["model"])
            with _gc_paused():
                payload = {
                    "format": 1,
                    "seq": seq,
                    "state": encode_tabled(legacy),
                }
        elif format_version == FORMAT_VERSION:
            rest = {
                key: value for key, value in state.items() if key != "model"
            }
            with _gc_paused():
                payload = {
                    "format": FORMAT_VERSION,
                    "seq": seq,
                    "state": encode_compact_tabled(rest),
                    "model": encode_relations(state["model"]),
                }
        else:
            raise SnapshotError(
                f"cannot write snapshot format {format_version!r}"
            )
        if OBS.enabled:
            OBS.metrics.histogram(
                "repro_snapshot_encode_seconds",
                "Time to encode an engine state for a snapshot",
            ).observe(time.perf_counter() - encode_started)
        target = directory / snapshot_name(seq)
        tmp = target.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
            if OBS.enabled:
                size = handle.tell()
                OBS.metrics.counter(
                    "repro_snapshot_bytes_total",
                    "Bytes written by snapshot files",
                ).inc(size)
                if span:
                    span.set("seq", seq)
                    span.set("bytes", size)
        os.replace(tmp, target)
    return target


def read_snapshot(path) -> tuple[int, dict]:
    """Read a snapshot file; returns ``(seq, state_dict)``."""
    path = Path(path)
    started = time.perf_counter() if OBS.enabled else 0.0
    try:
        with _gc_paused():
            payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise SnapshotError(f"cannot read snapshot {path}: {error}") from error
    fmt = payload.get("format")
    if fmt == 1:
        # Legacy layout: the model is a flat tagged fact tuple inside the
        # state; regroup it so every consumer sees the columnar form.
        with _gc_paused():
            state = decode(payload["state"])
        state["model"] = facts_to_relation_data(state["model"])
    elif fmt == FORMAT_VERSION:
        if "model" not in payload:
            raise SnapshotError(f"{path}: v2 snapshot missing model section")
        with _gc_paused():
            state = decode_compact(payload["state"])
            state["model"] = decode_relations(payload["model"])
    else:
        raise SnapshotError(
            f"{path}: unsupported snapshot format {fmt!r}"
        )
    if OBS.enabled:
        OBS.metrics.histogram(
            "repro_snapshot_decode_seconds",
            "Time to read and decode a snapshot file",
        ).observe(time.perf_counter() - started)
    return payload["seq"], state


def snapshot_positions(directory) -> list[int]:
    """The journal positions with a snapshot on disk, ascending."""
    directory = Path(directory)
    positions = []
    if directory.is_dir():
        for entry in directory.iterdir():
            match = _NAME_RE.match(entry.name)
            if match:
                positions.append(int(match.group(1)))
    return sorted(positions)


def best_snapshot(directory, revision: int) -> Optional[Path]:
    """The newest snapshot at-or-below *revision*, or None."""
    candidates = [
        seq for seq in snapshot_positions(directory) if seq <= revision
    ]
    if not candidates:
        return None
    return Path(directory) / snapshot_name(max(candidates))
