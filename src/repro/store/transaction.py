"""Atomic transactions: many updates, one revision, all-or-nothing.

The paper treats each update as one belief-revision step; a transaction
widens the step to a batch while keeping the all-or-nothing contract a
database expects::

    with store.transaction() as txn:
        store.insert_fact("submitted(9)")
        store.delete_fact("accepted(2)")
        # raise, or txn.abort(), to roll everything back

On entry the engine's state is pinned in memory
(:meth:`~repro.core.base.MaintenanceEngine.checkpoint` — a copy-on-write
snapshot of the model and support arena, near O(1) to take); updates
issued inside the block apply to the live engine immediately (queries see
the intermediate states) but are buffered rather than journaled. On a
clean exit the whole batch is journaled as a single ``commit`` record
(which replays through the engine's batch path on reopen); on any
exception — including an explicit :meth:`Transaction.abort` — the engine
:meth:`~repro.core.base.MaintenanceEngine.restore`\\ s the checkpoint, so
a failure mid-batch leaves the database exactly as it was before the
transaction began. Both directions are cheap: ``BEGIN`` shares the live
containers instead of deep-copying them, and rollback re-adopts them
wholesale instead of re-adding fact by fact.
"""

from __future__ import annotations

from typing import Optional


class TransactionError(Exception):
    """Misuse of the transaction API (nesting, reuse, ...)."""


class TransactionAbort(Exception):
    """Control-flow exception raised by :meth:`Transaction.abort`.

    It unwinds the ``with`` block; ``Transaction.__exit__`` rolls the
    engine back and suppresses it, so an aborted transaction is not an
    error at the call site.
    """


class Transaction:
    """One atomic batch of updates against a :class:`~repro.store.Store`."""

    def __init__(self, store):
        self._store = store
        self._saved: Optional[dict] = None
        self._updates: list[tuple[str, object]] = []
        self._active = False
        self._finished = False

    @property
    def active(self) -> bool:
        return self._active

    @property
    def updates(self) -> tuple[tuple[str, object], ...]:
        """The (operation, subject) pairs buffered so far."""
        return tuple(self._updates)

    def __enter__(self) -> "Transaction":
        if self._finished or self._active:
            raise TransactionError("a Transaction object cannot be reused")
        if self._store._transaction is not None:
            raise TransactionError("transactions do not nest")
        self._saved = self._store.engine.checkpoint()
        self._store._transaction = self
        self._active = True
        return self

    def _buffer(self, operation: str, subject) -> None:
        self._updates.append((operation, subject))

    def abort(self) -> None:
        """Abandon the transaction: rolls back and exits the with-block."""
        raise TransactionAbort()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._active = False
        self._finished = True
        self._store._transaction = None
        if exc_type is None:
            if self._updates:
                self._store._commit_transaction(self._updates)
            return False
        # Any exception — abort or failure mid-batch — restores the exact
        # pre-transaction state, journal untouched.
        self._store.engine.restore(self._saved)
        return exc_type is TransactionAbort
