"""Stable JSON encoding of the engine state: terms, clauses, supports.

Snapshots and journal records must round-trip *exactly* — restoring a
snapshot has to yield the very model and support structures the live engine
held — and must be byte-deterministic, so that two equal states produce
identical files. Both properties come from one tagged encoding:

* every composite object becomes a JSON object whose ``"$"`` key names its
  type (atom, clause, support record, set, tuple, ...);
* scalars (str, int, float, bool, None) pass through unchanged — the
  constants of the function-free language are exactly the JSON scalars plus
  arbitrary hashables, and the uncommon hashables (tuples) are tagged;
* unordered containers (sets, frozensets, dicts with atom keys) are written
  sorted by their members' canonical JSON dump.

The codec knows every support form of the paper's solutions
(:mod:`repro.core.supports`), so one pair of functions serves all engines.

Derived per-relation state — hash indexes and the planner's per-column
distinct-value statistics — is deliberately *not* serialized: a snapshot
records the sorted fact list only, and restoring re-adds each fact through
:meth:`~repro.datalog.relations.Relation.add`, which rebuilds the
statistics deterministically (indexes refill lazily on first probe). The
property tests assert the restored distinct counts equal the live
engine's, so a reopened store plans joins exactly as the live one did.
"""

from __future__ import annotations

import json
from typing import Any

from ..datalog.atoms import Atom, Literal
from ..datalog.clauses import Clause
from ..datalog.terms import Variable
from ..core.supports import (
    FactRecord,
    PairSupport,
    PairedRecord,
    RuleRecord,
    SetOfSetsSupport,
    Signed,
)

FORMAT_VERSION = 1

_SCALARS = (str, int, float, bool, type(None))


class SerializationError(ValueError):
    """Raised when a value cannot be encoded or decoded."""


def encode(obj: Any) -> Any:
    """Turn *obj* into a JSON-serializable structure (deterministically).

    The flat form: every occurrence is expanded in place. For large
    structures with shared substructure use :func:`encode_tabled`.
    """
    return _encode_with_refs(obj, _NO_INTERNING)


_NO_INTERNING: dict = {}  # the empty ref table: nothing is shared


def _canon(encoded: Any) -> str:
    return json.dumps(encoded, sort_keys=True)


_CONSTRUCTORS = {
    "var": lambda d: Variable(d["name"]),
    "atom": lambda d: Atom(d["rel"], tuple(d["args"])),
    "lit": lambda d: Literal(d["atom"], d["pos"]),
    "clause": lambda d: Clause(d["head"], tuple(d["body"])),
    "signed": lambda d: Signed(d["sign"], d["rel"]),
    "pair": lambda d: PairSupport(d["pos"], d["neg"]),
    "sos": lambda d: SetOfSetsSupport(d["pos"], d["neg"]),
    "paired": lambda d: PairedRecord(d["pos"], d["neg"]),
    "rule_record": lambda d: RuleRecord(d["rule"], d["pos"], d["neg"]),
    "fact_record": lambda d: FactRecord(d["rule"], d["pos"], d["neg"]),
    "tuple": lambda d: tuple(d["items"]),
    "fset": lambda d: frozenset(d["items"]),
    "set": lambda d: set(d["items"]),
    "list": lambda d: d["items"],
    "map": lambda d: {key: value for key, value in d["items"]},
}


def decode(data: Any, _table=None) -> Any:
    """Inverse of :func:`encode` / :func:`encode_tabled`.

    Children are decoded first, then the ``"$"`` tag picks the
    constructor; a ``ref`` node resolves through the enclosing ``tabled``
    wrapper's table.
    """
    if isinstance(data, _SCALARS):
        return data
    if isinstance(data, list):  # only produced inside tagged containers
        return [decode(item, _table) for item in data]
    if isinstance(data, dict):
        tag = data.get("$")
        if tag == "tabled":
            table = [decode(entry) for entry in data["table"]]
            return decode(data["root"], table)
        if tag == "ref":
            if _table is None:
                raise SerializationError("ref outside a tabled document")
            return _table[data["i"]]
        constructor = _CONSTRUCTORS.get(tag)
        if constructor is None:
            raise SerializationError(f"unknown tag {tag!r} in {data!r}")
        children = {
            key: decode(value, _table)
            for key, value in data.items()
            if key != "$"
        }
        return constructor(children)
    raise SerializationError(f"cannot decode {data!r}")


# ----------------------------------------------------------------------
# Interned encoding: share repeated substructures through a table
# ----------------------------------------------------------------------
#
# Engine states repeat the same immutable objects thousands of times — a
# cascade snapshot holds one RuleRecord (with its full clause) per
# (fact, rule) pair, a fact-level snapshot cites the same body atoms in
# record after record. ``encode_tabled`` counts repeated hashable objects,
# expands each distinct one exactly once in a content-sorted table, and
# replaces every occurrence in the body with ``{"$": "ref", "i": k}``.
# Because the table is sorted by its entries' canonical expansion, equal
# states still produce identical bytes.

_INTERNABLE = (
    Atom,
    Literal,
    Clause,
    Signed,
    PairSupport,
    PairedRecord,
    RuleRecord,
    FactRecord,
    frozenset,
)


def _collect(obj: Any, counts: dict) -> None:
    """Count occurrences of internable objects reachable from *obj*."""
    if isinstance(obj, _INTERNABLE):
        seen = counts.get(obj, 0)
        counts[obj] = seen + 1
        if seen:  # children already counted on first encounter
            return
    if isinstance(obj, _SCALARS) or isinstance(obj, Variable):
        return
    if isinstance(obj, Atom):
        for term in obj.args:
            _collect(term, counts)
    elif isinstance(obj, Literal):
        _collect(obj.atom, counts)
    elif isinstance(obj, Clause):
        _collect(obj.head, counts)
        for lit in obj.body:
            _collect(lit, counts)
    elif isinstance(obj, Signed):
        pass
    elif isinstance(obj, (PairSupport, PairedRecord)):
        _collect(obj[0], counts)
        _collect(obj[1], counts)
    elif isinstance(obj, SetOfSetsSupport):
        _collect(obj.pos, counts)
        _collect(obj.neg, counts)
    elif isinstance(obj, (RuleRecord, FactRecord)):
        if obj.rule is not None:
            _collect(obj.rule, counts)
        _collect(obj[1], counts)
        _collect(obj[2], counts)
    elif isinstance(obj, (tuple, list, set, frozenset)):
        for item in obj:
            _collect(item, counts)
    elif isinstance(obj, dict):
        for key, value in obj.items():
            _collect(key, counts)
            _collect(value, counts)
    else:
        raise SerializationError(
            f"cannot encode {type(obj).__name__}: {obj!r}"
        )


def _encode_with_refs(obj: Any, index: dict) -> Any:
    """Like :func:`encode`, but table objects become references."""
    if isinstance(obj, _INTERNABLE):
        slot = index.get(obj)
        if slot is not None:
            return {"$": "ref", "i": slot}
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, float)):
        return obj
    if isinstance(obj, str):
        return obj
    if isinstance(obj, Variable):
        return {"$": "var", "name": obj.name}
    if isinstance(obj, Atom):
        return {
            "$": "atom",
            "rel": obj.relation,
            "args": [_encode_with_refs(t, index) for t in obj.args],
        }
    if isinstance(obj, Literal):
        return {
            "$": "lit",
            "atom": _encode_with_refs(obj.atom, index),
            "pos": obj.positive,
        }
    if isinstance(obj, Clause):
        return {
            "$": "clause",
            "head": _encode_with_refs(obj.head, index),
            "body": [_encode_with_refs(lit, index) for lit in obj.body],
        }
    if isinstance(obj, Signed):
        return {"$": "signed", "sign": obj.sign, "rel": obj.relation}
    if isinstance(obj, PairSupport):
        return {
            "$": "pair",
            "pos": _encode_with_refs(obj.pos, index),
            "neg": _encode_with_refs(obj.neg, index),
        }
    if isinstance(obj, SetOfSetsSupport):
        return {
            "$": "sos",
            "pos": _encode_with_refs(obj.pos, index),
            "neg": _encode_with_refs(obj.neg, index),
        }
    if isinstance(obj, PairedRecord):
        return {
            "$": "paired",
            "pos": _encode_with_refs(obj.pos, index),
            "neg": _encode_with_refs(obj.neg, index),
        }
    if isinstance(obj, RuleRecord):
        return {
            "$": "rule_record",
            "rule": _encode_with_refs(obj.rule, index),
            "pos": _encode_with_refs(obj.positive_relations, index),
            "neg": _encode_with_refs(obj.negated_relations, index),
        }
    if isinstance(obj, FactRecord):
        return {
            "$": "fact_record",
            "rule": _encode_with_refs(obj.rule, index),
            "pos": _encode_with_refs(obj.positive_facts, index),
            "neg": _encode_with_refs(obj.negative_facts, index),
        }
    if isinstance(obj, tuple):
        return {
            "$": "tuple",
            "items": [_encode_with_refs(item, index) for item in obj],
        }
    if isinstance(obj, frozenset):
        return {
            "$": "fset",
            "items": sorted(
                (_encode_with_refs(v, index) for v in obj), key=_canon
            ),
        }
    if isinstance(obj, set):
        return {
            "$": "set",
            "items": sorted(
                (_encode_with_refs(v, index) for v in obj), key=_canon
            ),
        }
    if isinstance(obj, list):
        return {
            "$": "list",
            "items": [_encode_with_refs(item, index) for item in obj],
        }
    if isinstance(obj, dict):
        items = [
            [_encode_with_refs(k, index), _encode_with_refs(v, index)]
            for k, v in obj.items()
        ]
        items.sort(key=lambda pair: _canon(pair[0]))
        return {"$": "map", "items": items}
    raise SerializationError(f"cannot encode {type(obj).__name__}: {obj!r}")


def encode_tabled(obj: Any) -> Any:
    """Encode *obj* with repeated substructures interned into a table.

    The result is ``{"$": "tabled", "table": [...], "root": ...}`` where
    table entries are fully expanded (no references) and sorted by their
    canonical encoding; the root refers to entry *k* as
    ``{"$": "ref", "i": k}``. Decodes via :func:`decode`.
    """
    counts: dict = {}
    _collect(obj, counts)
    repeated = [value for value, count in counts.items() if count > 1]
    expanded = sorted(
        ((encode(value), value) for value in repeated),
        key=lambda pair: _canon(pair[0]),
    )
    index = {value: slot for slot, (_, value) in enumerate(expanded)}
    return {
        "$": "tabled",
        "table": [entry for entry, _ in expanded],
        "root": _encode_with_refs(obj, index),
    }


def dumps(obj: Any) -> str:
    """Canonical one-line JSON text of *obj* (interned encoding)."""
    return json.dumps(
        encode_tabled(obj), sort_keys=True, separators=(",", ":")
    )


def loads(text: str) -> Any:
    return decode(json.loads(text))
