"""Stable JSON encoding of the engine state: terms, clauses, supports.

Snapshots and journal records must round-trip *exactly* — restoring a
snapshot has to yield the very model and support structures the live engine
held — and must be byte-deterministic, so that two equal states produce
identical files. Both properties come from one tagged encoding:

* every composite object becomes a JSON object whose ``"$"`` key names its
  type (atom, clause, support record, set, tuple, ...);
* scalars (str, int, float, bool, None) pass through unchanged — the
  constants of the function-free language are exactly the JSON scalars plus
  arbitrary hashables, and the uncommon hashables (tuples) are tagged;
* unordered containers (sets, frozensets, dicts with atom keys) are written
  sorted by their members' canonical JSON dump.

The codec knows every support form of the paper's solutions
(:mod:`repro.core.supports`), so one pair of functions serves all engines.

Derived per-relation state — hash indexes and the planner's per-column
distinct-value statistics — is deliberately *not* serialized: a snapshot
records the sorted fact rows only, and restoring bulk-loads each relation
(:meth:`~repro.datalog.relations.Relation.bulk_load`), which rebuilds the
statistics deterministically in one batched pass (indexes refill lazily on
first probe). The property tests assert the restored distinct counts equal
the live engine's, so a reopened store starts from the same per-column
estimates the live one computed. (Composite-index key counts — the exact
combination cardinalities ``estimated_matches`` prefers once an index is
live — return only after the first probe rebuilds the index.)

Format version 2 stores the model *columnar*: one ``[relation, arity,
[row, row, ...]]`` block per relation (:func:`encode_relations`) instead of
one tagged atom object per fact — most rows are plain JSON arrays of
scalars, so the dominant part of a snapshot skips the tagged-object decode
entirely (the E15/E18 restore-path bottleneck). Version-1 snapshots remain
readable: :mod:`repro.store.snapshot` converts their flat fact tuple back
into the columnar form on read.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.arena import (
    ArenaSupportState,
    canonical_parts,
    from_canonical_parts,
)
from ..core.supports import (
    FactRecord,
    PairSupport,
    PairedRecord,
    RuleRecord,
    SetOfSetsSupport,
    Signed,
)
from ..datalog.atoms import Atom, Literal
from ..datalog.clauses import Clause
from ..datalog.terms import Variable

FORMAT_VERSION = 2

_SCALARS = (str, int, float, bool, type(None))


class SerializationError(ValueError):
    """Raised when a value cannot be encoded or decoded."""


def encode(obj: Any) -> Any:
    """Turn *obj* into a JSON-serializable structure (deterministically).

    The flat form: every occurrence is expanded in place. For large
    structures with shared substructure use :func:`encode_tabled`.
    """
    return _encode_with_refs(obj, _NO_INTERNING)


_NO_INTERNING: dict = {}  # the empty ref table: nothing is shared


def _canon(encoded: Any) -> str:
    return json.dumps(encoded, sort_keys=True)


_CONSTRUCTORS = {
    "var": lambda d: Variable(d["name"]),
    "atom": lambda d: Atom(d["rel"], tuple(d["args"])),
    "lit": lambda d: Literal(d["atom"], d["pos"]),
    "clause": lambda d: Clause(d["head"], tuple(d["body"])),
    "signed": lambda d: Signed(d["sign"], d["rel"]),
    "pair": lambda d: PairSupport(d["pos"], d["neg"]),
    "sos": lambda d: SetOfSetsSupport(d["pos"], d["neg"]),
    "paired": lambda d: PairedRecord(d["pos"], d["neg"]),
    "rule_record": lambda d: RuleRecord(d["rule"], d["pos"], d["neg"]),
    "fact_record": lambda d: FactRecord(d["rule"], d["pos"], d["neg"]),
    "tuple": lambda d: tuple(d["items"]),
    "fset": lambda d: frozenset(d["items"]),
    "set": lambda d: set(d["items"]),
    "list": lambda d: d["items"],
    "map": lambda d: {key: value for key, value in d["items"]},
}


def decode(data: Any, _table=None) -> Any:
    """Inverse of :func:`encode` / :func:`encode_tabled`.

    Children are decoded first, then the ``"$"`` tag picks the
    constructor; a ``ref`` node resolves through the enclosing ``tabled``
    wrapper's table.
    """
    if isinstance(data, _SCALARS):
        return data
    if isinstance(data, list):  # only produced inside tagged containers
        return [decode(item, _table) for item in data]
    if isinstance(data, dict):
        tag = data.get("$")
        if tag == "tabled":
            table = [decode(entry) for entry in data["table"]]
            return decode(data["root"], table)
        if tag == "ref":
            if _table is None:
                raise SerializationError("ref outside a tabled document")
            return _table[data["i"]]
        constructor = _CONSTRUCTORS.get(tag)
        if constructor is None:
            raise SerializationError(f"unknown tag {tag!r} in {data!r}")
        children = {
            key: decode(value, _table)
            for key, value in data.items()
            if key != "$"
        }
        return constructor(children)
    raise SerializationError(f"cannot decode {data!r}")


# ----------------------------------------------------------------------
# Interned encoding: share repeated substructures through a table
# ----------------------------------------------------------------------
#
# Engine states repeat the same immutable objects thousands of times — a
# cascade snapshot holds one RuleRecord (with its full clause) per
# (fact, rule) pair, a fact-level snapshot cites the same body atoms in
# record after record. ``encode_tabled`` counts repeated hashable objects,
# expands each distinct one exactly once in a content-sorted table, and
# replaces every occurrence in the body with ``{"$": "ref", "i": k}``.
# Because the table is sorted by its entries' canonical expansion, equal
# states still produce identical bytes.

_INTERNABLE = (
    Atom,
    Literal,
    Clause,
    Signed,
    PairSupport,
    PairedRecord,
    RuleRecord,
    FactRecord,
    frozenset,
)


def _collect(obj: Any, counts: dict, expand_arena: bool = True) -> None:
    """Count occurrences of internable objects reachable from *obj*.

    *expand_arena* decides what an arena-backed support state contributes:
    the v1/object codec expands it to the classic record mapping (so its
    atoms and records intern alongside everything else and the bytes match
    a record-mode engine's), while the compact codec writes a
    self-contained canonical payload and skips it here.
    """
    if isinstance(obj, _INTERNABLE):
        seen = counts.get(obj, 0)
        counts[obj] = seen + 1
        if seen:  # children already counted on first encounter
            return
    if isinstance(obj, _SCALARS) or isinstance(obj, Variable):
        return
    if isinstance(obj, Atom):
        for term in obj.args:
            _collect(term, counts, expand_arena)
    elif isinstance(obj, Literal):
        _collect(obj.atom, counts, expand_arena)
    elif isinstance(obj, Clause):
        _collect(obj.head, counts, expand_arena)
        for lit in obj.body:
            _collect(lit, counts, expand_arena)
    elif isinstance(obj, Signed):
        pass
    elif isinstance(obj, (PairSupport, PairedRecord)):
        _collect(obj[0], counts, expand_arena)
        _collect(obj[1], counts, expand_arena)
    elif isinstance(obj, SetOfSetsSupport):
        _collect(obj.pos, counts, expand_arena)
        _collect(obj.neg, counts, expand_arena)
    elif isinstance(obj, (RuleRecord, FactRecord)):
        if obj.rule is not None:
            _collect(obj.rule, counts, expand_arena)
        _collect(obj[1], counts, expand_arena)
        _collect(obj[2], counts, expand_arena)
    elif isinstance(obj, ArenaSupportState):
        if expand_arena:
            _collect(obj.to_record_state(), counts, expand_arena)
    elif isinstance(obj, (tuple, list, set, frozenset)):
        for item in obj:
            _collect(item, counts, expand_arena)
    elif isinstance(obj, dict):
        for key, value in obj.items():
            _collect(key, counts, expand_arena)
            _collect(value, counts, expand_arena)
    else:
        raise SerializationError(
            f"cannot encode {type(obj).__name__}: {obj!r}"
        )


def _encode_with_refs(obj: Any, index: dict) -> Any:
    """Like :func:`encode`, but table objects become references."""
    if isinstance(obj, _INTERNABLE):
        slot = index.get(obj)
        if slot is not None:
            return {"$": "ref", "i": slot}
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, float)):
        return obj
    if isinstance(obj, str):
        return obj
    if isinstance(obj, Variable):
        return {"$": "var", "name": obj.name}
    if isinstance(obj, Atom):
        return {
            "$": "atom",
            "rel": obj.relation,
            "args": [_encode_with_refs(t, index) for t in obj.args],
        }
    if isinstance(obj, Literal):
        return {
            "$": "lit",
            "atom": _encode_with_refs(obj.atom, index),
            "pos": obj.positive,
        }
    if isinstance(obj, Clause):
        return {
            "$": "clause",
            "head": _encode_with_refs(obj.head, index),
            "body": [_encode_with_refs(lit, index) for lit in obj.body],
        }
    if isinstance(obj, Signed):
        return {"$": "signed", "sign": obj.sign, "rel": obj.relation}
    if isinstance(obj, PairSupport):
        return {
            "$": "pair",
            "pos": _encode_with_refs(obj.pos, index),
            "neg": _encode_with_refs(obj.neg, index),
        }
    if isinstance(obj, SetOfSetsSupport):
        return {
            "$": "sos",
            "pos": _encode_with_refs(obj.pos, index),
            "neg": _encode_with_refs(obj.neg, index),
        }
    if isinstance(obj, PairedRecord):
        return {
            "$": "paired",
            "pos": _encode_with_refs(obj.pos, index),
            "neg": _encode_with_refs(obj.neg, index),
        }
    if isinstance(obj, RuleRecord):
        return {
            "$": "rule_record",
            "rule": _encode_with_refs(obj.rule, index),
            "pos": _encode_with_refs(obj.positive_relations, index),
            "neg": _encode_with_refs(obj.negated_relations, index),
        }
    if isinstance(obj, FactRecord):
        return {
            "$": "fact_record",
            "rule": _encode_with_refs(obj.rule, index),
            "pos": _encode_with_refs(obj.positive_facts, index),
            "neg": _encode_with_refs(obj.negative_facts, index),
        }
    if isinstance(obj, ArenaSupportState):
        # The v1/object codec has no arena notion: expand to the classic
        # record mapping so the bytes equal a record-mode engine's.
        return _encode_with_refs(obj.to_record_state(), index)
    if isinstance(obj, tuple):
        return {
            "$": "tuple",
            "items": [_encode_with_refs(item, index) for item in obj],
        }
    if isinstance(obj, frozenset):
        return {
            "$": "fset",
            "items": sorted(
                (_encode_with_refs(v, index) for v in obj), key=_canon
            ),
        }
    if isinstance(obj, set):
        return {
            "$": "set",
            "items": sorted(
                (_encode_with_refs(v, index) for v in obj), key=_canon
            ),
        }
    if isinstance(obj, list):
        return {
            "$": "list",
            "items": [_encode_with_refs(item, index) for item in obj],
        }
    if isinstance(obj, dict):
        items = [
            [_encode_with_refs(k, index), _encode_with_refs(v, index)]
            for k, v in obj.items()
        ]
        items.sort(key=lambda pair: _canon(pair[0]))
        return {"$": "map", "items": items}
    raise SerializationError(f"cannot encode {type(obj).__name__}: {obj!r}")


def encode_tabled(obj: Any) -> Any:
    """Encode *obj* with repeated substructures interned into a table.

    The result is ``{"$": "tabled", "table": [...], "root": ...}`` where
    table entries are fully expanded (no references) and sorted by their
    canonical encoding; the root refers to entry *k* as
    ``{"$": "ref", "i": k}``. Decodes via :func:`decode`.
    """
    counts: dict = {}
    _collect(obj, counts)
    repeated = [value for value, count in counts.items() if count > 1]
    expanded = sorted(
        ((encode(value), value) for value in repeated),
        key=lambda pair: _canon(pair[0]),
    )
    index = {value: slot for slot, (_, value) in enumerate(expanded)}
    return {
        "$": "tabled",
        "table": [entry for entry, _ in expanded],
        "root": _encode_with_refs(obj, index),
    }


def dumps(obj: Any) -> str:
    """Canonical one-line JSON text of *obj* (interned encoding)."""
    return json.dumps(
        encode_tabled(obj), sort_keys=True, separators=(",", ":")
    )


def loads(text: str) -> Any:
    return decode(json.loads(text))


# ----------------------------------------------------------------------
# Compact array-tagged encoding (snapshot format v2 state section)
# ----------------------------------------------------------------------
#
# The object-tagged encoding above is the canonical in-memory codec
# (``dumps``/``loads``) and the v1 file format, but on support-heavy
# snapshots (the fact-level engine's per-deduction records) the JSON
# *objects* themselves are the restore bottleneck: every node costs a
# dict with string keys both to parse and to walk. The compact form
# writes each tagged node as a JSON array ``[tag, field, field, ...]``
# with positional fields and one-character tags — scalars still pass
# through untouched, and interning works the same way (``["r", k]`` is a
# table reference). Arrays parse several times faster than objects and
# the decoder indexes positionally instead of building a children dict,
# which is what lets a fact-level snapshot restore beat its rebuild
# (experiment E15).

_COMPACT_TABLED = "T"


def _encode_compact(obj: Any, index: dict) -> Any:
    """The array-tagged mirror of :func:`_encode_with_refs`."""
    if isinstance(obj, _INTERNABLE):
        slot = index.get(obj)
        if slot is not None:
            return ["r", slot]
    if isinstance(obj, _SCALARS):
        return obj
    if isinstance(obj, Variable):
        return ["v", obj.name]
    if isinstance(obj, Atom):
        return [
            "a",
            obj.relation,
            [_encode_compact(term, index) for term in obj.args],
        ]
    if isinstance(obj, Literal):
        return ["L", _encode_compact(obj.atom, index), obj.positive]
    if isinstance(obj, Clause):
        return [
            "c",
            _encode_compact(obj.head, index),
            [_encode_compact(lit, index) for lit in obj.body],
        ]
    if isinstance(obj, Signed):
        return ["g", obj.sign, obj.relation]
    if isinstance(obj, PairSupport):
        return [
            "p",
            _encode_compact(obj.pos, index),
            _encode_compact(obj.neg, index),
        ]
    if isinstance(obj, SetOfSetsSupport):
        return [
            "S",
            _encode_compact(obj.pos, index),
            _encode_compact(obj.neg, index),
        ]
    if isinstance(obj, PairedRecord):
        return [
            "P",
            _encode_compact(obj.pos, index),
            _encode_compact(obj.neg, index),
        ]
    if isinstance(obj, RuleRecord):
        return _compact_record("R", obj.rule, obj.positive_relations,
                               obj.negated_relations, index)
    if isinstance(obj, FactRecord):
        return _compact_record("F", obj.rule, obj.positive_facts,
                               obj.negative_facts, index)
    if isinstance(obj, ArenaSupportState):
        return _encode_arena_state(obj)
    if isinstance(obj, tuple):
        return ["t", [_encode_compact(item, index) for item in obj]]
    if isinstance(obj, frozenset):
        return [
            "f",
            sorted((_encode_member(v, index) for v in obj), key=_canon),
        ]
    if isinstance(obj, set):
        return [
            "s",
            sorted((_encode_member(v, index) for v in obj), key=_canon),
        ]
    if isinstance(obj, list):
        return ["l", [_encode_compact(item, index) for item in obj]]
    if isinstance(obj, dict):
        items = [
            [_encode_member(k, index), _encode_compact(v, index)]
            for k, v in obj.items()
        ]
        items.sort(key=lambda pair: _canon(pair[0]))
        return ["m", items]
    raise SerializationError(f"cannot encode {type(obj).__name__}: {obj!r}")


def _encode_member(obj: Any, index: dict) -> Any:
    """Encode a set member / map key, where refs shrink to bare slots.

    Set items and map keys are overwhelmingly interned objects (the body
    atoms of support records, the fact keys of support maps), so at those
    positions a plain int *is* a table reference and a literal int
    constant takes the ``["i", n]`` escape instead. Everything else
    encodes as usual.
    """
    if isinstance(obj, _INTERNABLE):
        slot = index.get(obj)
        if slot is not None:
            return slot
    if type(obj) is int:
        return ["i", obj]
    return _encode_compact(obj, index)


def _compact_record(tag: str, rule, pos, neg, index: dict) -> list:
    """Support records dominate heavy snapshots, so their encoding is
    extra-lean: an interned rule is a plain table slot (an int can only
    be a slot there — the rule field otherwise holds None or a clause
    node), and an empty negative set is simply omitted."""
    slot = None if rule is None else index.get(rule)
    node = [
        tag,
        slot if slot is not None else _encode_compact(rule, index),
        _encode_compact(pos, index),
    ]
    if neg:
        node.append(_encode_compact(neg, index))
    return node


def _encode_arena_state(state: ArenaSupportState) -> list:
    """One arena-backed support state as a self-contained ``"A"`` node.

    The canonical image (:func:`~repro.core.arena.canonical_parts`) is
    built straight off the live intern tables — atoms, rules and entries
    are each written exactly once, in canonical order, and every other
    section is plain int rows over those positions. Renumbering makes the
    node deterministic: a state freshly rebuilt from records encodes to
    the same bytes as the live arena it came from, whatever slot order
    the arena grew in, and unreachable (superseded) slots are dropped.
    """
    parts = canonical_parts(state)
    return [
        "A",
        parts.kind,
        [_encode_compact(atom, _NO_INTERNING) for atom in parts.atoms],
        [_encode_compact(rule, _NO_INTERNING) for rule in parts.rules],
        [_encode_compact(entry, _NO_INTERNING) for entry in parts.entries],
        parts.elements,
        parts.records,
        parts.table,
    ]


def encode_compact_tabled(obj: Any) -> list:
    """Compact counterpart of :func:`encode_tabled`:
    ``["T", [table...], root]``, table entries fully expanded and sorted
    by their canonical compact dump, refs as ``["r", k]``. Arena-backed
    support states become self-contained ``"A"`` nodes (their canonical
    payload carries its own object tables, so they stay out of the shared
    intern table)."""
    counts: dict = {}
    _collect(obj, counts, expand_arena=False)
    repeated = [value for value, count in counts.items() if count > 1]
    expanded = sorted(
        ((_encode_compact(value, _NO_INTERNING), value) for value in repeated),
        key=lambda pair: _canon(pair[0]),
    )
    index = {value: slot for slot, (_, value) in enumerate(expanded)}
    return [
        _COMPACT_TABLED,
        [entry for entry, _ in expanded],
        _encode_compact(obj, index),
    ]


def _decode_record(constructor, data: list, table):
    rule = data[1]
    if type(rule) is int:
        rule = table[rule]
    elif rule is not None:
        rule = _decode_compact(rule, table)
    neg = (
        _decode_compact(data[3], table) if len(data) > 3 else frozenset()
    )
    return constructor(rule, _decode_compact(data[2], table), neg)


def _decode_compact(data: Any, table) -> Any:
    # Scalars pass through; every composite is a tagged array. The inner
    # comprehensions repeat the scalar check inline so the (overwhelmingly
    # common) scalar members skip the function call.
    if type(data) is not list:
        return data
    tag = data[0]
    if tag == "r":
        if table is None:
            raise SerializationError("ref outside a tabled document")
        return table[data[1]]
    if tag == "a":
        return Atom(
            data[1],
            tuple(
                t if type(t) is not list else _decode_compact(t, table)
                for t in data[2]
            ),
        )
    if tag == "f":
        return frozenset(
            table[v] if type(v) is int
            else v if type(v) is not list
            else _decode_compact(v, table)
            for v in data[1]
        )
    if tag == "F":
        return _decode_record(FactRecord, data, table)
    if tag == "t":
        return tuple(
            v if type(v) is not list else _decode_compact(v, table)
            for v in data[1]
        )
    if tag == "s":
        return {
            table[v] if type(v) is int
            else v if type(v) is not list
            else _decode_compact(v, table)
            for v in data[1]
        }
    if tag == "l":
        return [
            v if type(v) is not list else _decode_compact(v, table)
            for v in data[1]
        ]
    if tag == "m":
        return {
            (
                table[k] if type(k) is int
                else k if type(k) is not list
                else _decode_compact(k, table)
            ): (
                v if type(v) is not list else _decode_compact(v, table)
            )
            for k, v in data[1]
        }
    if tag == "i":
        return data[1]  # literal int at a member position
    if tag == "v":
        return Variable(data[1])
    if tag == "L":
        return Literal(_decode_compact(data[1], table), data[2])
    if tag == "c":
        return Clause(
            _decode_compact(data[1], table),
            tuple(_decode_compact(lit, table) for lit in data[2]),
        )
    if tag == "g":
        return Signed(data[1], data[2])
    if tag == "p":
        return PairSupport(
            _decode_compact(data[1], table), _decode_compact(data[2], table)
        )
    if tag == "S":
        return SetOfSetsSupport(
            _decode_compact(data[1], table), _decode_compact(data[2], table)
        )
    if tag == "P":
        return PairedRecord(
            _decode_compact(data[1], table), _decode_compact(data[2], table)
        )
    if tag == "R":
        return _decode_record(RuleRecord, data, table)
    if tag == "A":
        return from_canonical_parts(
            data[1],
            [_decode_compact(atom, None) for atom in data[2]],
            [_decode_compact(rule, None) for rule in data[3]],
            [_decode_compact(entry, None) for entry in data[4]],
            data[5],
            data[6],
            data[7],
        )
    raise SerializationError(f"unknown compact tag {tag!r} in {data!r}")


def decode_compact(data: Any) -> Any:
    """Inverse of :func:`encode_compact_tabled` (also accepts bare
    compact nodes without a table wrapper)."""
    if type(data) is list and data and data[0] == _COMPACT_TABLED:
        table = [_decode_compact(entry, None) for entry in data[1]]
        return _decode_compact(data[2], table)
    return _decode_compact(data, None)


# ----------------------------------------------------------------------
# Columnar fact encoding (snapshot format v2)
# ----------------------------------------------------------------------
#
# The model dominates most snapshots, and in the v1 encoding every fact
# cost one tagged atom object (plus a tagged tuple per row). The columnar
# form writes one block per relation and one plain JSON array per row;
# scalar constants — the overwhelmingly common case — pass through both
# ways without touching the tagged codec.


def encode_relations(data: Any) -> list:
    """Compact encoding of ``Model.relation_data()``: one
    ``[name, arity, [rows...]]`` block per relation, rows as JSON arrays
    of encoded terms. Deterministic because the input is sorted."""
    return [
        [
            name,
            arity,
            [
                [
                    term
                    if isinstance(term, _SCALARS)
                    else _encode_with_refs(term, _NO_INTERNING)
                    for term in row
                ]
                for row in rows
            ],
        ]
        for name, arity, rows in data
    ]


def decode_relations(payload: Any) -> list:
    """Inverse of :func:`encode_relations` — back to relation_data form
    (rows become tuples)."""
    return [
        (
            name,
            arity,
            [
                tuple(
                    term if isinstance(term, _SCALARS) else decode(term)
                    for term in row
                )
                for row in rows
            ],
        )
        for name, arity, rows in payload
    ]


def relation_data_to_facts(data: Any) -> tuple:
    """Flatten relation_data into the v1 sorted fact tuple — byte-compatible
    with what pre-v2 ``state_dict`` recorded, because relation_data keeps
    the same (relation name, row repr) order."""
    return tuple(
        Atom(name, row) for name, _arity, rows in data for row in rows
    )


def facts_to_relation_data(facts: Any) -> list:
    """Group a v1 flat fact tuple back into relation_data form.

    The v1 tuple is sorted by (relation, row repr) already, so plain
    grouping preserves the canonical order.
    """
    data: list = []
    for fact in facts:
        if data and data[-1][0] == fact.relation:
            data[-1][2].append(fact.args)
        else:
            data.append([fact.relation, fact.arity, [fact.args]])
    return [(name, arity, rows) for name, arity, rows in data]
