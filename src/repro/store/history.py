"""Replay and time-travel: materializing any belief state in the history.

The journal is a total order of revisions; a snapshot pins the engine state
at one position. Any revision ``r`` is then reachable as *restore the best
snapshot at-or-below r, replay records (seq .. r]* — the machinery behind
``Store.open`` (r = head), ``Store.undo`` (r = head - n) and explicit
time-travel. Replay applies single-update records through the normal
``MaintenanceEngine.apply`` path; a multi-update record (a transaction
commit) replays through ``apply_batch``, so engines with a single-pass
batch treatment (cascade) seed the whole update set at once. Replay is
deterministic either way, and the reconstructed model is exactly the one
the live engine reached.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.base import MaintenanceEngine
from ..core.registry import engine_from_state
from ..datalog.errors import DatalogError
from .journal import Journal, updates_of
from .snapshot import SnapshotError, best_snapshot, read_snapshot


class ReplayError(Exception):
    """A journal record failed to re-apply during replay."""


def replay(
    engine: MaintenanceEngine,
    records: Iterable[dict],
    tolerate_tail: bool = False,
) -> tuple[int, Optional[int]]:
    """Apply journal *records* to *engine* in order.

    Returns ``(applied, failed_seq)``. Replay is deterministic, so a record
    can only fail where the live apply would have failed too — which
    happens in exactly one legitimate scenario: the process crashed after
    the write-ahead append but before the in-memory apply finished. With
    ``tolerate_tail`` a failure on the *last* record is therefore reported
    (``failed_seq``) instead of raised, so the caller can truncate it;
    failures elsewhere always raise :class:`ReplayError`.
    """
    records = list(records)
    applied = 0
    for position, record in enumerate(records):
        try:
            updates = list(updates_of(record))
            if len(updates) > 1:
                # A multi-update record (transaction commit) replays as
                # one batch, so engines with a single-pass batch path
                # (cascade) seed the whole update set at once instead of
                # cascading per update.
                engine.apply_batch(updates)
            else:
                for operation, subject in updates:
                    engine.apply(operation, subject)
        except DatalogError as error:
            if tolerate_tail and position == len(records) - 1:
                return applied, record["seq"]
            raise ReplayError(
                f"journal record seq={record['seq']} failed to replay: "
                f"{error}"
            ) from error
        applied += 1
    return applied, None


def materialize(
    directory,
    engine_name: str,
    journal: Journal,
    revision: int,
    engine_kwargs: Optional[dict] = None,
    tolerate_tail: bool = False,
) -> tuple[MaintenanceEngine, Optional[int]]:
    """Reconstruct the engine state as of journal position *revision*.

    Picks the newest snapshot at-or-below *revision* and replays the
    journal records between the snapshot and *revision*. Returns
    ``(engine, failed_seq)`` where ``failed_seq`` is only non-None under
    ``tolerate_tail`` (see :func:`replay`) and only when *revision* is the
    journal head.
    """
    if revision < 0 or revision > len(journal):
        raise ReplayError(
            f"revision {revision} outside journal range 0..{len(journal)}"
        )
    path = best_snapshot(directory, revision)
    if path is None:
        raise SnapshotError(
            f"no snapshot at-or-below revision {revision} in {directory}; "
            "the store is missing its base snapshot"
        )
    seq, state = read_snapshot(path)
    engine = engine_from_state(engine_name, state, **(engine_kwargs or {}))
    tail = journal.records[seq:revision]
    tolerate = tolerate_tail and revision == len(journal)
    _, failed_seq = replay(engine, tail, tolerate_tail=tolerate)
    return engine, failed_seq
