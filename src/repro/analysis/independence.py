"""Revision-independence analysis: which updates provably commute.

The paper's section-4.1 closures give, for every relation ``p``, the
relations it depends on through an even (``Pos``) or odd (``Neg``) number of
negations. This module turns the same dependency graph into the *update*
view: for a revision touching relation ``r``,

* its **write cone** is every relation whose value can change —
  ``dependents_of(r)``, the upward closure;
* its **read cone** is everything the maintenance procedure may consult
  while recomputing those dependents — the downward closure of the write
  cone (which contains the write cone itself).

Two revisions provably commute when neither one's write cone meets the
other's read cone: no write/write or write/read conflict exists at the
relation level, so applying them in either order — or concurrently on
separate shards — yields the same database. This is the static foundation
for the concurrent revision service of ROADMAP item 1: the
:meth:`IndependenceReport.shards` partition is exactly the coarsest
relation sharding under which cross-shard revisions never conflict.

The analysis is conservative (relation-level, not fact-level): ``commutes``
never returns True for a conflicting pair, but may return False for
updates that happen to touch disjoint facts of shared relations.
"""

from __future__ import annotations

from typing import Iterable, Union

from ..datalog.clauses import Clause, Program
from ..datalog.dependency import DependencyGraph
from ..datalog.parser import parse_clauses

GraphLike = Union[Program, DependencyGraph, str, Iterable[Clause]]


class IndependenceReport:
    """Pairwise commutation and sharding structure of a program."""

    def __init__(self, source: GraphLike) -> None:
        if isinstance(source, DependencyGraph):
            self._graph = source
        elif isinstance(source, str):
            self._graph = DependencyGraph(parse_clauses(source))
        else:
            self._graph = DependencyGraph(source)
        self._writes: dict[str, frozenset[str]] = {}
        self._reads: dict[str, frozenset[str]] = {}
        self._pairs: tuple[tuple[str, str], ...] | None = None

    @property
    def graph(self) -> DependencyGraph:
        return self._graph

    @property
    def relations(self) -> tuple[str, ...]:
        return tuple(sorted(self._graph.relations))

    # cones ------------------------------------------------------------

    def writes(self, relation: str) -> frozenset[str]:
        """Relations whose value may change when *relation* is updated."""
        cached = self._writes.get(relation)
        if cached is None:
            cached = self._graph.dependents_of(relation)
            self._writes[relation] = cached
        return cached

    def reads(self, relation: str) -> frozenset[str]:
        """Relations maintenance may consult for an update to *relation*.

        The downward closure of the write cone: recomputing a changed
        relation re-evaluates its defining rules, which read everything it
        depends on. Contains :meth:`writes` (every relation depends on
        itself).
        """
        cached = self._reads.get(relation)
        if cached is None:
            cone: set[str] = set()
            for dependent in self.writes(relation):
                cone |= self._graph.depends_on(dependent)
            cached = frozenset(cone)
            self._reads[relation] = cached
        return cached

    cone = reads  # the "dependency cone" of a revision, read/write combined

    def negation_sensitive(self, relation: str) -> frozenset[str]:
        """The dependents reached through an odd number of negations.

        These are the relations for which an *insertion* into *relation*
        can cause deletions (and vice versa) — the non-monotonic part of
        the write cone, priced by the paper's ``Neg`` closures.
        """
        return frozenset(
            dependent
            for dependent in self.writes(relation)
            if relation in self._graph.pos_neg_sets(dependent)[1]
        )

    # pairwise commutation ---------------------------------------------

    def commutes(self, a: str, b: str) -> bool:
        """True when updates to *a* and *b* provably commute.

        Neither update's write cone intersects the other's read cone, so
        there is no write/write and no write/read conflict at the relation
        level: the final database is the same whichever order the two
        revisions are applied in.
        """
        return self.writes(a).isdisjoint(self.reads(b)) and self.writes(
            b
        ).isdisjoint(self.reads(a))

    def disjoint_cones(self, a: str, b: str) -> bool:
        """True when the two revisions share no relation at all.

        Strictly stronger than :meth:`commutes`: the updates touch disjoint
        state and can run on separate shards with no coordination.
        """
        return self.reads(a).isdisjoint(self.reads(b))

    def conflict(self, a: str, b: str) -> frozenset[str]:
        """The relations that prevent *a* and *b* from commuting."""
        return (self.writes(a) & self.reads(b)) | (
            self.writes(b) & self.reads(a)
        )

    def independent_pairs(self) -> tuple[tuple[str, str], ...]:
        """Every unordered relation pair whose updates commute, sorted.

        Cached: the O(n²) pairwise sweep runs once per report (the graph
        is immutable from this class's point of view), so ``summary()``
        and ``to_dict()`` no longer pay it on every call.
        """
        if self._pairs is None:
            names = self.relations
            self._pairs = tuple(
                (a, b)
                for i, a in enumerate(names)
                for b in names[i + 1 :]
                if self.commutes(a, b)
            )
        return self._pairs

    def negation_sensitive_pairs(self) -> tuple[tuple[str, str], ...]:
        """Unordered pairs where one update's odd-parity writes meet the
        other's reads — the reorderings where an insertion can retract
        facts the other revision consults (the DL013 hazard class at
        relation granularity).
        """
        names = self.relations
        return tuple(
            (a, b)
            for i, a in enumerate(names)
            for b in names[i + 1 :]
            if not self.negation_sensitive(a).isdisjoint(self.reads(b))
            or not self.negation_sensitive(b).isdisjoint(self.reads(a))
        )

    def conflict_witness(self, a: str, b: str) -> dict | None:
        """Witness arcs for one non-commuting pair, or None.

        Picks the (sorted-)first conflicting relation ``c`` and orients
        the pair so *writer*'s update rewrites ``c`` while *reader*'s
        maintenance consults it; the two rendered paths are dependency-arc
        chains in the style of the DL002 negative-cycle witness.
        """
        conflicting = sorted(self.conflict(a, b))
        if not conflicting:
            return None
        relation = conflicting[0]
        if relation in self.writes(a) and relation in self.reads(b):
            writer, reader = a, b
        else:
            writer, reader = b, a
        anchor = min(
            dependent
            for dependent in self.writes(reader)
            if relation in self._graph.depends_on(dependent)
        )
        return {
            "relation": relation,
            "writer": writer,
            "reader": reader,
            "write_path": self._render_path(
                relation, self._graph.arc_path(relation, writer)
            ),
            "read_path": self._render_path(
                anchor, self._graph.arc_path(anchor, relation)
            ),
        }

    @staticmethod
    def _render_path(start: str, arcs: tuple) -> str:
        from ..datalog.dependency import format_witness

        return format_witness(arcs) if arcs else start

    # sharding ----------------------------------------------------------

    def shards(self) -> tuple[frozenset[str], ...]:
        """The coarsest relation partition with no cross-shard conflicts.

        The weakly connected components of the dependency graph: two
        relations in different components have disjoint cones, so any two
        revisions addressing different shards commute — each shard can be
        owned by one worker of the future concurrent revision service with
        no cross-shard coordination. Sorted by (size desc, name) for
        stable output.
        """
        seen: set[str] = set()
        components: list[frozenset[str]] = []
        for relation in self.relations:
            if relation in seen:
                continue
            component: set[str] = set()
            frontier = [relation]
            while frontier:
                node = frontier.pop()
                if node in component:
                    continue
                component.add(node)
                frontier.extend(self._graph.successors(node))
                frontier.extend(self._graph.predecessors(node))
            seen |= component
            components.append(frozenset(component))
        return tuple(
            sorted(components, key=lambda c: (-len(c), min(c)))
        )

    # rendering ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "relations": {
                relation: {
                    "writes": sorted(self.writes(relation)),
                    "reads": sorted(self.reads(relation)),
                    "negation_sensitive": sorted(
                        self.negation_sensitive(relation)
                    ),
                }
                for relation in self.relations
            },
            "independent_pairs": [
                list(pair) for pair in self.independent_pairs()
            ],
            "negation_sensitive_pairs": [
                list(pair) for pair in self.negation_sensitive_pairs()
            ],
            "conflicts": [
                {
                    "pair": [a, b],
                    "relations": sorted(self.conflict(a, b)),
                    "negation_sensitive": not (
                        self.negation_sensitive(a).isdisjoint(self.reads(b))
                        and self.negation_sensitive(b).isdisjoint(
                            self.reads(a)
                        )
                    ),
                    "witness": self.conflict_witness(a, b),
                }
                for a, b in self._conflicting_pairs()
            ],
            "shards": [sorted(shard) for shard in self.shards()],
        }

    def _conflicting_pairs(self) -> tuple[tuple[str, str], ...]:
        names = self.relations
        independent = set(self.independent_pairs())
        return tuple(
            (a, b)
            for i, a in enumerate(names)
            for b in names[i + 1 :]
            if (a, b) not in independent
        )

    def summary(self) -> str:
        names = self.relations
        total = len(names) * (len(names) - 1) // 2
        shards = self.shards()
        lines = [
            f"{len(names)} relations, {len(shards)} independent shard(s), "
            f"{len(self.independent_pairs())}/{total} pairs commute",
        ]
        for i, shard in enumerate(shards, start=1):
            lines.append(f"  shard {i}: {', '.join(sorted(shard))}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"IndependenceReport({len(self.relations)} relations, "
            f"{len(self.shards())} shards)"
        )


def independence_report(source: GraphLike) -> IndependenceReport:
    """Convenience constructor mirroring :func:`~.checks.analyze_program`."""
    return IndependenceReport(source)
