"""The static checks: one function per diagnostic code family.

Every check is a pure function from a clause sequence (plus, where needed,
the dependency graph) to a list of :class:`~.diagnostics.Diagnostic`
records. :func:`analyze_program` composes them; :func:`analyze_source`
adds parsing (a parse failure becomes a ``DL000`` diagnostic instead of an
exception) and honours ``% repro: allow DLnnn`` suppression pragmas in the
source text, so a program can declare its expected findings.

The checks work on *clause lists*, not :class:`~repro.datalog.clauses.Program`
objects: ``Program.add`` enforces safety by raising, while the analyzer
must keep going and report every flaw of a defective program at once.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence, Union

from ..datalog.atoms import Atom, Literal
from ..datalog.clauses import Clause, Program
from ..datalog.dependency import DependencyGraph, format_witness
from ..datalog.errors import ParseError
from ..datalog.parser import parse_clauses
from ..datalog.stratify import _locate_negative_arc
from ..datalog.terms import Variable
from .diagnostics import Diagnostic, Report, make

ProgramLike = Union[Program, str, Iterable[Clause]]

_ALLOW_PRAGMA = re.compile(
    r"[%#]\s*repro:\s*allow\s+(DL\d{3}(?:\s*,\s*DL\d{3})*)"
)


def _as_clauses(program: ProgramLike) -> tuple[Clause, ...]:
    if isinstance(program, str):
        return tuple(parse_clauses(program))
    return tuple(program)


# ---------------------------------------------------------------------------
# DL001 — safety / range restriction
# ---------------------------------------------------------------------------


def check_safety(clauses: Sequence[Clause]) -> list[Diagnostic]:
    """DL001 for every clause violating the range restriction."""
    findings: list[Diagnostic] = []
    for clause in clauses:
        head_unbound, negative_unbound = clause.unsafe_variables()
        if head_unbound:
            names = ", ".join(var.name for var in head_unbound)
            findings.append(
                make(
                    "DL001",
                    f"head variable(s) {names} do not occur in a positive "
                    "body literal",
                    line=clause.line,
                    column=clause.column,
                    clause=clause,
                    hint="bind the variable(s) with a positive body literal",
                )
            )
        for lit, unbound in negative_unbound:
            names = ", ".join(var.name for var in unbound)
            findings.append(
                make(
                    "DL001",
                    f"variable(s) {names} of negative literal {lit} do not "
                    "occur in a positive body literal",
                    line=lit.line or clause.line,
                    column=lit.column or clause.column,
                    clause=clause,
                    hint="bind the variable(s) with a positive body literal",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# DL002 — stratifiability, with a negative-cycle witness
# ---------------------------------------------------------------------------


def check_stratification(
    clauses: Sequence[Clause], graph: DependencyGraph | None = None
) -> list[Diagnostic]:
    """DL002 with a witness cycle when the program is not stratifiable."""
    graph = graph if graph is not None else DependencyGraph(clauses)
    witness = graph.negative_cycle_witness()
    if not witness:
        return []
    offending = witness[0]
    line, column = _locate_negative_arc(clauses, offending)
    return [
        make(
            "DL002",
            f"recursion through negation: negative arc {offending.source} "
            f"-> {offending.target} lies on the cycle "
            f"{format_witness(witness)}",
            line=line,
            column=column,
            hint="break the cycle so no negative reference closes a loop",
        )
    ]


# ---------------------------------------------------------------------------
# DL003 — arity consistency
# ---------------------------------------------------------------------------


def check_arities(clauses: Sequence[Clause]) -> list[Diagnostic]:
    """DL003 where a relation's arity differs from its first occurrence."""
    findings: list[Diagnostic] = []
    seen: dict[str, tuple[int, int, int]] = {}  # relation -> arity, line, col
    for clause in clauses:
        atoms = [clause.head] + [lit.atom for lit in clause.body]
        for atom in atoms:
            known = seen.get(atom.relation)
            if known is None:
                seen[atom.relation] = (atom.arity, atom.line, atom.column)
                continue
            arity, first_line, _first_col = known
            if atom.arity != arity:
                where = f" (line {first_line})" if first_line else ""
                findings.append(
                    make(
                        "DL003",
                        f"{atom.relation} used with arity {atom.arity} but "
                        f"first used with arity {arity}{where}",
                        line=atom.line or clause.line,
                        column=atom.column or clause.column,
                        clause=clause,
                        hint="give every use of the relation the same arity",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# DL004 / DL005 — references to undefined relations
# ---------------------------------------------------------------------------


def check_undefined(clauses: Sequence[Clause]) -> list[Diagnostic]:
    """DL004 (positive) / DL005 (negated) references to undefined relations.

    A relation is *defined* when at least one clause concludes it — a rule
    or an asserted fact. A positive literal over an undefined relation makes
    its rule dead; a negated one is vacuously true and silently widens the
    rule, the classic misspelling bug.
    """
    defined = {clause.head.relation for clause in clauses}
    findings: list[Diagnostic] = []
    for clause in clauses:
        for lit in clause.body:
            if lit.relation in defined:
                continue
            if lit.positive:
                findings.append(
                    make(
                        "DL004",
                        f"relation {lit.relation} is never asserted or "
                        "concluded: this rule can never fire",
                        line=lit.line or clause.line,
                        column=lit.column or clause.column,
                        clause=clause,
                        hint="assert facts for it, define it with a rule, "
                        "or fix the spelling",
                    )
                )
            else:
                findings.append(
                    make(
                        "DL005",
                        f"negated relation {lit.relation} is never asserted "
                        "or concluded: the literal is vacuously true",
                        line=lit.line or clause.line,
                        column=lit.column or clause.column,
                        clause=clause,
                        hint="a misspelled name here silently widens the "
                        "rule; check the spelling",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# DL006 — unused relations
# ---------------------------------------------------------------------------


def check_unused(clauses: Sequence[Clause]) -> list[Diagnostic]:
    """DL006 for relations concluded but never referenced by any body.

    Info severity: a maintained database's *outputs* are exactly such
    relations, so this is a map of the program's surface, not a defect.
    """
    referenced = {
        lit.relation for clause in clauses for lit in clause.body
    }
    findings: list[Diagnostic] = []
    reported: set[str] = set()
    for clause in clauses:
        relation = clause.head.relation
        if relation in referenced or relation in reported:
            continue
        reported.add(relation)
        findings.append(
            make(
                "DL006",
                f"relation {relation} is concluded but never referenced by "
                "a rule body (an output, or dead code)",
                line=clause.line,
                column=clause.column,
                clause=clause,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# DL007 — singleton variables
# ---------------------------------------------------------------------------


def check_singletons(clauses: Sequence[Clause]) -> list[Diagnostic]:
    """DL007 for variables occurring exactly once in their clause.

    Variables named with a leading underscore declare the don't-care
    intent and are exempt, Prolog-style.
    """
    findings: list[Diagnostic] = []
    for clause in clauses:
        counts: dict[Variable, int] = {}
        for var in clause.head.variables():
            counts[var] = counts.get(var, 0) + 1
        for lit in clause.body:
            for var in lit.variables():
                counts[var] = counts.get(var, 0) + 1
        singles = sorted(
            (
                var.name
                for var, count in counts.items()
                if count == 1 and not var.name.startswith("_")
            ),
        )
        if singles:
            names = ", ".join(singles)
            findings.append(
                make(
                    "DL007",
                    f"singleton variable(s) {names}: each occurs only once "
                    "in the clause (likely a typo)",
                    line=clause.line,
                    column=clause.column,
                    clause=clause,
                    hint="rename to _-prefixed if intentional, or fix the "
                    "join variable",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# DL008 / DL009 — duplicate and subsumed rules
# ---------------------------------------------------------------------------


def _canonical(clause: Clause) -> tuple:
    """A renaming-invariant structural key for a clause."""
    mapping: dict[Variable, int] = {}

    def key(atom: Atom) -> tuple:
        args = []
        for term in atom.args:
            if isinstance(term, Variable):
                if term not in mapping:
                    mapping[term] = len(mapping)
                args.append(("var", mapping[term]))
            else:
                args.append(("const", term))
        return (atom.relation, tuple(args))

    head = key(clause.head)
    body = tuple((lit.positive, key(lit.atom)) for lit in clause.body)
    return (head, body)


def _match_args(
    general: tuple, specific: tuple, theta: dict[Variable, object]
) -> dict[Variable, object] | None:
    """Extend *theta* so the general args map onto the specific args."""
    if len(general) != len(specific):
        return None
    theta = dict(theta)
    for g, s in zip(general, specific):
        if isinstance(g, Variable):
            if g in theta:
                if theta[g] != s:
                    return None
            else:
                theta[g] = s
        elif isinstance(s, Variable) or g != s:
            return None
    return theta


def _cover(
    body: tuple[Literal, ...],
    specific: tuple[Literal, ...],
    theta: dict[Variable, object],
) -> bool:
    """Can every literal of *body* be mapped into *specific* under theta?"""
    if not body:
        return True
    lit, rest = body[0], body[1:]
    for candidate in specific:
        if candidate.positive != lit.positive:
            continue
        if candidate.relation != lit.relation:
            continue
        extended = _match_args(lit.args, candidate.args, theta)
        if extended is not None and _cover(rest, specific, extended):
            return True
    return False


def _subsumes(general: Clause, specific: Clause) -> bool:
    """True when *general* theta-subsumes *specific*.

    There is a substitution theta with ``theta(general.head) ==
    specific.head`` and ``theta(general.body) ⊆ specific.body`` — every
    instance the specific rule derives, the general one derives too.
    """
    theta = _match_args(general.head.args, specific.head.args, {})
    if theta is None:
        return False
    return _cover(general.body, specific.body, theta)


def check_duplicates(clauses: Sequence[Clause]) -> list[Diagnostic]:
    """DL008 for rules equal up to a consistent renaming of variables."""
    findings: list[Diagnostic] = []
    first_of: dict[tuple, Clause] = {}
    for clause in clauses:
        if not clause.body:
            continue
        key = _canonical(clause)
        original = first_of.get(key)
        if original is None:
            first_of[key] = clause
            continue
        origin = f" (line {original.line})" if original.line else ""
        findings.append(
            make(
                "DL008",
                f"rule duplicates {original}{origin} up to variable renaming",
                line=clause.line,
                column=clause.column,
                clause=clause,
                hint="delete one of the two rules",
            )
        )
    return findings


def check_subsumed(clauses: Sequence[Clause]) -> list[Diagnostic]:
    """DL009 for rules strictly subsumed by a more general rule."""
    rules = [clause for clause in clauses if clause.body]
    by_relation: dict[str, list[Clause]] = {}
    for clause in rules:
        by_relation.setdefault(clause.head.relation, []).append(clause)
    findings: list[Diagnostic] = []
    for group in by_relation.values():
        for specific in group:
            for general in group:
                if general is specific:
                    continue
                if _canonical(general) == _canonical(specific):
                    continue  # exact duplicate: DL008's territory
                if _subsumes(general, specific):
                    origin = f" (line {general.line})" if general.line else ""
                    findings.append(
                        make(
                            "DL009",
                            "rule is subsumed by the more general "
                            f"{general}{origin}",
                            line=specific.line,
                            column=specific.column,
                            clause=specific,
                            hint="the more general rule already derives "
                            "every instance; delete this one",
                        )
                    )
                    break  # one subsumer per rule is enough
    return findings


# ---------------------------------------------------------------------------
# DL010 — cross-product joins
# ---------------------------------------------------------------------------


def check_cross_products(clauses: Sequence[Clause]) -> list[Diagnostic]:
    """DL010 when the positive body splits into variable-disjoint groups.

    Ground positive literals are pure membership tests and join nothing, so
    they are left out of the grouping; negative literals are filters
    evaluated after binding and cannot cause a cross product.
    """
    findings: list[Diagnostic] = []
    for clause in clauses:
        literals = [
            lit
            for lit in clause.body
            if lit.positive and any(True for _ in lit.variables())
        ]
        if len(literals) < 2:
            continue
        # Union-find over literal indexes, merged through shared variables.
        parent = list(range(len(literals)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        owner: dict[Variable, int] = {}
        for i, lit in enumerate(literals):
            for var in lit.variables():
                if var in owner:
                    parent[find(i)] = find(owner[var])
                else:
                    owner[var] = i
        groups: dict[int, list[Literal]] = {}
        for i, lit in enumerate(literals):
            groups.setdefault(find(i), []).append(lit)
        if len(groups) < 2:
            continue
        rendered = " x ".join(
            "{" + ", ".join(str(lit) for lit in group) + "}"
            for group in groups.values()
        )
        findings.append(
            make(
                "DL010",
                f"positive body literals form a cross product: {rendered}",
                line=clause.line,
                column=clause.column,
                clause=clause,
                hint="connect the groups through a shared variable or "
                "split the rule",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Composition
# ---------------------------------------------------------------------------

ALL_CHECKS = (
    check_safety,
    check_arities,
    check_undefined,
    check_unused,
    check_singletons,
    check_duplicates,
    check_subsumed,
    check_cross_products,
)


def check_clause(
    clause: Clause, clauses: Sequence[Clause] | None = None
) -> list[Diagnostic]:
    """The clause-local findings for one clause (DL001/DL007/DL010 —
    plus DL004/DL005 when the surrounding program is supplied)."""
    findings = (
        check_safety([clause])
        + check_singletons([clause])
        + check_cross_products([clause])
    )
    if clauses is not None:
        context = list(clauses)
        if clause not in context:
            context.append(clause)
        findings += [
            finding
            for finding in check_undefined(context)
            if finding.clause == str(clause)
        ]
    return findings


def analyze_program(
    program: ProgramLike,
    *,
    ignore: Iterable[str] = (),
    graph: DependencyGraph | None = None,
) -> Report:
    """Run every check over *program* and collect a :class:`Report`.

    *program* may be a :class:`~repro.datalog.clauses.Program`, a clause
    iterable, or source text (parsed without admission checks, so unsafe
    and unstratifiable programs are reported rather than rejected).
    ``ignore`` suppresses the given codes; ``graph`` reuses an existing
    dependency graph (e.g. the one a live database maintains).
    """
    try:
        clauses = _as_clauses(program)
    except ParseError as error:
        return Report(
            [
                make(
                    "DL000",
                    str(error),
                    line=error.line,
                    column=error.column,
                )
            ]
        )
    findings: list[Diagnostic] = []
    for check in ALL_CHECKS:
        findings.extend(check(clauses))
    findings.extend(check_stratification(clauses, graph))
    ignored = frozenset(ignore)
    if ignored:
        findings = [f for f in findings if f.code not in ignored]
    return Report(findings)


def source_pragmas(text: str) -> frozenset[str]:
    """The codes suppressed by ``% repro: allow DLnnn`` pragmas in *text*.

    Pragma scope is **file-global**: a pragma suppresses its codes for
    every clause of the file, wherever the pragma line sits (before,
    between, or after the clauses). There is no per-clause scoping.
    """
    allowed: set[str] = set()
    for match in _ALLOW_PRAGMA.finditer(text):
        for code in match.group(1).split(","):
            allowed.add(code.strip())
    return frozenset(allowed)


def analyze_source(text: str, *, ignore: Iterable[str] = ()) -> Report:
    """Analyze program *text*, honouring its ``allow`` pragmas.

    A program can declare expected findings inline::

        % repro: allow DL007, DL010
        pair(X, Y) :- left(X), right(Y).

    and the corresponding diagnostics are suppressed, the idiom the CI
    self-lint uses to keep intentional patterns warning-clean. The
    suppression is **file-global** (see :func:`source_pragmas`): the
    pragma silences its codes for the whole file, not just the clause it
    precedes — conventionally it is written at the top of the file.
    """
    return analyze_program(
        text, ignore=frozenset(ignore) | source_pragmas(text)
    )
